//! A Raft cluster riding out trouble: a partition that isolates the
//! initial majority's minority side, a leader-killing crash, and a
//! restart that has to catch up from the persistent log.
//!
//! ```sh
//! cargo run --example raft_cluster
//! ```

use object_oriented_consensus::raft::harness::{run_raft, RaftClusterConfig};
use object_oriented_consensus::raft::RaftConfig;
use object_oriented_consensus::simnet::{
    FaultPlan, NetworkConfig, PartitionWindow, ProcessId, SimTime,
};

fn main() {
    println!("== Raft cluster under partition + crash + restart ==\n");

    // 5 nodes; ticks 0..2000: {0,1} are cut off from {2,3,4}; node 4
    // crashes at t=500 — leaving no live majority anywhere until the
    // partition heals — and recovers at t=3000, catching up from its
    // persistent log.
    let mut network = NetworkConfig::reliable(5);
    network.partitions = vec![PartitionWindow {
        from: SimTime::ZERO,
        until: SimTime::from_ticks(2_000),
        groups: vec![
            vec![ProcessId(0), ProcessId(1)],
            vec![ProcessId(2), ProcessId(3), ProcessId(4)],
        ],
    }];
    let faults = FaultPlan::new()
        .crash_at(ProcessId(4), SimTime::from_ticks(500))
        .restart_at(ProcessId(4), SimTime::from_ticks(3_000));

    let cfg = RaftClusterConfig::new(5)
        .with_network(network)
        .with_raft(RaftConfig::default())
        .with_faults(faults);

    let inputs = [100, 200, 300, 400, 500];
    for seed in 0..5 {
        let run = run_raft(&cfg, &inputs, seed);
        println!("seed {seed}:");
        println!("  decided value : {:?}", run.outcome.decided_value());
        println!("  decisions     : {:?}", run.outcome.decisions);
        println!("  max term      : {}", run.max_term);
        println!("  elections     : {}", run.elections);
        println!("  crashes seen  : {}", run.outcome.stats.crashes);
        println!("  restarts seen : {}", run.outcome.stats.restarts);
        println!("  violations    : {}", run.violations.len());
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert!(run.outcome.agreement());
        let v = run.outcome.decided_value().expect("cluster decides");
        assert!([100, 200, 300, 400, 500].contains(&v), "validity, got {v}");
        assert!(run.outcome.stats.crashes >= 1, "the crash must be exercised");
        println!();
    }
    println!("Partition healed, leader crash survived, restart caught up — all checks green.");
}
