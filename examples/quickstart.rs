//! Quickstart: run all three of the paper's decompositions once and print
//! what happened.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use object_oriented_consensus::ben_or::harness::{run_decomposed, BenOrConfig};
use object_oriented_consensus::phase_king::{run_phase_king, Attack, PhaseKingConfig};
use object_oriented_consensus::raft::harness::{run_raft, RaftClusterConfig};

fn main() {
    println!("== Object Oriented Consensus: quickstart ==\n");

    // 1. Ben-Or (async, crash faults): VAC + coin-flip reconciliator.
    let cfg = BenOrConfig::new(5, 2);
    let run = run_decomposed(&cfg, &[true, false, true, false, true], 42);
    println!("Ben-Or (n=5, t=2, balanced inputs, seed 42):");
    println!("  decided     : {:?}", run.outcome.decided_value());
    println!("  rounds      : {:?}", run.rounds_to_decide());
    println!(
        "  VAC outcomes: vacillate={} adopt={} commit={}",
        run.confidence_counts[0], run.confidence_counts[1], run.confidence_counts[2]
    );
    println!("  violations  : {}\n", run.violations.len());

    // 2. Phase-King (sync, Byzantine): AC + king conciliator.
    let cfg = PhaseKingConfig::new(7, 2).with_attack(Attack::Equivocate);
    let run = run_phase_king(&cfg, &[0, 1, 0, 1, 0], 42);
    println!("Phase-King (n=7, t=2 equivocators, seed 42):");
    println!(
        "  honest decisions: {:?}",
        run.honest
            .iter()
            .map(|p| run.decisions[p.index()])
            .collect::<Vec<_>>()
    );
    println!("  phases to decide: {:?}", run.phases_to_decide());
    println!("  network rounds  : {}", run.rounds);
    println!("  violations      : {}\n", run.violations.len());

    // 3. Raft (timed, crash/restart): leader election as the
    //    reconciliator, log replication as the VAC.
    let cfg = RaftClusterConfig::new(5);
    let run = run_raft(&cfg, &[10, 20, 30, 40, 50], 42);
    println!("Raft (n=5, seed 42):");
    println!("  decided        : {:?}", run.outcome.decided_value());
    println!("  first leader   : term {:?}", run.first_leader_term);
    println!("  elections run  : {}", run.elections);
    println!(
        "  consensus time : {:?} ticks",
        run.consensus_latency().map(|t| t.ticks())
    );
    println!("  violations     : {}", run.violations.len());
}
