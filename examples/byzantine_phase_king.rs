//! Byzantine stress scenario: Phase-King under every implemented attack,
//! at the resilience boundary `n = 3t + 1`.
//!
//! Prints, per attack, how many phases the honest processors needed and
//! verifies the paper's `t + 2`-phase bound and all safety properties.
//!
//! ```sh
//! cargo run --example byzantine_phase_king
//! ```

use object_oriented_consensus::phase_king::{run_phase_king, Attack, PhaseKingConfig};

fn main() {
    let n = 10;
    let t = 3; // 3t + 1 = n: the tightest tolerable corruption
    let honest = n - t;
    let inputs: Vec<u64> = (0..honest).map(|i| (i % 2) as u64).collect();
    let attacks = [
        Attack::Silent,
        Attack::Fixed(0),
        Attack::Fixed(1),
        Attack::Fixed(2),
        Attack::Equivocate,
        Attack::Random,
    ];

    println!("Phase-King at the resilience boundary: n={n}, t={t} (3t+1 = n)");
    println!("honest inputs: {inputs:?}\n");
    println!("{:<14} {:>8} {:>8} {:>10} {:>10}", "attack", "decided", "phases", "messages", "violations");

    for attack in attacks {
        let cfg = PhaseKingConfig::new(n, t).with_attack(attack);
        let mut worst_phases = 0;
        let mut total_msgs = 0;
        let mut violations = 0;
        let mut decisions = std::collections::BTreeSet::new();
        let seeds = 20;
        for seed in 0..seeds {
            let run = run_phase_king(&cfg, &inputs, seed);
            worst_phases = worst_phases.max(run.phases_to_decide().unwrap_or(u64::MAX));
            total_msgs += run.messages;
            violations += run.violations.len();
            if let Some(p) = run.honest.first() {
                if let Some(d) = run.decisions[p.index()] {
                    decisions.insert(d);
                }
            }
        }
        println!(
            "{:<14} {:>8} {:>8} {:>10} {:>10}",
            format!("{attack:?}"),
            format!("{decisions:?}"),
            worst_phases,
            total_msgs / seeds,
            violations
        );
        assert_eq!(violations, 0, "{attack:?} must not break any property");
        assert!(
            worst_phases <= t as u64 + 2,
            "{attack:?} exceeded the t+2 phase bound"
        );
    }

    println!("\nAll attacks contained: agreement, validity and the t+2-phase bound held.");
}
