//! A replicated log assembled from the paper's bricks: the multi-shot
//! [`SequenceConsensus`] composition decides a whole sequence of values —
//! one nested Algorithm-1 template per slot — over Ben-Or's VAC and the
//! coin-flip reconciliator.
//!
//! The paper's introduction motivates consensus via exactly this use
//! case ("ensuring storage replicas are mutually consistent"); this
//! example shows the framework reaching it compositionally, and contrasts
//! the cost with Raft's leader-amortized multi-entry replication.
//!
//! ```sh
//! cargo run --example replicated_log
//! ```

use object_oriented_consensus::ben_or::{BenOrVac, CoinFlip};
use object_oriented_consensus::core::sequence::SequenceConsensus;
use object_oriented_consensus::core::template::TemplateConfig;
use object_oriented_consensus::raft::{RaftConfig, RaftNode};
use object_oriented_consensus::simnet::{NetworkConfig, ProcessId, RunLimit, Sim};

fn main() {
    let n = 5;
    let t = 2;
    let slots = 6;
    println!("== A {slots}-entry replicated log from template slots ==\n");

    let mut sim = Sim::builder(NetworkConfig::default())
        .seed(7)
        .processes((0..n).map(|i| {
            // Processor i proposes an alternating pattern offset by i.
            SequenceConsensus::new(
                (0..slots).map(|k| (i + k) % 2 == 0).collect(),
                move |_slot, _round| BenOrVac::new(n, t),
                |_slot, _round| CoinFlip::new(),
                TemplateConfig::default(),
            )
        }))
        .build();
    let out = sim.run(RunLimit::default());
    let log = out.decided_value().expect("all replicas agree");
    println!("agreed log : {log:?}");
    println!("messages   : {}", out.stats.messages_sent);
    println!(
        "sim ticks  : {}",
        out.last_decision_time().unwrap().ticks()
    );
    for i in 0..n {
        assert_eq!(
            sim.process(ProcessId(i)).decided(),
            log.as_slice(),
            "replica {i} diverged"
        );
    }

    // The engineered alternative: Raft replicating the same number of
    // entries under one leader.
    println!("\n== The same log length under Raft's single leader ==\n");
    let mut sim = Sim::builder(NetworkConfig::reliable(5))
        .seed(7)
        .processes((0..n).map(|i| {
            RaftNode::new(i as u64, RaftConfig::default())
                .with_workload((0..slots as u64 - 1).collect())
        }))
        .build();
    let mut limit = RunLimit::until_time(object_oriented_consensus::simnet::SimTime::from_ticks(
        10_000,
    ));
    limit.stop_when_all_decide = false;
    let out = sim.run(limit);
    let committed = (0..n)
        .map(|i| sim.process(ProcessId(i)).commit_index().0)
        .min()
        .unwrap();
    println!("entries committed everywhere: {committed}");
    println!("messages                    : {}", out.stats.messages_sent);
    println!(
        "\nSlot-per-consensus is simple and leaderless; Raft pays for a leader once\n\
         and then amortizes it — the engineering trade the paper's §4.3 studies."
    );
}
