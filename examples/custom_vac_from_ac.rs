//! Build your own consensus from the framework's LEGO bricks (paper §5):
//! take the *shared-memory-style* adopt-commit idea re-expressed as a
//! message-passing AC, compose **two** of them into a VAC with
//! [`TwoAcVac`], attach a coin-flip reconciliator, and drop the result
//! into the generic template — a consensus protocol assembled entirely
//! from objects, none of which is itself a consensus protocol.
//!
//! ```sh
//! cargo run --example custom_vac_from_ac
//! ```

use object_oriented_consensus::ben_or::{BenOrVac, CoinFlip};
use object_oriented_consensus::core::compose::{TwoAcVac, VacAsAc};
use object_oriented_consensus::core::template::{Template, TemplateConfig};
use object_oriented_consensus::core::Confidence;
use object_oriented_consensus::simnet::{NetworkConfig, ProcessId, RunLimit, Sim};

fn main() {
    println!("== A VAC assembled from two adopt-commit objects (paper §5) ==\n");
    let n = 5;
    let t = 2;

    // The AC brick: Ben-Or's VAC weakened into an adopt-commit
    // (vacillate relabeled adopt — the paper's §5 weakening direction).
    // The composition then rebuilds full VAC strength from two of them.
    let make_process = move |input: bool| {
        Template::vac(
            input,
            move |_round| {
                TwoAcVac::new(
                    VacAsAc(BenOrVac::new(n, t)),
                    VacAsAc(BenOrVac::new(n, t)),
                )
            },
            |_round| CoinFlip::new(),
            TemplateConfig::default(),
        )
    };

    let inputs = [true, false, true, false, true];
    let mut agreement_failures = 0;
    let mut total_rounds = 0u64;
    let seeds = 20;
    for seed in 0..seeds {
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| make_process(v)))
            .build();
        let out = sim.run(RunLimit::default());
        if !out.agreement() || !out.all_decided() {
            agreement_failures += 1;
        }
        let rounds = (0..n)
            .map(|i| {
                sim.process(ProcessId(i))
                    .history()
                    .iter()
                    .find(|r| r.outcome.confidence == Confidence::Commit)
                    .map(|r| r.round)
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        total_rounds += rounds;
        if seed < 3 {
            println!(
                "seed {seed}: decided {:?} after {rounds} composed-VAC rounds, {} messages",
                out.decided_value(),
                out.stats.messages_sent
            );
        }
    }
    println!(
        "\n{} seeds: {} failures, mean rounds {:.1}",
        seeds,
        agreement_failures,
        total_rounds as f64 / seeds as f64
    );
    assert_eq!(agreement_failures, 0);
    println!("The composed object satisfies the VAC laws — consensus from bricks.");
}
