//! A miniature fault-injection campaign: sweep a slice of the
//! (seed × fault plan × network × adversary) grid for each algorithm,
//! then deliberately re-run the Ben-Or slice with the off-by-one commit
//! threshold planted and shrink the first failure it produces down to a
//! minimal counterexample.
//!
//! ```sh
//! cargo run --release --example fault_campaign
//! ```
//!
//! The full campaign lives in the `ooc-campaign` crate:
//!
//! ```sh
//! cargo run --release -p ooc-campaign -- sweep --combos 1000
//! ```

use ooc_campaign::artifact::Algorithm;
use ooc_campaign::shrink::{shrink, size_of};
use ooc_campaign::sweep::sweep;

fn main() {
    println!("== Clean sweep (the protocols as the paper wrote them) ==\n");
    for alg in Algorithm::all() {
        let report = sweep(alg, 60, false);
        println!("{}", report.summary());
        assert!(
            report.safety.is_empty(),
            "safety violation in an unmodified protocol — see artifacts"
        );
    }

    println!("\n== Sabotaged sweep (Ben-Or committing on t ratifies, not t+1) ==\n");
    let report = sweep(Algorithm::BenOr, 400, true);
    println!("{}", report.summary());

    let Some(artifact) = report.safety.first() else {
        println!("the sweep did not catch the sabotage at this size; rerun larger");
        return;
    };
    let v = artifact.violation.as_ref().expect("recorded violation");
    println!(
        "\nfirst failure: seed={} n={} t={} — {} ({})",
        artifact.seed, artifact.n, artifact.t, v.kind, v.detail
    );

    println!("\nshrinking to a minimal counterexample ...");
    let minimized = shrink(artifact).expect("a caught failure reproduces");
    let m = &minimized.artifact;
    println!(
        "{} accepted steps, {} probe runs: size {} -> {}",
        minimized.steps,
        minimized.runs,
        size_of(artifact),
        size_of(m)
    );
    let mv = m.violation.as_ref().expect("summary refreshed");
    println!(
        "minimal counterexample: n={} t={} seed={} faults={} adversary={:?}",
        m.n,
        m.t,
        m.seed,
        m.faults.len(),
        m.adversary
    );
    println!("still reproduces: {} — {}", mv.kind, mv.detail);
    println!("\nartifact JSON (feed to `ooc-campaign replay`):\n{}", m.to_string_pretty());
}
