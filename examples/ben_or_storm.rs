//! Ben-Or under the worst weather we can generate: balanced inputs, the
//! maximum tolerable crash count, a split-vote adversary delaying
//! cross-half traffic, plus message loss and duplication — then the same
//! storm thrown at the paper's decentralized-Raft variant, whose
//! timer-nudge reconciliator typically needs fewer rounds than the coin.
//!
//! ```sh
//! cargo run --example ben_or_storm
//! ```

use object_oriented_consensus::ben_or::harness::{
    balanced_inputs, run_decomposed_with, split_adversary, BenOrConfig,
};
use object_oriented_consensus::core::Confidence;
use object_oriented_consensus::raft::decentralized::decentralized_raft;
use object_oriented_consensus::simnet::{
    FaultPlan, NetworkConfig, ProcessId, RunLimit, Sim, SimTime,
};

fn main() {
    println!("== Ben-Or in a storm ==\n");
    let n = 9;
    let t = 4;
    let inputs = balanced_inputs(n);

    let network = NetworkConfig {
        drop_probability: 0.05,
        duplicate_probability: 0.05,
        ..NetworkConfig::default()
    };
    let faults = FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(40));
    let cfg = BenOrConfig::new(n, t)
        .with_network(network)
        .with_faults(faults);

    let seeds = 20;
    let mut worst = 0;
    let mut total = 0u64;
    for seed in 0..seeds {
        let run = run_decomposed_with(
            &cfg,
            &inputs,
            seed,
            Some(split_adversary(n, (1, 5), (40, 80))),
        );
        assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
        let rounds = run.rounds_to_decide().unwrap_or(u64::MAX);
        worst = worst.max(rounds);
        total += rounds;
        println!(
            "seed {seed:>2}: decided {:?} in {rounds} rounds  (V/A/C = {}/{}/{}, {} adopt-divergences)",
            run.outcome.decided_value(),
            run.confidence_counts[0],
            run.confidence_counts[1],
            run.confidence_counts[2],
            run.adopt_divergences,
        );
    }
    println!(
        "\ncoin-flip reconciliator: mean {:.1} rounds, worst {worst}\n",
        total as f64 / seeds as f64
    );

    // Same storm-ish setting (no custom adversary support needed to make
    // the point), decentralized-Raft variant.
    println!("== Decentralized-Raft twin (timer-nudge reconciliator) ==\n");
    let mut total_nudge = 0u64;
    for seed in 0..seeds {
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .faults(FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(40)))
            .processes(inputs.iter().map(|&v| decentralized_raft(v, n, t)))
            .build();
        let out = sim.run(RunLimit::default());
        assert!(out.agreement(), "seed {seed}");
        let rounds = (0..n)
            .filter(|&i| out.decisions[i].is_some())
            .map(|i| {
                sim.process(ProcessId(i))
                    .history()
                    .iter()
                    .find(|r| r.outcome.confidence == Confidence::Commit)
                    .map(|r| r.round)
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0);
        total_nudge += rounds;
    }
    println!(
        "timer-nudge reconciliator: mean {:.1} rounds over {seeds} seeds",
        total_nudge as f64 / seeds as f64
    );
    println!("\nBoth reconciliators break every stalemate; they differ only in how fast.");
}
