//! The framework on its *other* substrate: Aspnes-style shared memory,
//! with real threads. Runs both templates —
//!
//! * Algorithm 2: register-based adopt-commit + probabilistic-write
//!   conciliator ([`SharedConsensus`]);
//! * Algorithm 1: the §5 two-AC VAC + coin-flip reconciliator
//!   ([`VacConsensus`]) —
//!
//! and reports how many rounds of lucky coins each needed.
//!
//! ```sh
//! cargo run --example shared_memory
//! ```

use object_oriented_consensus::sharedmem::{RegisterVac, SharedConsensus, VacConsensus};
use std::sync::Arc;

fn main() {
    println!("== Shared-memory consensus (real threads) ==\n");
    let n = 4;

    // Algorithm 2 flavor.
    let mut all = Vec::new();
    for seed in 0..10u64 {
        let c = Arc::new(SharedConsensus::new(n));
        let outs: Vec<u64> = std::thread::scope(|s| {
            (0..n)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.propose(i, (i as u64) % 2, seed * 97 + i as u64))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        all.push(outs[0]);
    }
    println!("Algorithm 2 (AC + conciliator): 10 runs decided {all:?}");

    // Algorithm 1 flavor.
    let mut all = Vec::new();
    for seed in 0..10u64 {
        let c = Arc::new(VacConsensus::new(n));
        let outs: Vec<u64> = std::thread::scope(|s| {
            (0..n)
                .map(|i| {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.propose(i, (i as u64) % 2, seed * 131 + i as u64))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "agreement");
        all.push(outs[0]);
    }
    println!("Algorithm 1 (VAC + reconciliator): 10 runs decided {all:?}");

    // The raw VAC object, driven concurrently: show a mixed-input round's
    // outcomes obeying the coherence laws.
    let vac = Arc::new(RegisterVac::new(n));
    let outs: Vec<_> = std::thread::scope(|s| {
        (0..n)
            .map(|i| {
                let vac = Arc::clone(&vac);
                s.spawn(move || vac.propose(i, (i as u64) % 2))
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    println!("\nOne concurrent RegisterVac round on inputs [0,1,0,1]:");
    for (i, o) in outs.iter().enumerate() {
        println!("  p{i}: ({}, {})", o.confidence, o.value);
    }
    println!("\nBoth templates agree on both substrates — the framework is substrate-neutral.");
}
