//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names (so `use` statements
//! and trait bounds resolve) and, under the `derive` feature, re-exports
//! the no-op derive macros from the vendored `serde_derive`. No data-model
//! machinery is included — the workspace serializes failure artifacts with
//! hand-rolled JSON in `ooc-campaign`.

#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
