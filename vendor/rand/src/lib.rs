//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! pre-populated cargo registry, so the workspace vendors the *exact trait
//! surface* it consumes from `rand 0.8`: [`RngCore`], [`SeedableRng`],
//! [`Error`], and the [`Rng`] extension trait with `gen::<T>()` backed by
//! [`distributions::Standard`]. The APIs are signature-compatible with
//! rand 0.8 for everything the workspace uses, so swapping the real crate
//! back in is a one-line `Cargo.toml` change.

#![forbid(unsafe_code)]

use core::fmt;

/// Error type reported by fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Creates an error carrying a static message.
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A generator that can be instantiated from a fixed seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed byte-array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, spreading it over the seed bytes.
    fn seed_from_u64(mut state: u64) -> Self {
        // Same byte-spreading construction as rand 0.8 (SplitMix64 steps).
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    //! The subset of `rand::distributions` needed for `Rng::gen`.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform over all values of the type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u32() >> 24) as u8
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 bits of precision in [0, 1).
            (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Convenience extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let r: f64 = self.gen();
        r < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn gen_dispatches_through_standard() {
        let mut rng = Counter(0);
        assert_eq!(rng.gen::<u64>(), 1);
        assert_eq!(rng.gen::<u64>(), 2);
        let _: bool = rng.gen();
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct ByteRng([u8; 8]);
        impl SeedableRng for ByteRng {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                ByteRng(seed)
            }
        }
        let a = ByteRng::seed_from_u64(7);
        let b = ByteRng::seed_from_u64(7);
        assert_eq!(a.0, b.0);
    }
}
