//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind the `parking_lot` API shape:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored (a poisoned std lock
//! yields its inner guard), matching parking_lot's "no poisoning"
//! semantics closely enough for this workspace's linearizable-register
//! and consensus-object experiments.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new rwlock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &*guard).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
