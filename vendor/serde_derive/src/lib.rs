//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! for forward compatibility, but never relies on the generated impls
//! (persistence uses hand-rolled JSON in `ooc-campaign`). These derives
//! therefore accept the attribute and expand to nothing, which keeps the
//! annotations compiling without syn/quote or network access.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
