//! Offline stand-in for `proptest`: a small, fully deterministic
//! property-testing framework.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the proptest API its test-suites use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`
//! * [`strategy::Just`], integer range strategies, tuple strategies
//! * [`arbitrary::any`] for the primitive types the tests draw
//! * [`collection::vec`] with exact or ranged lengths
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`] and
//!   [`prop_oneof!`]
//!
//! Differences from real proptest: no shrinking (failures report the
//! already-small generated inputs verbatim) and generation is seeded from
//! the test name, so runs are bit-for-bit reproducible with no
//! environment variables involved.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test-case plumbing used by the [`crate::proptest!`] macro.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections tolerated before the
        /// test aborts as over-constrained.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; try another one.
        Reject,
        /// The property failed with the given message.
        Fail(String),
    }

    /// The deterministic RNG handed to strategies (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        ///
        /// Seeding from the test name keeps every test independent of suite
        /// ordering while staying fully reproducible.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            // Rejection sampling keeps the distribution exactly uniform.
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let r = self.next_u64();
                let wide = (r as u128) * (bound as u128);
                if (wide as u64) >= threshold {
                    return (wide >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        /// Feeds generated values into `f` to build a dependent strategy.
        fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            U: Strategy,
            F: Fn(Self::Value) -> U,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        U: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U::Value;
        fn generate(&self, rng: &mut TestRng) -> U::Value {
            let inner = (self.f)(self.base.generate(rng));
            inner.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span + 1) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (S0 0);
        (S0 0, S1 1);
        (S0 0, S1 1, S2 2);
        (S0 0, S1 1, S2 2, S3 3);
        (S0 0, S1 1, S2 2, S3 3, S4 4);
        (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace draws.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type returned by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Full-range strategy over a primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl Strategy for AnyPrimitive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyPrimitive<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(core::marker::PhantomData)
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(core::marker::PhantomData)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a length specification for [`vec`].
    pub trait SizeRange {
        /// Picks a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty vec length range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy with lengths drawn from `len` (a `usize` for exact
    /// lengths, or a range).
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking mid-generation) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($a), stringify!($b), a, b, format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Rejects the current case unless the condition holds; another case is
/// generated in its place.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Mirrors the real `proptest!` item form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn it_holds(x in 0u64..10, (a, b) in my_pair()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn, recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rejects: u32 = 0;
            let mut __case: u64 = 0;
            let mut __ran: u32 = 0;
            while __ran < __cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                __case += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {
                        __ran += 1;
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __cfg.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            __rejects,
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            __case - 1,
                            msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..=8).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn flat_map_respects_dependency((n, k) in pair()) {
            prop_assert!(k < n, "k = {} must be below n = {}", k, n);
        }

        #[test]
        fn vec_lengths_respect_spec(
            exact in collection::vec(any::<bool>(), 5usize),
            ranged in collection::vec(any::<u64>(), 2..6),
        ) {
            prop_assert_eq!(exact.len(), 5);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_draws_every_arm(x in prop_oneof![Just(1u64), Just(2u64), Just(3u64)]) {
            prop_assert!((1..=3).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = (0u64..1000, 0usize..=7);
        let mut a = TestRng::for_case("determinism", 3);
        let mut b = TestRng::for_case("determinism", 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
