//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion`], [`BenchmarkId`] and the group/bencher API shape the
//! workspace benches use. Instead of criterion's statistical engine it
//! runs a short fixed number of timed iterations and prints the mean —
//! enough to compare orders of magnitude, and fast enough that the bench
//! binaries (which `cargo test` also executes, as the bench targets do
//! not disable the test harness) finish in milliseconds.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// How many timed iterations each benchmark runs (after one warm-up).
const SAMPLES: u32 = 3;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepts CLI arguments for compatibility; they are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepts criterion's sample-size knob; ignored by the stand-in.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepts criterion's measurement-time knob; ignored by the stand-in.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a bare name.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, name), |b| f(b));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// A benchmark id from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..SAMPLES {
            std::hint::black_box(routine());
        }
        self.nanos_per_iter = Some(start.elapsed().as_nanos() as f64 / SAMPLES as f64);
    }
}

/// Re-export matching `criterion::black_box` (deprecated upstream in favor
/// of `std::hint::black_box`, which the workspace benches already use).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    match bencher.nanos_per_iter {
        Some(ns) => println!("bench {label:<48} {:>12.0} ns/iter", ns),
        None => println!("bench {label:<48} (no iter() call)"),
    }
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($bench:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_shape_works() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| 1 + 1));
    }
}
