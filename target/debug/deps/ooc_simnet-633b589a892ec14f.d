/root/repo/target/debug/deps/ooc_simnet-633b589a892ec14f.d: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

/root/repo/target/debug/deps/libooc_simnet-633b589a892ec14f.rlib: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

/root/repo/target/debug/deps/libooc_simnet-633b589a892ec14f.rmeta: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

crates/ooc-simnet/src/lib.rs:
crates/ooc-simnet/src/adversary.rs:
crates/ooc-simnet/src/byzantine.rs:
crates/ooc-simnet/src/fault.rs:
crates/ooc-simnet/src/network.rs:
crates/ooc-simnet/src/process.rs:
crates/ooc-simnet/src/rng.rs:
crates/ooc-simnet/src/sim.rs:
crates/ooc-simnet/src/stats.rs:
crates/ooc-simnet/src/sync.rs:
crates/ooc-simnet/src/time.rs:
crates/ooc-simnet/src/trace.rs:
crates/ooc-simnet/src/id.rs:
