/root/repo/target/debug/deps/object_oriented_consensus-5445808e6140cca3.d: src/lib.rs

/root/repo/target/debug/deps/libobject_oriented_consensus-5445808e6140cca3.rlib: src/lib.rs

/root/repo/target/debug/deps/libobject_oriented_consensus-5445808e6140cca3.rmeta: src/lib.rs

src/lib.rs:
