/root/repo/target/debug/deps/ooc_core-e05d4f0a04e63235.d: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

/root/repo/target/debug/deps/libooc_core-e05d4f0a04e63235.rlib: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

/root/repo/target/debug/deps/libooc_core-e05d4f0a04e63235.rmeta: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

crates/ooc-core/src/lib.rs:
crates/ooc-core/src/checker.rs:
crates/ooc-core/src/compose.rs:
crates/ooc-core/src/confidence.rs:
crates/ooc-core/src/objects.rs:
crates/ooc-core/src/sequence.rs:
crates/ooc-core/src/sync_objects.rs:
crates/ooc-core/src/sync_template.rs:
crates/ooc-core/src/template.rs:
crates/ooc-core/src/testkit.rs:
