/root/repo/target/debug/deps/ooc_ben_or-a9e67bd20990e213.d: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

/root/repo/target/debug/deps/libooc_ben_or-a9e67bd20990e213.rlib: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

/root/repo/target/debug/deps/libooc_ben_or-a9e67bd20990e213.rmeta: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

crates/ooc-ben-or/src/lib.rs:
crates/ooc-ben-or/src/harness.rs:
crates/ooc-ben-or/src/monolithic.rs:
crates/ooc-ben-or/src/msg.rs:
crates/ooc-ben-or/src/reconciliator.rs:
crates/ooc-ben-or/src/vac.rs:
