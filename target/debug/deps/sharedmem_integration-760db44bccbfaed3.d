/root/repo/target/debug/deps/sharedmem_integration-760db44bccbfaed3.d: tests/sharedmem_integration.rs

/root/repo/target/debug/deps/sharedmem_integration-760db44bccbfaed3: tests/sharedmem_integration.rs

tests/sharedmem_integration.rs:
