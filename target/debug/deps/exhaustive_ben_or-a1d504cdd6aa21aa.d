/root/repo/target/debug/deps/exhaustive_ben_or-a1d504cdd6aa21aa.d: tests/exhaustive_ben_or.rs

/root/repo/target/debug/deps/exhaustive_ben_or-a1d504cdd6aa21aa: tests/exhaustive_ben_or.rs

tests/exhaustive_ben_or.rs:
