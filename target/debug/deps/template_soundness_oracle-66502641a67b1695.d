/root/repo/target/debug/deps/template_soundness_oracle-66502641a67b1695.d: tests/template_soundness_oracle.rs

/root/repo/target/debug/deps/template_soundness_oracle-66502641a67b1695: tests/template_soundness_oracle.rs

tests/template_soundness_oracle.rs:
