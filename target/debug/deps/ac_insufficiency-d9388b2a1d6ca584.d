/root/repo/target/debug/deps/ac_insufficiency-d9388b2a1d6ca584.d: tests/ac_insufficiency.rs

/root/repo/target/debug/deps/ac_insufficiency-d9388b2a1d6ca584: tests/ac_insufficiency.rs

tests/ac_insufficiency.rs:
