/root/repo/target/debug/deps/ooc_sharedmem-47f85eed7fbce88f.d: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

/root/repo/target/debug/deps/libooc_sharedmem-47f85eed7fbce88f.rlib: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

/root/repo/target/debug/deps/libooc_sharedmem-47f85eed7fbce88f.rmeta: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

crates/ooc-sharedmem/src/lib.rs:
crates/ooc-sharedmem/src/adopt_commit.rs:
crates/ooc-sharedmem/src/conciliator.rs:
crates/ooc-sharedmem/src/consensus.rs:
crates/ooc-sharedmem/src/register.rs:
crates/ooc-sharedmem/src/vac.rs:
