/root/repo/target/debug/deps/sequence_consensus-0ec9cd0977adc7c5.d: tests/sequence_consensus.rs

/root/repo/target/debug/deps/sequence_consensus-0ec9cd0977adc7c5: tests/sequence_consensus.rs

tests/sequence_consensus.rs:
