/root/repo/target/debug/deps/template_cross_algorithm-5a7749ee4b311173.d: tests/template_cross_algorithm.rs

/root/repo/target/debug/deps/template_cross_algorithm-5a7749ee4b311173: tests/template_cross_algorithm.rs

tests/template_cross_algorithm.rs:
