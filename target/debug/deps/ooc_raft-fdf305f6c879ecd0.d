/root/repo/target/debug/deps/ooc_raft-fdf305f6c879ecd0.d: crates/ooc-raft/src/lib.rs crates/ooc-raft/src/decentralized.rs crates/ooc-raft/src/events.rs crates/ooc-raft/src/harness.rs crates/ooc-raft/src/log.rs crates/ooc-raft/src/message.rs crates/ooc-raft/src/node.rs crates/ooc-raft/src/state.rs crates/ooc-raft/src/types.rs crates/ooc-raft/src/vac_view.rs

/root/repo/target/debug/deps/libooc_raft-fdf305f6c879ecd0.rlib: crates/ooc-raft/src/lib.rs crates/ooc-raft/src/decentralized.rs crates/ooc-raft/src/events.rs crates/ooc-raft/src/harness.rs crates/ooc-raft/src/log.rs crates/ooc-raft/src/message.rs crates/ooc-raft/src/node.rs crates/ooc-raft/src/state.rs crates/ooc-raft/src/types.rs crates/ooc-raft/src/vac_view.rs

/root/repo/target/debug/deps/libooc_raft-fdf305f6c879ecd0.rmeta: crates/ooc-raft/src/lib.rs crates/ooc-raft/src/decentralized.rs crates/ooc-raft/src/events.rs crates/ooc-raft/src/harness.rs crates/ooc-raft/src/log.rs crates/ooc-raft/src/message.rs crates/ooc-raft/src/node.rs crates/ooc-raft/src/state.rs crates/ooc-raft/src/types.rs crates/ooc-raft/src/vac_view.rs

crates/ooc-raft/src/lib.rs:
crates/ooc-raft/src/decentralized.rs:
crates/ooc-raft/src/events.rs:
crates/ooc-raft/src/harness.rs:
crates/ooc-raft/src/log.rs:
crates/ooc-raft/src/message.rs:
crates/ooc-raft/src/node.rs:
crates/ooc-raft/src/state.rs:
crates/ooc-raft/src/types.rs:
crates/ooc-raft/src/vac_view.rs:
