/root/repo/target/debug/deps/ooc_phase_king-9efd243784cda126.d: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

/root/repo/target/debug/deps/libooc_phase_king-9efd243784cda126.rlib: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

/root/repo/target/debug/deps/libooc_phase_king-9efd243784cda126.rmeta: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

crates/ooc-phase-king/src/lib.rs:
crates/ooc-phase-king/src/ac.rs:
crates/ooc-phase-king/src/adaptive.rs:
crates/ooc-phase-king/src/byzantine.rs:
crates/ooc-phase-king/src/conciliator.rs:
crates/ooc-phase-king/src/harness.rs:
crates/ooc-phase-king/src/monolithic.rs:
crates/ooc-phase-king/src/queen.rs:
