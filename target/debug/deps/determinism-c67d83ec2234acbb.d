/root/repo/target/debug/deps/determinism-c67d83ec2234acbb.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-c67d83ec2234acbb: tests/determinism.rs

tests/determinism.rs:
