/root/repo/target/debug/deps/vac_properties_proptest-2fcef04b8d5c12be.d: tests/vac_properties_proptest.rs

/root/repo/target/debug/deps/vac_properties_proptest-2fcef04b8d5c12be: tests/vac_properties_proptest.rs

tests/vac_properties_proptest.rs:
