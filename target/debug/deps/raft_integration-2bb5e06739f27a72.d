/root/repo/target/debug/deps/raft_integration-2bb5e06739f27a72.d: tests/raft_integration.rs

/root/repo/target/debug/deps/raft_integration-2bb5e06739f27a72: tests/raft_integration.rs

tests/raft_integration.rs:
