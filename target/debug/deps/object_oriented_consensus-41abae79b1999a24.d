/root/repo/target/debug/deps/object_oriented_consensus-41abae79b1999a24.d: src/lib.rs

/root/repo/target/debug/deps/object_oriented_consensus-41abae79b1999a24: src/lib.rs

src/lib.rs:
