/root/repo/target/debug/examples/replicated_log-6ad89f5decc7fc55.d: examples/replicated_log.rs

/root/repo/target/debug/examples/replicated_log-6ad89f5decc7fc55: examples/replicated_log.rs

examples/replicated_log.rs:
