/root/repo/target/debug/examples/ben_or_storm-52051aea35d999d2.d: examples/ben_or_storm.rs

/root/repo/target/debug/examples/ben_or_storm-52051aea35d999d2: examples/ben_or_storm.rs

examples/ben_or_storm.rs:
