/root/repo/target/debug/examples/raft_cluster-71f5b92852d3f3ef.d: examples/raft_cluster.rs

/root/repo/target/debug/examples/raft_cluster-71f5b92852d3f3ef: examples/raft_cluster.rs

examples/raft_cluster.rs:
