/root/repo/target/debug/examples/shared_memory-3ecd50150dcc01fb.d: examples/shared_memory.rs

/root/repo/target/debug/examples/shared_memory-3ecd50150dcc01fb: examples/shared_memory.rs

examples/shared_memory.rs:
