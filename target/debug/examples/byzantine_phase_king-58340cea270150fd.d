/root/repo/target/debug/examples/byzantine_phase_king-58340cea270150fd.d: examples/byzantine_phase_king.rs

/root/repo/target/debug/examples/byzantine_phase_king-58340cea270150fd: examples/byzantine_phase_king.rs

examples/byzantine_phase_king.rs:
