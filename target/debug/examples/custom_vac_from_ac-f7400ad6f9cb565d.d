/root/repo/target/debug/examples/custom_vac_from_ac-f7400ad6f9cb565d.d: examples/custom_vac_from_ac.rs

/root/repo/target/debug/examples/custom_vac_from_ac-f7400ad6f9cb565d: examples/custom_vac_from_ac.rs

examples/custom_vac_from_ac.rs:
