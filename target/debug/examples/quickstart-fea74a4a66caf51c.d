/root/repo/target/debug/examples/quickstart-fea74a4a66caf51c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fea74a4a66caf51c: examples/quickstart.rs

examples/quickstart.rs:
