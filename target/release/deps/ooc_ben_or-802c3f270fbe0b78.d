/root/repo/target/release/deps/ooc_ben_or-802c3f270fbe0b78.d: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

/root/repo/target/release/deps/libooc_ben_or-802c3f270fbe0b78.rlib: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

/root/repo/target/release/deps/libooc_ben_or-802c3f270fbe0b78.rmeta: crates/ooc-ben-or/src/lib.rs crates/ooc-ben-or/src/harness.rs crates/ooc-ben-or/src/monolithic.rs crates/ooc-ben-or/src/msg.rs crates/ooc-ben-or/src/reconciliator.rs crates/ooc-ben-or/src/vac.rs

crates/ooc-ben-or/src/lib.rs:
crates/ooc-ben-or/src/harness.rs:
crates/ooc-ben-or/src/monolithic.rs:
crates/ooc-ben-or/src/msg.rs:
crates/ooc-ben-or/src/reconciliator.rs:
crates/ooc-ben-or/src/vac.rs:
