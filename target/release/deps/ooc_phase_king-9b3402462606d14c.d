/root/repo/target/release/deps/ooc_phase_king-9b3402462606d14c.d: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

/root/repo/target/release/deps/libooc_phase_king-9b3402462606d14c.rlib: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

/root/repo/target/release/deps/libooc_phase_king-9b3402462606d14c.rmeta: crates/ooc-phase-king/src/lib.rs crates/ooc-phase-king/src/ac.rs crates/ooc-phase-king/src/adaptive.rs crates/ooc-phase-king/src/byzantine.rs crates/ooc-phase-king/src/conciliator.rs crates/ooc-phase-king/src/harness.rs crates/ooc-phase-king/src/monolithic.rs crates/ooc-phase-king/src/queen.rs

crates/ooc-phase-king/src/lib.rs:
crates/ooc-phase-king/src/ac.rs:
crates/ooc-phase-king/src/adaptive.rs:
crates/ooc-phase-king/src/byzantine.rs:
crates/ooc-phase-king/src/conciliator.rs:
crates/ooc-phase-king/src/harness.rs:
crates/ooc-phase-king/src/monolithic.rs:
crates/ooc-phase-king/src/queen.rs:
