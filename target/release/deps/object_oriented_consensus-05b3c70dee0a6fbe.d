/root/repo/target/release/deps/object_oriented_consensus-05b3c70dee0a6fbe.d: src/lib.rs

/root/repo/target/release/deps/libobject_oriented_consensus-05b3c70dee0a6fbe.rlib: src/lib.rs

/root/repo/target/release/deps/libobject_oriented_consensus-05b3c70dee0a6fbe.rmeta: src/lib.rs

src/lib.rs:
