/root/repo/target/release/deps/ooc_simnet-d5f5914ec3813472.d: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

/root/repo/target/release/deps/libooc_simnet-d5f5914ec3813472.rlib: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

/root/repo/target/release/deps/libooc_simnet-d5f5914ec3813472.rmeta: crates/ooc-simnet/src/lib.rs crates/ooc-simnet/src/adversary.rs crates/ooc-simnet/src/byzantine.rs crates/ooc-simnet/src/fault.rs crates/ooc-simnet/src/network.rs crates/ooc-simnet/src/process.rs crates/ooc-simnet/src/rng.rs crates/ooc-simnet/src/sim.rs crates/ooc-simnet/src/stats.rs crates/ooc-simnet/src/sync.rs crates/ooc-simnet/src/time.rs crates/ooc-simnet/src/trace.rs crates/ooc-simnet/src/id.rs

crates/ooc-simnet/src/lib.rs:
crates/ooc-simnet/src/adversary.rs:
crates/ooc-simnet/src/byzantine.rs:
crates/ooc-simnet/src/fault.rs:
crates/ooc-simnet/src/network.rs:
crates/ooc-simnet/src/process.rs:
crates/ooc-simnet/src/rng.rs:
crates/ooc-simnet/src/sim.rs:
crates/ooc-simnet/src/stats.rs:
crates/ooc-simnet/src/sync.rs:
crates/ooc-simnet/src/time.rs:
crates/ooc-simnet/src/trace.rs:
crates/ooc-simnet/src/id.rs:
