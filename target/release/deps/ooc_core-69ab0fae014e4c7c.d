/root/repo/target/release/deps/ooc_core-69ab0fae014e4c7c.d: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

/root/repo/target/release/deps/libooc_core-69ab0fae014e4c7c.rlib: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

/root/repo/target/release/deps/libooc_core-69ab0fae014e4c7c.rmeta: crates/ooc-core/src/lib.rs crates/ooc-core/src/checker.rs crates/ooc-core/src/compose.rs crates/ooc-core/src/confidence.rs crates/ooc-core/src/objects.rs crates/ooc-core/src/sequence.rs crates/ooc-core/src/sync_objects.rs crates/ooc-core/src/sync_template.rs crates/ooc-core/src/template.rs crates/ooc-core/src/testkit.rs

crates/ooc-core/src/lib.rs:
crates/ooc-core/src/checker.rs:
crates/ooc-core/src/compose.rs:
crates/ooc-core/src/confidence.rs:
crates/ooc-core/src/objects.rs:
crates/ooc-core/src/sequence.rs:
crates/ooc-core/src/sync_objects.rs:
crates/ooc-core/src/sync_template.rs:
crates/ooc-core/src/template.rs:
crates/ooc-core/src/testkit.rs:
