/root/repo/target/release/deps/ooc_sharedmem-768c5c8523fa2551.d: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

/root/repo/target/release/deps/libooc_sharedmem-768c5c8523fa2551.rlib: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

/root/repo/target/release/deps/libooc_sharedmem-768c5c8523fa2551.rmeta: crates/ooc-sharedmem/src/lib.rs crates/ooc-sharedmem/src/adopt_commit.rs crates/ooc-sharedmem/src/conciliator.rs crates/ooc-sharedmem/src/consensus.rs crates/ooc-sharedmem/src/register.rs crates/ooc-sharedmem/src/vac.rs

crates/ooc-sharedmem/src/lib.rs:
crates/ooc-sharedmem/src/adopt_commit.rs:
crates/ooc-sharedmem/src/conciliator.rs:
crates/ooc-sharedmem/src/consensus.rs:
crates/ooc-sharedmem/src/register.rs:
crates/ooc-sharedmem/src/vac.rs:
