//! Cross-crate call graph over the parsed items.
//!
//! Nodes are every `fn` item in the workspace; edges are call sites,
//! resolved through the file's `use` map ([`crate::resolve`]) where a
//! path is written, and conservatively where it is not: a bare method
//! call `.m(...)` links to every method named `m` in the crates the
//! calling file can see (its own crate plus every crate its imports
//! mention). Over-approximation is the right failure mode here — the
//! graph exists to prove *absence* of paths from deterministic entry
//! points to banned APIs, so a spurious edge can only produce a finding
//! a human reviews, never hide one.

use crate::lexer::{Tok, Token};
use crate::source::Workspace;
use std::collections::{HashMap, HashSet};

/// One function node: indices into `ws.files` / `file.items.fns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnNode {
    /// Index of the file in `Workspace::files`.
    pub file: usize,
    /// Index of the fn in that file's `FileItems::fns`.
    pub item: usize,
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// Callee node id.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All fn nodes, in deterministic (file, item) order.
    pub nodes: Vec<FnNode>,
    /// Outgoing edges per node, deduplicated by callee (first call site
    /// wins), in source order.
    pub calls: Vec<Vec<Call>>,
    node_index: HashMap<(usize, usize), usize>,
}

/// Multi-source BFS result: shortest call chains from a set of entries.
#[derive(Debug)]
pub struct Reach {
    /// Per node: hop distance from the nearest entry, or `None`.
    pub dist: Vec<Option<u32>>,
    /// Per node: the `(caller, call-site line)` edge the BFS arrived by;
    /// `None` for entries and unreached nodes.
    pub parent: Vec<Option<(usize, u32)>>,
}

impl CallGraph {
    /// Builds the call graph for a scanned workspace.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, file) in ws.files.iter().enumerate() {
            for ii in 0..file.items.fns.len() {
                g.node_index.insert((fi, ii), g.nodes.len());
                g.nodes.push(FnNode { file: fi, item: ii });
            }
        }
        g.calls = vec![Vec::new(); g.nodes.len()];
        let idx = Indexes::build(ws, &g);
        for (fi, file) in ws.files.iter().enumerate() {
            let toks = &file.tokens;
            let mut seen: HashSet<(usize, usize)> = HashSet::new();
            for i in 0..toks.len() {
                if !is_call_site(toks, i) {
                    continue;
                }
                let Some(caller_item) = file.items.enclosing_fn(i) else {
                    continue;
                };
                let caller = g.node_index[&(fi, caller_item)];
                let line = toks[i].line;
                for callee in idx.resolve(ws, &g, fi, caller_item, i) {
                    if seen.insert((caller, callee)) {
                        g.calls[caller].push(Call { callee, line });
                    }
                }
            }
        }
        g
    }

    /// The node id of a `(file, fn-item)` pair.
    pub fn node_id(&self, file: usize, item: usize) -> Option<usize> {
        self.node_index.get(&(file, item)).copied()
    }

    /// `Type::name` (or bare `name`) of a node, for findings.
    pub fn display(&self, ws: &Workspace, node: usize) -> String {
        let n = self.nodes[node];
        ws.files[n.file].items.fns[n.item].display_name()
    }

    /// Multi-source BFS from `entries`; shortest-hop parents give minimal
    /// witness chains. Cycles (recursion) are handled by the visited set.
    pub fn reach(&self, entries: &[usize]) -> Reach {
        let mut dist = vec![None; self.nodes.len()];
        let mut parent = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if dist[e].is_none() {
                dist[e] = Some(0);
                queue.push_back(e);
            }
        }
        while let Some(n) = queue.pop_front() {
            let d = dist[n].unwrap();
            for call in &self.calls[n] {
                if dist[call.callee].is_none() {
                    dist[call.callee] = Some(d + 1);
                    parent[call.callee] = Some((n, call.line));
                    queue.push_back(call.callee);
                }
            }
        }
        Reach { dist, parent }
    }

    /// The minimal chain from an entry to `node`:
    /// `[(node_id, call-site line of the edge *into* the node)]`, entry
    /// first (its line is `None`).
    pub fn chain_to(&self, reach: &Reach, mut node: usize) -> Vec<(usize, Option<u32>)> {
        let mut rev = Vec::new();
        let mut line_into = None;
        loop {
            rev.push((node, line_into));
            match reach.parent[node] {
                Some((caller, line)) => {
                    line_into = Some(line);
                    node = caller;
                }
                None => break,
            }
        }
        // The walk recorded, per node, the line into its *callee*; shift
        // so each element carries the line of the edge arriving at it.
        let mut chain: Vec<(usize, Option<u32>)> = Vec::with_capacity(rev.len());
        for k in (0..rev.len()).rev() {
            chain.push(rev[k]);
        }
        let mut prev_line = None;
        for item in chain.iter_mut() {
            std::mem::swap(&mut item.1, &mut prev_line);
        }
        chain
    }
}

/// Rust keywords (and call-shaped non-calls) that precede `(` without
/// being a function name.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "in", "return", "loop", "as", "move", "ref", "let", "else",
    "unsafe", "fn", "impl", "where", "pub", "use", "mod", "crate", "dyn", "box",
];

/// Whether the token at `i` is the name position of a call: `ident (`
/// that is not a keyword, a declaration, or an attribute head.
fn is_call_site(toks: &[Token], i: usize) -> bool {
    let Some(name) = toks[i].ident() else {
        return false;
    };
    if !toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
        return false;
    }
    if NON_CALL_IDENTS.contains(&name) {
        return false;
    }
    if i > 0 {
        let prev = &toks[i - 1];
        // `fn name(` is a declaration; `#[cfg(` / `#[derive(` etc. are
        // attribute heads, not calls.
        if prev.is_ident("fn") || prev.is_punct('[') || prev.is_punct('#') {
            return false;
        }
    }
    true
}

/// Name → node lookup tables, all keyed deterministically at build time.
struct Indexes {
    /// Workspace crate names (hyphenated directory form).
    crates: HashSet<String>,
    /// Free fns by (crate, name).
    free_by_crate: HashMap<(String, String), Vec<usize>>,
    /// Free fns by (file index, name) — same-file shadowing wins.
    free_by_file: HashMap<(usize, String), Vec<usize>>,
    /// Free fns by bare name, workspace-wide (re-export fallback).
    free_by_name: HashMap<String, Vec<usize>>,
    /// Methods by (crate, type, name).
    method_by_crate_type: HashMap<(String, String, String), Vec<usize>>,
    /// Methods by (type, name), workspace-wide (re-export fallback).
    method_by_type: HashMap<(String, String), Vec<usize>>,
    /// Methods by bare name, for `.m(...)` dispatch fallback.
    method_by_name: HashMap<String, Vec<usize>>,
    /// Per file: workspace crates its `use` declarations mention, for
    /// scoping the dispatch fallback.
    visible_crates: Vec<HashSet<String>>,
}

/// `ooc_simnet` (path form) → `ooc-simnet` (crate-dir form).
fn normalize_crate(seg: &str) -> String {
    seg.replace('_', "-")
}

impl Indexes {
    fn build(ws: &Workspace, g: &CallGraph) -> Indexes {
        let mut idx = Indexes {
            crates: ws.files.iter().map(|f| f.crate_name.clone()).collect(),
            free_by_crate: HashMap::new(),
            free_by_file: HashMap::new(),
            free_by_name: HashMap::new(),
            method_by_crate_type: HashMap::new(),
            method_by_type: HashMap::new(),
            method_by_name: HashMap::new(),
            visible_crates: Vec::with_capacity(ws.files.len()),
        };
        for (id, node) in g.nodes.iter().enumerate() {
            let file = &ws.files[node.file];
            let f = &file.items.fns[node.item];
            let krate = file.crate_name.clone();
            if f.impl_type.is_empty() {
                idx.free_by_crate
                    .entry((krate, f.name.clone()))
                    .or_default()
                    .push(id);
                idx.free_by_file
                    .entry((node.file, f.name.clone()))
                    .or_default()
                    .push(id);
                idx.free_by_name.entry(f.name.clone()).or_default().push(id);
            } else {
                idx.method_by_crate_type
                    .entry((krate, f.impl_type.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                idx.method_by_type
                    .entry((f.impl_type.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                idx.method_by_name
                    .entry(f.name.clone())
                    .or_default()
                    .push(id);
            }
        }
        for file in &ws.files {
            let mut vis: HashSet<String> = HashSet::new();
            vis.insert(file.crate_name.clone());
            for (_, path) in file.uses.aliases() {
                if let Some(head) = path.split("::").next() {
                    let c = normalize_crate(head);
                    if idx.crates.contains(&c) {
                        vis.insert(c);
                    }
                }
            }
            idx.visible_crates.push(vis);
        }
        idx
    }

    /// Resolves the call at token `i` of file `fi` to candidate node ids.
    fn resolve(
        &self,
        ws: &Workspace,
        g: &CallGraph,
        fi: usize,
        caller_item: usize,
        i: usize,
    ) -> Vec<usize> {
        let file = &ws.files[fi];
        let toks = &file.tokens;
        let name = toks[i].ident().unwrap_or_default().to_string();
        let krate = file.crate_name.clone();

        // Method call: `receiver.name(...)`.
        if i > 0 && toks[i - 1].is_punct('.') {
            // `self.name(...)` resolves precisely through the enclosing
            // impl when that impl defines the method.
            if i >= 2 && toks[i - 2].is_ident("self") {
                let impl_type = &file.items.fns[caller_item].impl_type;
                if !impl_type.is_empty() {
                    if let Some(v) = self.method_by_crate_type.get(&(
                        krate.clone(),
                        impl_type.clone(),
                        name.clone(),
                    )) {
                        return v.clone();
                    }
                }
            }
            // Dispatch fallback: every method of that name in the crates
            // this file can see (conservative over trait dispatch).
            return self
                .method_by_name
                .get(&name)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&id| {
                            let c = &ws.files[g.nodes[id].file].crate_name;
                            self.visible_crates[fi].contains(c)
                        })
                        .collect()
                })
                .unwrap_or_default();
        }

        // Path or bare call: collect the `a::b::name` segments ending here.
        let segs = path_segments(toks, i);
        if segs.len() == 1 {
            // Bare `name(...)`: same file wins, then an explicit import,
            // then the rest of the crate, then visible workspace crates.
            if let Some(v) = self.free_by_file.get(&(fi, name.clone())) {
                return v.clone();
            }
            if file.uses.lookup(&name).is_some() {
                let v = self.resolve_imported(file, &segs, &name);
                if !v.is_empty() {
                    return v;
                }
            }
            if let Some(v) = self.free_by_crate.get(&(krate, name.clone())) {
                return v.clone();
            }
            return self
                .free_by_name
                .get(&name)
                .map(|v| {
                    v.iter()
                        .copied()
                        .filter(|&id| {
                            let c = &ws.files[g.nodes[id].file].crate_name;
                            *c != file.crate_name && self.visible_crates[fi].contains(c)
                        })
                        .collect()
                })
                .unwrap_or_default();
        }

        let head = segs[0].clone();
        // `Self::name(...)` → the enclosing impl's type.
        if head == "Self" {
            let impl_type = file.items.fns[caller_item].impl_type.clone();
            if impl_type.is_empty() {
                return Vec::new();
            }
            return self.type_method(&krate, &impl_type, &name);
        }
        // Crate-relative paths stay in this crate.
        if head == "crate" || head == "self" || head == "super" {
            return self.in_crate(&krate, &segs, &name);
        }
        if head == "std" || head == "core" || head == "alloc" {
            return Vec::new();
        }
        // Resolve the head through the file's imports.
        if file.uses.lookup(&head).is_some() {
            return self.resolve_imported(file, &segs, &name);
        }
        // Unimported `Type::method(...)` (same-file type or glob import).
        self.in_crate(&krate, &segs, &name)
    }

    /// Resolves a call whose leading segment is an explicit import:
    /// expands the import path and resolves inside the crate it names
    /// (nothing if the path leaves the workspace, e.g. `std`).
    fn resolve_imported(
        &self,
        file: &crate::source::SourceFile,
        segs: &[String],
        name: &str,
    ) -> Vec<usize> {
        let Some(base) = file.uses.lookup(&segs[0]) else {
            return Vec::new();
        };
        let mut full: Vec<String> = base.split("::").map(String::from).collect();
        full.extend(segs[1..].iter().cloned());
        while matches!(full.first().map(|s| s.as_str()), Some("crate" | "self" | "super")) {
            full.remove(0);
        }
        let Some(h) = full.first() else {
            return Vec::new();
        };
        let target = normalize_crate(h);
        if target == normalize_crate(&file.crate_name) || self.crates.contains(&target) {
            let target = if self.crates.contains(&target) {
                target
            } else {
                file.crate_name.clone()
            };
            return self.in_crate(&target, &full, name);
        }
        Vec::new()
    }

    /// Resolves a multi-segment path call inside a known crate: prefer
    /// `Type::method`, then a free fn of the final name; each falls back
    /// workspace-wide to follow `pub use` re-export chains.
    fn in_crate(&self, krate: &str, segs: &[String], name: &str) -> Vec<usize> {
        if segs.len() >= 2 {
            let ty = &segs[segs.len() - 2];
            if !matches!(ty.as_str(), "crate" | "self" | "super") {
                let v = self.type_method(krate, ty, name);
                if !v.is_empty() {
                    return v;
                }
            }
        }
        if let Some(v) = self.free_by_crate.get(&(krate.to_string(), name.to_string())) {
            return v.clone();
        }
        self.free_by_name.get(name).cloned().unwrap_or_default()
    }

    /// `Type::method` in `krate`, falling back workspace-wide (the type
    /// may be re-exported from another crate).
    fn type_method(&self, krate: &str, ty: &str, name: &str) -> Vec<usize> {
        if let Some(v) =
            self.method_by_crate_type
                .get(&(krate.to_string(), ty.to_string(), name.to_string()))
        {
            return v.clone();
        }
        self.method_by_type
            .get(&(ty.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }
}

/// The `a::b::c` segments of the path ending at the ident token `i`
/// (walking `::` chains backwards), innermost-first order reversed to
/// source order. A lone ident yields one segment.
fn path_segments(toks: &[Token], i: usize) -> Vec<String> {
    let mut first = i;
    while first >= 3
        && toks[first - 1].is_punct(':')
        && toks[first - 2].is_punct(':')
        && matches!(toks[first - 3].tok, Tok::Ident(_))
    {
        first -= 3;
    }
    let mut segs = Vec::new();
    let mut j = first;
    while j <= i {
        if let Some(s) = toks[j].ident() {
            segs.push(s.to_string());
        }
        j += 1;
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(p, c, s)| SourceFile::from_source(p, c, s))
                .collect(),
        )
    }

    fn id_of(ws: &Workspace, g: &CallGraph, display: &str) -> usize {
        (0..g.nodes.len())
            .find(|&n| g.display(ws, n) == display)
            .unwrap_or_else(|| panic!("no fn named {display}"))
    }

    #[test]
    fn direct_and_method_calls_link() {
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "fn top() { helper(); W::assoc(); }\n\
             fn helper() {}\n\
             struct W;\n\
             impl W { fn assoc() {} fn method(&self) { self.other() } fn other(&self) {} }",
        )]);
        let g = CallGraph::build(&w);
        let top = id_of(&w, &g, "top");
        let callees: Vec<String> = g.calls[top]
            .iter()
            .map(|c| g.display(&w, c.callee))
            .collect();
        assert_eq!(callees, vec!["helper", "W::assoc"]);
        let method = id_of(&w, &g, "W::method");
        assert_eq!(g.calls[method].len(), 1);
        assert_eq!(g.display(&w, g.calls[method][0].callee), "W::other");
    }

    #[test]
    fn recursion_and_mutual_recursion_terminate() {
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "fn rec(n: u32) { if n > 0 { rec(n - 1) } }\n\
             fn ping() { pong() }\n\
             fn pong() { ping() }",
        )]);
        let g = CallGraph::build(&w);
        let rec = id_of(&w, &g, "rec");
        let ping = id_of(&w, &g, "ping");
        let r = g.reach(&[rec, ping]);
        // BFS visits each node once despite the cycles.
        assert_eq!(r.dist[rec], Some(0));
        assert_eq!(r.dist[id_of(&w, &g, "pong")], Some(1));
    }

    #[test]
    fn cross_crate_calls_resolve_through_imports() {
        let w = ws(&[
            (
                "crates/ooc-simnet/src/sim.rs",
                "ooc-simnet",
                "pub struct Sim;\nimpl Sim { pub fn run(&self) {} }",
            ),
            (
                "crates/ooc-campaign/src/runner.rs",
                "ooc-campaign",
                "use ooc_simnet::Sim;\nfn drive(s: &Sim) { Sim::run(s); }",
            ),
        ]);
        let g = CallGraph::build(&w);
        let drive = id_of(&w, &g, "drive");
        assert_eq!(g.calls[drive].len(), 1);
        assert_eq!(g.display(&w, g.calls[drive][0].callee), "Sim::run");
    }

    #[test]
    fn pub_use_reexports_fall_back_to_the_defining_crate() {
        let w = ws(&[
            (
                "crates/ooc-core/src/util.rs",
                "ooc-core",
                "pub fn spin() {}",
            ),
            (
                "crates/ooc-simnet/src/lib.rs",
                "ooc-simnet",
                "pub use ooc_core::util::spin;",
            ),
            (
                "crates/ooc-campaign/src/a.rs",
                "ooc-campaign",
                "use ooc_simnet::spin;\nfn go() { spin(); }",
            ),
        ]);
        let g = CallGraph::build(&w);
        let go = id_of(&w, &g, "go");
        assert_eq!(g.calls[go].len(), 1);
        assert_eq!(g.display(&w, g.calls[go][0].callee), "spin");
    }

    #[test]
    fn trait_dispatch_falls_back_to_all_visible_impls() {
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "trait T { fn go(&self); }\n\
             struct A; struct B;\n\
             impl T for A { fn go(&self) {} }\n\
             impl T for B { fn go(&self) {} }\n\
             fn drive(x: &A) { x.go() }",
        )]);
        let g = CallGraph::build(&w);
        let drive = id_of(&w, &g, "drive");
        let mut callees: Vec<String> = g.calls[drive]
            .iter()
            .map(|c| g.display(&w, c.callee))
            .collect();
        callees.sort();
        // Conservative: both impls are assumed reachable.
        assert_eq!(callees, vec!["A::go", "B::go"]);
    }

    #[test]
    fn dispatch_fallback_is_scoped_to_visible_crates() {
        let w = ws(&[
            (
                "crates/ooc-core/src/a.rs",
                "ooc-core",
                "struct A;\nimpl A { fn run(&self) {} }\nfn drive(a: &A) { a.run() }",
            ),
            (
                "crates/ooc-campaign/src/b.rs",
                "ooc-campaign",
                "pub struct R;\nimpl R { pub fn run(&self) {} }",
            ),
        ]);
        let g = CallGraph::build(&w);
        let drive = id_of(&w, &g, "drive");
        let callees: Vec<String> = g.calls[drive]
            .iter()
            .map(|c| g.display(&w, c.callee))
            .collect();
        // ooc-core does not import ooc-campaign, so `R::run` is not a
        // candidate for its `.run(` call.
        assert_eq!(callees, vec!["A::run"]);
    }

    #[test]
    fn chains_are_minimal_and_carry_call_lines() {
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "fn entry() {\n  long();\n  sink();\n}\n\
             fn long() { mid(); }\n\
             fn mid() { sink(); }\n\
             fn sink() {}",
        )]);
        let g = CallGraph::build(&w);
        let entry = id_of(&w, &g, "entry");
        let sink = id_of(&w, &g, "sink");
        let r = g.reach(&[entry]);
        // Direct edge (1 hop) beats the long()->mid()->sink() route.
        assert_eq!(r.dist[sink], Some(1));
        let chain = g.chain_to(&r, sink);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0], (entry, None));
        // sink is reached from entry's line-3 call site.
        assert_eq!(chain[1], (sink, Some(3)));
    }
}
