//! Item-level parsing on top of the lexer.
//!
//! The cross-file rules (call graph, taint, effect exhaustiveness) need to
//! know *which function* a token belongs to, what that function's
//! parameters are, and which type/trait an `impl` block gives it — but
//! nothing deeper. So this is a structural scan, not a grammar: `fn`,
//! `struct`, `enum` and `impl` items are located by keyword, their bodies
//! are kept as token index ranges (brace-matched), and everything inside a
//! body stays raw tokens for the rules to walk.
//!
//! Like the lexer, the pass is lossy and total: token sequences it cannot
//! classify are skipped, never fatal. It only has to be right for code
//! `rustc` already accepts.

use crate::lexer::{Tok, Token};
use crate::source::SourceFile;

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Self type of the enclosing `impl`, `""` for free functions.
    pub impl_type: String,
    /// Trait of the enclosing `impl`, `""` for inherent impls/free fns.
    pub trait_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter names, including `self` when present.
    pub params: Vec<String>,
    /// Token index range of the body **including** its braces
    /// (`tokens[body.0]` is `{`, `tokens[body.1]` is the matching `}`);
    /// `None` for bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Whether the `fn` keyword sits inside `#[cfg(test)]`-gated code.
    pub is_test: bool,
}

impl FnItem {
    /// `Type::name` for methods, bare `name` for free functions.
    pub fn display_name(&self) -> String {
        if self.impl_type.is_empty() {
            self.name.clone()
        } else {
            format!("{}::{}", self.impl_type, self.name)
        }
    }
}

/// One named field of a struct.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Field name.
    pub name: String,
    /// 1-based line of the field name.
    pub line: u32,
    /// Identifiers appearing in the field's type (for locating effect
    /// enums like `storage: Vec<StorageOp>` → `["Vec", "StorageOp"]`).
    pub type_idents: Vec<String>,
}

/// One `struct` item with named fields (tuple/unit structs keep an empty
/// field list).
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order.
    pub fields: Vec<FieldItem>,
    /// Whether the item is `#[cfg(test)]`-gated.
    pub is_test: bool,
}

/// One `enum` item.
#[derive(Debug, Clone)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// Whether the item is `#[cfg(test)]`-gated.
    pub is_test: bool,
}

/// Every item parsed out of one file.
#[derive(Debug, Clone, Default)]
pub struct FileItems {
    /// All `fn` items, in source order (nested fns appear after their
    /// enclosing fn).
    pub fns: Vec<FnItem>,
    /// All `struct` items with named fields.
    pub structs: Vec<StructItem>,
    /// All `enum` items.
    pub enums: Vec<EnumItem>,
}

impl FileItems {
    /// The innermost function whose body contains token index `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if open < idx && idx < close {
                    best = match best {
                        Some(b) => {
                            let (bo, _) = self.fns[b].body.unwrap_or((0, usize::MAX));
                            if open > bo {
                                Some(i)
                            } else {
                                Some(b)
                            }
                        }
                        None => Some(i),
                    };
                }
            }
        }
        best
    }
}

/// Parses the items of one lexed file.
pub fn parse_items(file: &SourceFile) -> FileItems {
    let toks = &file.tokens;
    let mut out = FileItems::default();
    // Impl regions first, so each fn can look up its enclosing impl.
    let impls = impl_regions(toks);
    let mut i = 0;
    while i < toks.len() {
        match toks[i].ident() {
            Some("fn") => {
                if let Some((item, next)) = parse_fn(file, i, &impls) {
                    out.fns.push(item);
                    // Continue right after the signature so nested fns in
                    // the body are themselves discovered.
                    i = next;
                    continue;
                }
            }
            Some("struct") => {
                if let Some((item, next)) = parse_struct(file, i) {
                    out.structs.push(item);
                    i = next;
                    continue;
                }
            }
            Some("enum") => {
                if let Some((item, next)) = parse_enum(file, i) {
                    out.enums.push(item);
                    i = next;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// `(open_brace_idx, close_brace_idx, type_name, trait_name)` for every
/// `impl` block in the file.
fn impl_regions(toks: &[Token]) -> Vec<(usize, usize, String, String)> {
    let mut regions = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        let mut j = i + 1;
        // Generic parameter list.
        if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let (first, j2, at_for) = scan_head_path(toks, j);
        let (trait_name, type_name, mut k) = if at_for {
            let (ty, k2, _) = scan_head_path(toks, j2 + 1);
            (first, ty, k2)
        } else {
            (String::new(), first, j2)
        };
        // Skip a where clause to the opening brace.
        while k < toks.len() && !toks[k].is_punct('{') && !toks[k].is_punct(';') {
            k += 1;
        }
        if k < toks.len() && toks[k].is_punct('{') {
            if let Some(close) = match_brace(toks, k) {
                regions.push((k, close, type_name, trait_name));
            }
        }
    }
    regions
}

/// Scans a trait/type path from `j`: returns (last depth-0 ident, stop
/// index, whether stopped at `for`).
fn scan_head_path(toks: &[Token], mut j: usize) -> (String, usize, bool) {
    let mut depth = 0i32;
    let mut last = String::new();
    while j < toks.len() {
        let t = &toks[j];
        if depth == 0 {
            if t.is_ident("for") {
                return (last, j, true);
            }
            if t.is_ident("where") || t.is_punct('{') || t.is_punct(';') {
                return (last, j, false);
            }
            if let Some(name) = t.ident() {
                last = name.to_string();
            }
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            depth -= 1;
        }
        j += 1;
    }
    (last, j, false)
}

/// Index of the `}` matching the `{` at `open`.
fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Parses one `fn` item starting at the `fn` keyword index; returns the
/// item and the index to resume scanning from (just past the signature,
/// so nested items are still visited).
fn parse_fn(
    file: &SourceFile,
    fn_idx: usize,
    impls: &[(usize, usize, String, String)],
) -> Option<(FnItem, usize)> {
    let toks = &file.tokens;
    let name = toks.get(fn_idx + 1)?.ident()?.to_string();
    let line = toks[fn_idx].line;
    let mut j = fn_idx + 2;
    // Generic parameter list on the fn itself.
    if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    if !toks.get(j)?.is_punct('(') {
        return None;
    }
    // Parameter list: names are depth-1 idents directly followed by `:`
    // (not `::`), plus `self`.
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                k += 1;
                break;
            }
        } else if depth == 1 {
            if t.is_ident("self") {
                params.push("self".to_string());
            } else if let Some(p) = t.ident() {
                let colon = toks.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                    && !toks.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false);
                let after_colon = k > 0 && toks[k - 1].is_punct(':');
                if colon && !after_colon && p != "mut" && p != "ref" {
                    params.push(p.to_string());
                }
            }
        }
        k += 1;
    }
    // Scan to the body brace or the trait-declaration semicolon.
    let mut b = k;
    while b < toks.len() && !toks[b].is_punct('{') && !toks[b].is_punct(';') {
        b += 1;
    }
    let body = if b < toks.len() && toks[b].is_punct('{') {
        match_brace(toks, b).map(|close| (b, close))
    } else {
        None
    };
    let (impl_type, trait_name) = impls
        .iter()
        .filter(|(open, close, _, _)| *open < fn_idx && fn_idx < *close)
        .max_by_key(|(open, _, _, _)| *open)
        .map(|(_, _, ty, tr)| (ty.clone(), tr.clone()))
        .unwrap_or_default();
    let is_test = !file.non_test.get(fn_idx).copied().unwrap_or(true);
    Some((
        FnItem {
            name,
            impl_type,
            trait_name,
            line,
            params,
            body,
            is_test,
        },
        k,
    ))
}

/// Parses one `struct` item starting at the `struct` keyword index.
fn parse_struct(file: &SourceFile, s_idx: usize) -> Option<(StructItem, usize)> {
    let toks = &file.tokens;
    let name = toks.get(s_idx + 1)?.ident()?.to_string();
    let line = toks[s_idx].line;
    let mut j = s_idx + 2;
    // Skip to `{`, `;` (unit) or `(` (tuple — no named fields).
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            angle -= 1;
        } else if angle == 0 && (t.is_punct(';') || t.is_punct('(')) {
            return Some((
                StructItem {
                    name,
                    line,
                    fields: Vec::new(),
                    is_test: !file.non_test.get(s_idx).copied().unwrap_or(true),
                },
                j,
            ));
        } else if angle == 0 && t.is_punct('{') {
            break;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let close = match_brace(toks, j)?;
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut k = j;
    while k <= close {
        let t = &toks[k];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
        } else if depth == 1 {
            if let Some(f) = t.ident() {
                let colon = toks.get(k + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                    && !toks.get(k + 2).map(|t| t.is_punct(':')).unwrap_or(false);
                let after_colon = k > 0 && toks[k - 1].is_punct(':');
                if colon && !after_colon && f != "pub" && f != "crate" {
                    // Collect the field type's identifiers up to the
                    // field-terminating comma (angle-depth aware).
                    let mut type_idents = Vec::new();
                    let mut m = k + 2;
                    let mut ang = 0i32;
                    while m < close {
                        let tt = &toks[m];
                        if tt.is_punct('<') {
                            ang += 1;
                        } else if tt.is_punct('>') && !toks[m - 1].is_punct('-') {
                            ang -= 1;
                        } else if ang <= 0 && tt.is_punct(',') {
                            break;
                        } else if let Some(id) = tt.ident() {
                            type_idents.push(id.to_string());
                        }
                        m += 1;
                    }
                    fields.push(FieldItem {
                        name: f.to_string(),
                        line: t.line,
                        type_idents,
                    });
                }
            }
        }
        k += 1;
    }
    Some((
        StructItem {
            name,
            line,
            fields,
            is_test: !file.non_test.get(s_idx).copied().unwrap_or(true),
        },
        close + 1,
    ))
}

/// Parses one `enum` item starting at the `enum` keyword index.
fn parse_enum(file: &SourceFile, e_idx: usize) -> Option<(EnumItem, usize)> {
    let toks = &file.tokens;
    let name = toks.get(e_idx + 1)?.ident()?.to_string();
    let line = toks[e_idx].line;
    let mut j = e_idx + 2;
    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_punct('{') {
        return None;
    }
    let close = match_brace(toks, j)?;
    let mut variants = Vec::new();
    let mut brace = 0i32;
    let mut paren = 0i32;
    // A variant name is a depth-1 ident whose previous significant token
    // is the opening `{`, a `,`, or an attribute's closing `]`.
    let mut prev_sig: Option<char> = None;
    let mut k = j;
    while k <= close {
        let t = &toks[k];
        match &t.tok {
            Tok::Punct('{') => {
                brace += 1;
                prev_sig = Some('{');
            }
            Tok::Punct('}') => {
                brace -= 1;
                prev_sig = Some('}');
            }
            Tok::Punct('(') => {
                paren += 1;
                prev_sig = Some('(');
            }
            Tok::Punct(')') => {
                paren -= 1;
                prev_sig = Some(')');
            }
            Tok::Punct(c) => prev_sig = Some(*c),
            Tok::Ident(id) => {
                if brace == 1
                    && paren == 0
                    && matches!(prev_sig, Some('{') | Some(',') | Some(']'))
                {
                    variants.push(id.clone());
                }
                prev_sig = Some('i');
            }
            Tok::Literal(_) => prev_sig = Some('l'),
        }
        k += 1;
    }
    Some((
        EnumItem {
            name,
            line,
            variants,
            is_test: !file.non_test.get(e_idx).copied().unwrap_or(true),
        },
        close + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        parse_items(&SourceFile::from_source("src/x.rs", "ooc-core", src))
    }

    #[test]
    fn free_fns_methods_and_bodies() {
        let fi = items(
            "fn free(a: u32, b: &str) -> u32 { helper(a) }\n\
             impl Widget { fn method(&self, x: u64) {} }\n\
             impl Clone for Widget { fn clone(&self) -> Widget { Widget }\n }\n\
             trait T { fn decl(&self); fn dflt(&self) { self.decl() } }",
        );
        let names: Vec<_> = fi.fns.iter().map(|f| f.display_name()).collect();
        assert_eq!(
            names,
            vec!["free", "Widget::method", "Widget::clone", "decl", "dflt"]
        );
        assert_eq!(fi.fns[0].params, vec!["a", "b"]);
        assert_eq!(fi.fns[1].params, vec!["self", "x"]);
        assert_eq!(fi.fns[2].trait_name, "Clone");
        assert!(fi.fns[3].body.is_none(), "trait declaration has no body");
        assert!(fi.fns[4].body.is_some(), "default method has a body");
    }

    #[test]
    fn generic_fns_and_fn_bounds() {
        let fi = items("fn g<T: Fn(u32) -> u64>(f: T, n: usize) -> u64 { f(n as u32) }");
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].params, vec!["f", "n"]);
        assert!(fi.fns[0].body.is_some());
    }

    #[test]
    fn nested_fns_are_found_and_attributed() {
        let fi = items("fn outer() { fn inner(q: u8) { let _ = q; } inner(3); }");
        let names: Vec<_> = fi.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        // The innermost enclosing fn of a token inside inner's body is inner.
        let (open, _) = fi.fns[1].body.unwrap();
        assert_eq!(fi.enclosing_fn(open + 1), Some(1));
    }

    #[test]
    fn structs_fields_and_types() {
        let fi = items(
            "pub struct Effects<M> { pub outbox: Vec<Outgoing<M>>, storage: Vec<StorageOp>, halted: bool }\n\
             struct Unit;\nstruct Tup(u32);",
        );
        assert_eq!(fi.structs.len(), 3);
        let e = &fi.structs[0];
        let fields: Vec<_> = e.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fields, vec!["outbox", "storage", "halted"]);
        assert!(e.fields[1].type_idents.contains(&"StorageOp".to_string()));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let fi = items(
            "pub enum StorageOp { Put { key: String, value: Vec<u8> }, Sync, Mark(u32, bool) }",
        );
        assert_eq!(fi.enums.len(), 1);
        assert_eq!(fi.enums[0].variants, vec!["Put", "Sync", "Mark"]);
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let fi = items("fn live() {}\n#[cfg(test)]\nmod t { fn gated() {} }");
        assert!(!fi.fns[0].is_test);
        assert!(fi.fns[1].is_test);
    }
}
