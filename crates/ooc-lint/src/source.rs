//! The workspace model: which files are scanned, which crate each belongs
//! to, and which tokens sit inside `#[cfg(test)]` items.

use crate::lexer::{lex, LineComment, Tok, Token};
use crate::parse::FileItems;
use crate::resolve::UseMap;
use crate::suppress::Allow;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The pseudo-crate name for the workspace-root package's own sources
/// (`src/`, `tests/`, `examples/`).
pub const ROOT_PKG: &str = "object-oriented-consensus";

/// Crates whose runs must be a pure function of the seed. The simulator,
/// the framework, and every protocol implementation live here; the
/// campaign/bench/lint tooling that *measures* those runs does not.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "ooc-core",
    "ooc-simnet",
    "ooc-sharedmem",
    "ooc-ben-or",
    "ooc-phase-king",
    "ooc-raft",
    ROOT_PKG,
];

/// Individual modules inside tooling crates that are nevertheless bound
/// by the determinism contract. The parallel campaign executor promises
/// byte-identical output for every `--jobs` value, which makes it
/// deterministic code living in a measurement crate. The stable-storage
/// model, the timing-wheel scheduler, the network fan-out planner and
/// the reliable-delivery layer are listed explicitly too: all four are
/// already covered via [`DETERMINISTIC_CRATES`] (`ooc-simnet`), but
/// pinning the paths keeps crash-recovery semantics, the engine's
/// `(at, seq)` pop order, the planner's RNG draw-order contract and the
/// retransmission backoff/jitter derivation chain in scope even if the
/// crate list changes.
pub const DETERMINISTIC_MODULES: &[&str] = &[
    "crates/ooc-campaign/src/degradation.rs",
    "crates/ooc-campaign/src/parallel.rs",
    "crates/ooc-simnet/src/network.rs",
    "crates/ooc-simnet/src/queue.rs",
    "crates/ooc-simnet/src/reliable.rs",
    "crates/ooc-simnet/src/storage.rs",
];

/// One scanned source file, fully lexed and annotated.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub path: String,
    /// The crate the file belongs to (directory name under `crates/`, or
    /// [`ROOT_PKG`]).
    pub crate_name: String,
    /// Source lines, for snippet extraction.
    pub lines: Vec<String>,
    /// Lexed code tokens.
    pub tokens: Vec<Token>,
    /// Per-token flag: `true` when the token is *outside* every
    /// `#[cfg(test)]` / `#[test]` item.
    pub non_test: Vec<bool>,
    /// All `//` comments.
    pub comments: Vec<LineComment>,
    /// Parsed suppression annotations.
    pub allows: Vec<Allow>,
    /// The file's `use` declarations.
    pub uses: UseMap,
    /// Item-level structure (fns, structs, enums) parsed from the tokens.
    pub items: FileItems,
    /// Whether the file lives under a `tests/` or `benches/` directory
    /// (integration tests and benchmarks, not shipped code).
    pub is_test_file: bool,
}

impl SourceFile {
    /// Builds a file model from source text (the unit tests feed snippets
    /// through this directly).
    pub fn from_source(path: &str, crate_name: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let non_test = mask_cfg_test(&lexed.tokens);
        let uses = UseMap::parse(&lexed.tokens);
        let is_test_file = path.contains("/tests/") || path.contains("/benches/")
            || path.starts_with("tests/") || path.starts_with("benches/");
        let mut file = SourceFile {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            lines: text.lines().map(String::from).collect(),
            tokens: lexed.tokens,
            non_test,
            comments: lexed.comments,
            allows: Vec::new(),
            uses,
            items: FileItems::default(),
            is_test_file,
        };
        file.allows = crate::suppress::parse_allows(&file);
        file.items = crate::parse::parse_items(&file);
        file
    }

    /// Whether this file is bound by the determinism contract: it belongs
    /// to a determinism-contract crate, or is one of the individually
    /// listed [`DETERMINISTIC_MODULES`].
    pub fn deterministic(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name.as_str())
            || DETERMINISTIC_MODULES.contains(&self.path.as_str())
    }

    /// The trimmed source line `line` (1-based), for findings.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    /// The smallest token line strictly greater than `line`, used to
    /// attach standalone suppression comments to the code they precede.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens
            .iter()
            .map(|t| t.line)
            .filter(|&l| l > line)
            .min()
    }
}

/// The scanned workspace.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root directory.
    pub root: PathBuf,
    /// Every scanned file, in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Builds a workspace model from in-memory files (fixture tests).
    pub fn from_files(files: Vec<SourceFile>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files,
        }
    }

    /// Scans the real workspace at `root`: the root package's `src/`,
    /// `tests/` and `examples/`, plus every `crates/*/{src,tests,benches,examples}`.
    /// `vendor/` (offline stand-ins for external crates) and `target/` are
    /// never scanned.
    pub fn scan(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut paths: Vec<(PathBuf, String)> = Vec::new();
        for dir in ["src", "tests", "examples"] {
            collect_rs(&root.join(dir), &mut |p| {
                paths.push((p, ROOT_PKG.to_string()));
            })?;
        }
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<_> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            entries.sort();
            for krate in entries {
                let name = krate
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default()
                    .to_string();
                for dir in ["src", "tests", "benches", "examples"] {
                    collect_rs(&krate.join(dir), &mut |p| {
                        paths.push((p, name.clone()));
                    })?;
                }
            }
        }
        paths.sort();
        for (path, crate_name) in paths {
            let text = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::from_source(&rel, &crate_name, &text));
        }
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Walks up from `start` to the directory whose `Cargo.toml` declares
    /// `[workspace]`.
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = start.to_path_buf();
        loop {
            let manifest = dir.join("Cargo.toml");
            if manifest.is_file() {
                if let Ok(text) = fs::read_to_string(&manifest) {
                    if text.contains("[workspace]") {
                        return Some(dir);
                    }
                }
            }
            if !dir.pop() {
                return None;
            }
        }
    }
}

/// Recursively collects `.rs` files under `dir` (silently skips a missing
/// dir — not every crate has `benches/`).
fn collect_rs(dir: &Path, push: &mut impl FnMut(PathBuf)) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, push)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            push(path);
        }
    }
    Ok(())
}

/// Computes, per token, whether it sits outside every `#[cfg(test)]` /
/// `#[test]`-gated item. Attribute matching is deliberately loose — any
/// `cfg(...)` attribute mentioning `test` gates the following item — which
/// errs on the side of *not* linting test-only code.
fn mask_cfg_test(tokens: &[Token]) -> Vec<bool> {
    let mut non_test = vec![true; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, gates_test)) = parse_attr(tokens, i) {
            if gates_test {
                // Skip any further attributes on the same item.
                let mut j = attr_end;
                while let Some((next_end, _)) = parse_attr(tokens, j) {
                    j = next_end;
                }
                let item_end = skip_item(tokens, j);
                for flag in non_test.iter_mut().take(item_end).skip(i) {
                    *flag = false;
                }
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    non_test
}

/// If `i` starts an attribute (`#[...]` or `#![...]`), returns the index
/// past its closing `]` and whether it is test-gating.
fn parse_attr(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !tokens.get(i)?.is_punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.is_punct('!') {
        j += 1;
    }
    if !tokens.get(j)?.is_punct('[') {
        return None;
    }
    let mut depth = 1;
    let mut idents = Vec::new();
    j += 1;
    while j < tokens.len() && depth > 0 {
        match &tokens[j].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            Tok::Ident(s) => idents.push(s.as_str()),
            _ => {}
        }
        j += 1;
    }
    let gates = match idents.first() {
        Some(&"cfg") => idents.contains(&"test"),
        Some(&"test") => true,
        _ => false,
    };
    Some((j, gates))
}

/// Skips one item starting at `i`: to its matching close brace if a `{`
/// opens before any top-level `;`, else to the `;`.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].tok {
            Tok::Punct('{') => {
                let mut depth = 1;
                j += 1;
                while j < tokens.len() && depth > 0 {
                    match &tokens[j].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            Tok::Punct(';') => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "fn live() { a(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { hidden(); }\n}\n\
                   fn live2() { b(); }";
        let f = SourceFile::from_source("src/x.rs", "ooc-core", src);
        let visible: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.non_test)
            .filter(|(_, &nt)| nt)
            .filter_map(|(t, _)| t.ident())
            .collect();
        assert!(visible.contains(&"a"));
        assert!(visible.contains(&"b"));
        assert!(!visible.contains(&"hidden"));
    }

    #[test]
    fn test_attr_masks_single_fn() {
        let src = "#[test]\nfn t() { hidden(); }\nfn live() { a(); }";
        let f = SourceFile::from_source("src/x.rs", "ooc-core", src);
        let visible: Vec<&str> = f
            .tokens
            .iter()
            .zip(&f.non_test)
            .filter(|(_, &nt)| nt)
            .filter_map(|(t, _)| t.ident())
            .collect();
        assert!(!visible.contains(&"hidden"));
        assert!(visible.contains(&"a"));
    }

    #[test]
    fn non_gating_attrs_do_not_mask() {
        let src = "#[derive(Debug)]\nstruct S { x: u64 }\nfn live() {}";
        let f = SourceFile::from_source("src/x.rs", "ooc-core", src);
        assert!(f.non_test.iter().all(|&b| b));
    }
}
