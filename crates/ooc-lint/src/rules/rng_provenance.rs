//! `determinism/rng-provenance` — every RNG must flow from a seed.
//!
//! The ambient-RNG rule bans OS entropy; this rule closes the remaining
//! gap: a `SplitMix64` built inside deterministic code from *nothing* —
//! a constant, a counter, an address — is replayable but not
//! seed-controlled, so two campaigns with different master seeds would
//! share its stream and "re-run the failing seed" would not reproduce
//! the RNG-dependent schedule. Inside every non-test function of a
//! deterministic file, each RNG construction
//! (`SplitMix64::new` / `seed_from_u64` / `from_seed` / `derive`) must be
//! fed from tainted data: a parameter (including `self`, hence any field
//! of the state the seed was threaded into) or a local binding derived
//! from one. Construction from fresh, seed-independent values is a
//! finding. Test code is exempt — a constant seed in a test *is* the
//! seed.

use crate::lexer::Tok;
use crate::parse::FnItem;
use crate::report::Finding;
use crate::rules::{LintContext, Rule};
use crate::source::SourceFile;

/// RNG type whose constructions are checked.
const RNG_TYPE: &str = "SplitMix64";

/// Constructor/derivation method names on [`RNG_TYPE`].
const CONSTRUCTORS: &[&str] = &["new", "seed_from_u64", "from_seed", "derive"];

/// See module docs.
pub struct RngProvenance;

impl Rule for RngProvenance {
    fn id(&self) -> &'static str {
        "determinism/rng-provenance"
    }

    fn describe(&self) -> &'static str {
        "every SplitMix64 in deterministic code must be constructed from a \
         seed parameter/field (tainted data); fresh seed-independent \
         construction is a finding"
    }

    fn scope(&self) -> &'static str {
        "fn bodies in deterministic crates and listed modules"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            if !file.deterministic() || file.is_test_file {
                continue;
            }
            for f in &file.items.fns {
                if f.is_test || f.body.is_none() {
                    continue;
                }
                ticks += check_fn(self.id(), file, f, out);
            }
        }
        ticks
    }
}

/// Checks one function body; returns tokens walked.
fn check_fn(
    rule: &'static str,
    file: &SourceFile,
    f: &FnItem,
    out: &mut Vec<Finding>,
) -> u64 {
    let (open, close) = f.body.unwrap();
    let toks = &file.tokens;
    let mut ticks = 0u64;

    // Taint: parameters (incl. `self`) seed the set; a `let` binding whose
    // right-hand side mentions tainted data joins it. Iterate to a
    // fixpoint so `let a = seed; let b = a;` taints `b` regardless of
    // declaration order quirks.
    let mut tainted: Vec<String> = f.params.clone();
    loop {
        let mut grew = false;
        let mut i = open;
        while i < close {
            ticks += 1;
            if toks[i].is_ident("let") {
                // Binding names: idents between `let` and `=` (covers
                // plain bindings and tuple/struct patterns), skipping the
                // type ascription after `:`.
                let mut names = Vec::new();
                let mut j = i + 1;
                let mut in_type = false;
                while j < close && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                    if toks[j].is_punct(':') {
                        in_type = true;
                    } else if toks[j].is_punct(',') {
                        in_type = false;
                    } else if !in_type {
                        if let Some(n) = toks[j].ident() {
                            if n != "mut" && n != "ref" {
                                names.push(n.to_string());
                            }
                        }
                    }
                    j += 1;
                }
                if j < close && toks[j].is_punct('=') {
                    // RHS: to the statement-terminating `;` at depth 0.
                    let mut depth = 0i32;
                    let mut k = j + 1;
                    let mut rhs_tainted = false;
                    while k < close {
                        match &toks[k].tok {
                            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                            Tok::Punct(';') if depth == 0 => break,
                            Tok::Ident(n) if tainted.iter().any(|t| t == n) => {
                                rhs_tainted = true;
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if rhs_tainted {
                        for n in names {
                            if !tainted.contains(&n) {
                                tainted.push(n);
                                grew = true;
                            }
                        }
                    }
                    i = k;
                    continue;
                }
            }
            i += 1;
        }
        if !grew {
            break;
        }
    }

    // Every RNG construction must take at least one tainted argument.
    let mut i = open;
    while i < close {
        ticks += 1;
        let is_ctor = toks[i].is_ident(RNG_TYPE)
            && toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && toks
                .get(i + 3)
                .and_then(|t| t.ident())
                .map(|n| CONSTRUCTORS.contains(&n))
                .unwrap_or(false)
            && toks.get(i + 4).map(|t| t.is_punct('(')).unwrap_or(false);
        if !is_ctor {
            i += 1;
            continue;
        }
        // Walk the argument list.
        let mut depth = 0i32;
        let mut k = i + 4;
        let mut arg_tainted = false;
        while k < toks.len() {
            match &toks[k].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(n) if tainted.iter().any(|t| t == n) => {
                    arg_tainted = true;
                }
                _ => {}
            }
            k += 1;
        }
        if !arg_tainted {
            let line = toks[i].line;
            out.push(Finding {
                rule,
                path: file.path.clone(),
                line,
                snippet: file.snippet(line),
                message: format!(
                    "`{}::{}` in `{}` takes no seed-derived argument: the \
                     stream is independent of the run seed, so replaying \
                     the seed cannot reproduce it; thread the seed (or a \
                     SplitMix64 derived from it) into this construction",
                    RNG_TYPE,
                    toks[i + 3].ident().unwrap_or_default(),
                    f.display_name(),
                ),
                witness: Vec::new(),
                suppressed: None,
            });
        }
        i = k.max(i + 1);
    }
    ticks
}
