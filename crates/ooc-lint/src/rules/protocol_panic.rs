//! `protocol/panic` — protocol state machines must not crash themselves.
//!
//! The fault model (`ooc-core/src/budget.rs`, the campaign's `FaultPlan`)
//! accounts for every crash the adversary is allowed; an `unwrap()` inside
//! an `on_message` handler is a crash the budget never sees, so a run that
//! "tolerates t faults" can silently tolerate fewer. Inside state-machine
//! files in deterministic crates, `unwrap`/`expect`/`panic!`/
//! `unreachable!`/`todo!`/`unimplemented!` are flagged; a genuine
//! can't-happen invariant keeps its panic but must say why via an allow.
//! (`assert!` is deliberately exempt: executable invariant documentation.)

use crate::lexer::Tok;
use crate::report::Finding;
use crate::rules::{is_state_machine_file, LintContext, Rule};

/// See module docs.
pub struct ProtocolPanic;

impl Rule for ProtocolPanic {
    fn id(&self) -> &'static str {
        "protocol/panic"
    }

    fn describe(&self) -> &'static str {
        "flags unwrap/expect/panic!/unreachable! inside protocol state machines, \
         where a crash escapes the fault-budget accounting"
    }

    fn scope(&self) -> &'static str {
        "protocol state-machine files in deterministic crates"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            if !file.deterministic() || file.is_test_file || !is_state_machine_file(file) {
                continue;
            }
            ticks += file.tokens.len() as u64;
            let toks = &file.tokens;
            for (i, t) in toks.iter().enumerate() {
                if !file.non_test[i] {
                    continue;
                }
                let Some(name) = t.ident() else { continue };
                let hit = match name {
                    // Method calls: only the exact `.unwrap()` / `.expect(`,
                    // never `unwrap_or` and friends (distinct identifiers).
                    "unwrap" | "expect" => {
                        i > 0 && toks[i - 1].is_punct('.')
                    }
                    "panic" | "unreachable" | "todo" | "unimplemented" => {
                        matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')))
                    }
                    _ => false,
                };
                if hit {
                    out.push(Finding {
                        rule: self.id(),
                        path: file.path.clone(),
                        line: t.line,
                        snippet: file.snippet(t.line),
                        message: format!(
                            "`{name}` in a protocol state machine crashes outside the \
                             fault budget; return a protocol error / default, or allow \
                             with the invariant that makes this unreachable"
                        ),
                        witness: Vec::new(),
                        suppressed: None,
                    });
                }
            }
        }
        ticks
    }
}
