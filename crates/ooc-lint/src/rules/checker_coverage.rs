//! `hygiene/checker-coverage` — every public protocol object is checked.
//!
//! The repo's claims about Lemmas 1–7 rest on the §2 property checkers
//! (`ooc-core/src/checker.rs`) actually being pointed at each object
//! implementation. This rule finds every *public* implementor of the
//! protocol-object traits (`VacObject`, `AcObject`, `ConciliatorObject`,
//! `ReconciliatorObject`, `SyncObject`) and requires it to be exercised by
//! a test that speaks the checker vocabulary: the implementor's name must
//! appear in some file under `tests/` or `crates/*/tests/` that also
//! references the checker pipeline (`check_*`, `RoundOutcomes`,
//! `AcOutcome`, `VacOutcome`, `Violation`, or the crash-recovery
//! `DurabilityChecker`).

use crate::report::Finding;
use crate::rules::{impl_heads, LintContext, Rule};
use crate::source::SourceFile;

const OBJECT_TRAITS: &[&str] = &[
    "VacObject",
    "AcObject",
    "ConciliatorObject",
    "ReconciliatorObject",
    "SyncObject",
];

/// See module docs.
pub struct CheckerCoverage;

impl Rule for CheckerCoverage {
    fn id(&self) -> &'static str {
        "hygiene/checker-coverage"
    }

    fn describe(&self) -> &'static str {
        "every public AC/VAC/conciliator/reconciliator implementation must be \
         exercised by the §2 checker pipeline somewhere under tests/"
    }

    fn scope(&self) -> &'static str {
        "public protocol-object impls vs tests/"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let ws = ctx.ws;
        let mut ticks = 0u64;
        // Public type names per crate (plain `pub`, not `pub(crate)`).
        let mut pub_types: Vec<(&str, &str)> = Vec::new(); // (crate, name)
        for file in &ws.files {
            if file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            for w in file.tokens.windows(3) {
                if w[0].is_ident("pub")
                    && matches!(w[1].ident(), Some("struct" | "enum"))
                {
                    if let Some(name) = w[2].ident() {
                        pub_types.push((&file.crate_name, name));
                    }
                }
            }
        }
        // Test files that reference the checker pipeline, with their idents.
        let checker_tests: Vec<&SourceFile> = ws
            .files
            .iter()
            .filter(|f| f.is_test_file && speaks_checker(f))
            .collect();
        let mut reported: Vec<String> = Vec::new();
        for file in &ws.files {
            if file.is_test_file {
                continue;
            }
            for head in impl_heads(file) {
                if !OBJECT_TRAITS.contains(&head.trait_name.as_str()) {
                    continue;
                }
                let name = head.type_name.as_str();
                let is_pub = pub_types
                    .iter()
                    .any(|(c, n)| *c == file.crate_name && *n == name);
                if !is_pub || reported.iter().any(|r| r == name) {
                    continue;
                }
                let covered = checker_tests
                    .iter()
                    .any(|f| f.tokens.iter().any(|t| t.is_ident(name)));
                if !covered {
                    reported.push(name.to_string());
                    out.push(Finding {
                        rule: self.id(),
                        path: file.path.clone(),
                        line: head.line,
                        snippet: file.snippet(head.line),
                        message: format!(
                            "public protocol object `{name}` (impl {}) is never \
                             exercised by the checker pipeline: no file under \
                             tests/ names it alongside check_*/RoundOutcomes/\
                             AcOutcome/VacOutcome",
                            head.trait_name
                        ),
                        witness: Vec::new(),
                        suppressed: None,
                    });
                }
            }
        }
        ticks
    }
}

/// Whether a test file references the checker pipeline.
fn speaks_checker(file: &SourceFile) -> bool {
    file.tokens.iter().any(|t| match t.ident() {
        Some(name) => {
            name.starts_with("check_")
                || matches!(
                    name,
                    "RoundOutcomes"
                        | "AcOutcome"
                        | "VacOutcome"
                        | "Violation"
                        | "DurabilityChecker"
                )
        }
        None => false,
    })
}
