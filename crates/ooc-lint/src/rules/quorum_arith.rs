//! `protocol/quorum-arithmetic` — threshold expressions must be
//! satisfiable under the module's declared resilience bound.
//!
//! Quorum thresholds (`count >= n - t`, `2 * cnt > n + 2 * t`,
//! `votes * 2 > n`) encode the protocol's liveness argument: with `t`
//! processors silent, the `n - t` that remain must still be able to
//! cross the threshold. An off-by-one here (or a threshold copied from a
//! protocol with a different fault model — Phase-King's `3t < n` vs
//! Raft's minority) type-checks, passes small happy-path tests, and
//! deadlocks only under a full fault budget. This rule re-derives the
//! check mechanically: every file with quorum-shaped comparisons must
//! declare its resilience bound — a constructor `assert!(3 * t < n)` or
//! an `// ooc-lint::resilience(3 * t < n)` comment — and each comparison
//! is evaluated over every admissible `(n, t)` grid point with the live
//! count pinned to `n - t` (integer arithmetic, Rust division
//! semantics). A threshold the survivors cannot reach at some admissible
//! point is a finding, with the counterexample in the message.
//!
//! Comparisons that are not quorum-shaped — index checks like `i < n`,
//! comparisons between two opaque locals, anything mentioning a variable
//! the evaluator cannot bind — are skipped, not guessed at.

use crate::lexer::{lex, Tok, Token};
use crate::report::Finding;
use crate::rules::{LintContext, Rule};
use crate::source::SourceFile;

/// Crates whose comparisons are checked: the protocol implementations.
const ALGORITHM_CRATES: &[&str] = &["ooc-ben-or", "ooc-phase-king", "ooc-raft", "ooc-sharedmem"];

/// Comment marker declaring a file's resilience bound, e.g.
/// `// ooc-lint::resilience(3 * t < n)`.
pub const RESILIENCE_PREFIX: &str = "ooc-lint::resilience";

/// Grid bounds: all `(n, t)` with `2 <= n <= MAX_N`, `0 <= t <= n`
/// admitted by the declared bound are checked.
const MAX_N: i64 = 33;

/// See module docs.
pub struct QuorumArith;

impl Rule for QuorumArith {
    fn id(&self) -> &'static str {
        "protocol/quorum-arithmetic"
    }

    fn describe(&self) -> &'static str {
        "quorum thresholds in algorithm crates must be reachable by the \
         n - t live processors at every (n, t) admitted by the file's \
         declared resilience bound (assert! or ooc-lint::resilience)"
    }

    fn scope(&self) -> &'static str {
        "comparisons in algorithm crates"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let ws = ctx.ws;
        let mut ticks = 0u64;

        // Per-file declared bounds, and per-crate unions for files
        // without their own declaration.
        let mut file_bounds: Vec<Vec<Expr>> = Vec::new();
        for file in &ws.files {
            if ALGORITHM_CRATES.contains(&file.crate_name.as_str()) && !file.is_test_file {
                file_bounds.push(declared_bounds(file));
            } else {
                file_bounds.push(Vec::new());
            }
        }

        for (fi, file) in ws.files.iter().enumerate() {
            if !ALGORITHM_CRATES.contains(&file.crate_name.as_str()) || file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            let comparisons = quorum_comparisons(file);
            if comparisons.is_empty() {
                continue;
            }
            // Bounds in scope: the file's own, else every declaration in
            // the crate (the comparison must hold under each — a file
            // that needs a stricter regime than a sibling declares its
            // own).
            let own = &file_bounds[fi];
            let scope_bounds: Vec<&Vec<Expr>> = if !own.is_empty() {
                vec![own]
            } else {
                ws.files
                    .iter()
                    .enumerate()
                    .filter(|(fj, f)| f.crate_name == file.crate_name && !file_bounds[*fj].is_empty())
                    .map(|(fj, _)| &file_bounds[fj])
                    .collect()
            };
            if scope_bounds.is_empty() {
                for cmp in &comparisons {
                    out.push(finding(
                        self.id(),
                        file,
                        cmp.line,
                        format!(
                            "quorum-shaped comparison but no resilience bound \
                             declared in `{}` (or its crate): add the \
                             constructor assert!, or declare \
                             `// {}(<bound>)`, so the threshold can be \
                             checked against it",
                            file.path, RESILIENCE_PREFIX
                        ),
                    ));
                }
                continue;
            }
            for cmp in &comparisons {
                for bounds in &scope_bounds {
                    let mut checked = 0u64;
                    if let Some((n, t)) = counterexample(cmp, bounds, &mut checked) {
                        out.push(finding(
                            self.id(),
                            file,
                            cmp.line,
                            format!(
                                "quorum threshold unreachable by the n - t \
                                 live processors: at n={n}, t={t} (admitted \
                                 by the declared bound) a count of {} cannot \
                                 satisfy the comparison; the threshold and \
                                 the resilience bound disagree",
                                n - t
                            ),
                        ));
                        ticks += checked;
                        break;
                    }
                    ticks += checked;
                }
            }
        }
        ticks
    }
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        snippet: file.snippet(line),
        message,
        witness: Vec::new(),
        suppressed: None,
    }
}

// ---------------------------------------------------------------------------
// Expressions over (n, t, count).
// ---------------------------------------------------------------------------

/// Variables an expression atom can bind to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Var {
    /// Ring size: atoms whose significant ident is `n`.
    N,
    /// Fault budget: atoms whose significant ident is `t`.
    T,
    /// The one unknown atom of a comparison — the live count.
    Count,
}

/// A tiny arithmetic AST.
#[derive(Debug, Clone)]
enum Expr {
    Int(i64),
    Var(Var),
    Bin(char, Box<Expr>, Box<Expr>),
    /// Comparison node (only at the root of bounds/checks).
    Cmp(&'static str, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, n: i64, t: i64, count: i64) -> Option<i64> {
        match self {
            Expr::Int(v) => Some(*v),
            Expr::Var(Var::N) => Some(n),
            Expr::Var(Var::T) => Some(t),
            Expr::Var(Var::Count) => Some(count),
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(n, t, count)?, b.eval(n, t, count)?);
                match op {
                    '+' => a.checked_add(b),
                    '-' => a.checked_sub(b),
                    '*' => a.checked_mul(b),
                    '/' => {
                        if b == 0 {
                            None
                        } else {
                            Some(a / b)
                        }
                    }
                    '%' => {
                        if b == 0 {
                            None
                        } else {
                            Some(a % b)
                        }
                    }
                    _ => None,
                }
            }
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval(n, t, count)?, b.eval(n, t, count)?);
                let v = match *op {
                    "<" => a < b,
                    "<=" => a <= b,
                    ">" => a > b,
                    ">=" => a >= b,
                    _ => return None,
                };
                Some(v as i64)
            }
        }
    }

    fn mentions(&self, var: Var) -> bool {
        match self {
            Expr::Int(_) => false,
            Expr::Var(v) => *v == var,
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => a.mentions(var) || b.mentions(var),
        }
    }

    fn has_op(&self, wanted: char) -> bool {
        match self {
            Expr::Int(_) | Expr::Var(_) => false,
            Expr::Bin(op, a, b) => *op == wanted || a.has_op(wanted) || b.has_op(wanted),
            Expr::Cmp(_, a, b) => a.has_op(wanted) || b.has_op(wanted),
        }
    }
}

/// One quorum-shaped comparison found in a file, normalized so the
/// requirement is `count OP threshold` with `OP ∈ {>=, >}`.
struct QuorumCheck {
    line: u32,
    /// `true` → `count >= threshold`, else `count > threshold`.
    at_least: bool,
    /// Count-side expression (contains the `Count` var).
    count: Expr,
    /// Threshold-side expression (pure in n, t, constants).
    threshold: Expr,
}

/// The first admissible `(n, t)` where the survivors' count `n - t`
/// cannot satisfy the comparison, if any.
fn counterexample(cmp: &QuorumCheck, bounds: &[Expr], checked: &mut u64) -> Option<(i64, i64)> {
    for n in 2..=MAX_N {
        for t in 0..=n {
            let admitted = bounds
                .iter()
                .all(|b| b.eval(n, t, 0).map(|v| v != 0).unwrap_or(false));
            if !admitted {
                continue;
            }
            *checked += 1;
            let live = n - t;
            let (Some(c), Some(thr)) = (
                cmp.count.eval(n, t, live),
                cmp.threshold.eval(n, t, live),
            ) else {
                continue;
            };
            let ok = if cmp.at_least { c >= thr } else { c > thr };
            if !ok {
                return Some((n, t));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Harvesting declared bounds.
// ---------------------------------------------------------------------------

/// The file's declared resilience bounds: constructor
/// `assert!(3 * t < n)`-style comparisons pure in (n, t), plus
/// `// ooc-lint::resilience(...)` comments.
fn declared_bounds(file: &SourceFile) -> Vec<Expr> {
    let mut bounds = Vec::new();
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !file.non_test[i] {
            continue;
        }
        let is_assert = toks[i]
            .ident()
            .map(|n| n == "assert" || n == "debug_assert")
            .unwrap_or(false)
            && toks.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false);
        if !is_assert {
            continue;
        }
        // First argument: to the matching `)` or a depth-1 `,`.
        let mut depth = 0i32;
        let mut j = i + 2;
        let start = i + 3;
        let mut end = start;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        end = j;
                        break;
                    }
                }
                Tok::Punct(',') if depth == 1 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(b) = parse_pure_comparison(&toks[start..end]) {
            bounds.push(b);
        }
    }
    for comment in &file.comments {
        let text = comment.text.trim_start_matches('/').trim();
        if let Some(rest) = text.strip_prefix(RESILIENCE_PREFIX) {
            let inner = rest.trim().trim_start_matches('(').trim_end_matches(')');
            let lexed = lex(inner);
            if let Some(b) = parse_pure_comparison(&lexed.tokens) {
                bounds.push(b);
            }
        }
    }
    bounds
}

/// Parses `lhs OP rhs` where both sides are pure in (n, t, constants);
/// used for resilience bounds.
fn parse_pure_comparison(toks: &[Token]) -> Option<Expr> {
    let (op_at, op) = find_comparison(toks, 0, toks.len())?;
    let (op_len, _) = op_span(op);
    let lhs = parse_expr_slice(toks, 0, op_at)?;
    let rhs = parse_expr_slice(toks, op_at + op_len, toks.len())?;
    if lhs.mentions(Var::Count) || rhs.mentions(Var::Count) {
        return None;
    }
    // A bound must actually relate t to n (or at least mention t).
    if !(lhs.mentions(Var::T) || rhs.mentions(Var::T)) {
        return None;
    }
    Some(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
}

// ---------------------------------------------------------------------------
// Harvesting comparisons.
// ---------------------------------------------------------------------------

/// Every quorum-shaped comparison in the file's non-test code.
fn quorum_comparisons(file: &SourceFile) -> Vec<QuorumCheck> {
    let toks = &file.tokens;
    let assert_ranges = assert_spans(toks);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !file.non_test[i] {
            i += 1;
            continue;
        }
        let Some((op_at, op)) = find_comparison(toks, i, toks.len()) else {
            break;
        };
        let (op_len, _) = op_span(op);
        i = op_at + op_len;
        if !file.non_test[op_at] {
            continue;
        }
        // Declaration asserts are bounds, not quorum checks.
        if assert_ranges.iter().any(|&(s, e)| s <= op_at && op_at < e) {
            continue;
        }
        let lhs_start = side_start(toks, op_at);
        let rhs_end = side_end(toks, op_at + op_len);
        let (Some(lhs), Some(rhs)) = (
            parse_expr_slice(toks, lhs_start, op_at),
            parse_expr_slice(toks, op_at + op_len, rhs_end),
        ) else {
            continue;
        };
        // Exactly one side may hold the count.
        let (count, threshold, count_on_left) =
            match (lhs.mentions(Var::Count), rhs.mentions(Var::Count)) {
                (true, false) => (lhs, rhs, true),
                (false, true) => (rhs, lhs, false),
                _ => continue,
            };
        if threshold.mentions(Var::Count) {
            continue;
        }
        // Quorum shape: the threshold speaks the fault model — it uses t,
        // or it uses n non-trivially (division, or a scaled count side).
        let shaped = threshold.mentions(Var::T)
            || (threshold.mentions(Var::N) && (threshold.has_op('/') || count.has_op('*')));
        if !shaped {
            continue;
        }
        // Normalize to "count must reach threshold": a negative-polarity
        // test (`count < thr` = not-yet-quorate) implies the same
        // requirement with the complementary operator.
        let op_towards_count = if count_on_left { op } else { mirror(op) };
        let at_least = match op_towards_count {
            ">=" | "<" => true,
            ">" | "<=" => false,
            _ => continue,
        };
        out.push(QuorumCheck {
            line: toks[op_at].line,
            at_least,
            count,
            threshold,
        });
    }
    out
}

/// Token spans (start, end) of `assert!(...)` / `debug_assert!(...)`
/// argument lists.
fn assert_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..toks.len() {
        let is_assert = toks[i]
            .ident()
            .map(|n| n == "assert" || n == "debug_assert" || n == "assert_eq" || n == "assert_ne")
            .unwrap_or(false)
            && toks.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            && toks.get(i + 2).map(|t| t.is_punct('(')).unwrap_or(false);
        if !is_assert {
            continue;
        }
        let mut depth = 0i32;
        let mut j = i + 2;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Punct('(') => depth += 1,
                Tok::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((i + 2, j));
    }
    spans
}

/// The next comparison operator at or after `from`: `(index, op)`.
/// Excludes arrows (`->`, `=>`), shifts, turbofish, and generic-looking
/// positions the expression parser would reject anyway.
fn find_comparison(toks: &[Token], from: usize, to: usize) -> Option<(usize, &'static str)> {
    let mut i = from;
    while i < to {
        let c = match &toks[i].tok {
            Tok::Punct(c @ ('<' | '>')) => *c,
            _ => {
                i += 1;
                continue;
            }
        };
        let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok);
        let next = toks.get(i + 1).map(|t| &t.tok);
        let prev_punct = match prev {
            Some(Tok::Punct(p)) => Some(*p),
            _ => None,
        };
        // `->`, `=>`, `::<`, `<<`, `>>`.
        if matches!(prev_punct, Some('-' | '=' | ':' | '<' | '>')) {
            i += 1;
            continue;
        }
        if matches!(next, Some(Tok::Punct(n)) if *n == c) {
            i += 2;
            continue;
        }
        let op: &'static str = match (c, next) {
            ('<', Some(Tok::Punct('='))) => "<=",
            ('>', Some(Tok::Punct('='))) => ">=",
            ('<', _) => "<",
            ('>', _) => ">",
            _ => unreachable!(),
        };
        return Some((i, op));
    }
    None
}

/// `(token length, str)` of a comparison operator.
fn op_span(op: &str) -> (usize, &str) {
    (op.len(), op)
}

/// Mirrors a comparison operator across its operands.
fn mirror(op: &'static str) -> &'static str {
    match op {
        "<" => ">",
        ">" => "<",
        "<=" => ">=",
        ">=" => "<=",
        _ => op,
    }
}

/// Walks back from the operator to the start of its left operand:
/// stops at statement/expression boundaries at bracket depth 0.
fn side_start(toks: &[Token], op_at: usize) -> usize {
    let mut depth = 0i32;
    let mut i = op_at;
    while i > 0 {
        let t = &toks[i - 1];
        match &t.tok {
            Tok::Punct(')') | Tok::Punct(']') => depth += 1,
            Tok::Punct('(') | Tok::Punct('[') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            Tok::Punct(c) if depth == 0 => {
                if matches!(c, '{' | '}' | ';' | ',' | '=' | '&' | '|' | '<' | '>' | '!' | '?') {
                    return i;
                }
            }
            Tok::Ident(name) if depth == 0 => {
                if matches!(
                    name.as_str(),
                    "if" | "while" | "return" | "match" | "let" | "in" | "else"
                ) {
                    return i;
                }
            }
            _ => {}
        }
        i -= 1;
    }
    i
}

/// Walks forward from just past the operator to the end of its right
/// operand (exclusive), symmetric to [`side_start`].
fn side_end(toks: &[Token], mut i: usize) -> usize {
    let start = i;
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            Tok::Punct(c) if depth == 0 => {
                if matches!(c, '{' | '}' | ';' | ',' | '=' | '&' | '|' | '<' | '>' | '?') {
                    return i;
                }
            }
            Tok::Ident(name) if depth == 0 && i > start => {
                if matches!(name.as_str(), "if" | "while" | "return" | "match" | "else") {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------------
// Expression parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    end: usize,
    /// The single unknown atom name bound to `Count` (a second distinct
    /// unknown makes the expression opaque).
    unknown: Option<String>,
}

/// Parses the token slice `[start, end)` as an arithmetic expression over
/// n / t / one unknown count atom. `None` when opaque (two distinct
/// unknowns, unsupported syntax, empty).
fn parse_expr_slice(toks: &[Token], start: usize, end: usize) -> Option<Expr> {
    if start >= end {
        return None;
    }
    let mut p = Parser {
        toks,
        pos: start,
        end,
        unknown: None,
    };
    let e = p.expr()?;
    if p.pos != p.end {
        return None;
    }
    Some(e)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        if self.pos < self.end {
            Some(&self.toks[self.pos].tok)
        } else {
            None
        }
    }

    fn expr(&mut self) -> Option<Expr> {
        let mut lhs = self.term()?;
        while let Some(Tok::Punct(op @ ('+' | '-'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn term(&mut self) -> Option<Expr> {
        let mut lhs = self.factor()?;
        while let Some(Tok::Punct(op @ ('*' | '/' | '%'))) = self.peek() {
            let op = *op;
            self.pos += 1;
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Some(lhs)
    }

    fn factor(&mut self) -> Option<Expr> {
        match self.peek()? {
            Tok::Literal(_) => {
                let v = self.toks[self.pos].int_value()?;
                self.pos += 1;
                // Numeric casts (`as u64`) are transparent.
                self.skip_cast();
                Some(Expr::Int(v))
            }
            Tok::Punct('(') => {
                self.pos += 1;
                let e = self.expr()?;
                if !matches!(self.peek(), Some(Tok::Punct(')'))) {
                    return None;
                }
                self.pos += 1;
                self.skip_cast();
                Some(e)
            }
            Tok::Ident(_) => self.atom(),
            _ => None,
        }
    }

    /// One path/field/call atom: `self.votes.len()`, `ctx.n()`, `d[k]`,
    /// `n`. Classified by its significant ident: `n` → N, `t` → T,
    /// anything else → the single Count unknown.
    fn atom(&mut self) -> Option<Expr> {
        let mut name_parts: Vec<String> = Vec::new();
        let mut significant = String::new();
        while let Some(Tok::Ident(s)) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            // An empty call `()` marks the previous ident as a getter;
            // `n()`/`t()` still mean n/t, `.len()` is opaque.
            if s != "self" {
                significant = s.clone();
            }
            name_parts.push(s);
            match self.peek() {
                Some(Tok::Punct('.')) => self.pos += 1,
                Some(Tok::Punct(':'))
                    if matches!(
                        self.toks.get(self.pos + 1).map(|t| &t.tok),
                        Some(Tok::Punct(':'))
                    ) =>
                {
                    self.pos += 2;
                }
                _ => break,
            }
        }
        if name_parts.is_empty() {
            return None;
        }
        // Optional call arguments and/or subscript: fold into the atom.
        loop {
            match self.peek() {
                Some(Tok::Punct('(')) => {
                    self.skip_bracketed('(', ')')?;
                    // A call makes the ident a getter; keep `significant`.
                    if let Some(Tok::Punct('.')) = self.peek() {
                        // Chained `.a().b()`: the last segment wins.
                        self.pos += 1;
                        if let Some(Tok::Ident(s)) = self.peek() {
                            significant = s.clone();
                            name_parts.push(s.clone());
                            self.pos += 1;
                            continue;
                        }
                        return None;
                    }
                }
                Some(Tok::Punct('[')) => {
                    self.skip_bracketed('[', ']')?;
                }
                _ => break,
            }
        }
        self.skip_cast();
        let var = match significant.as_str() {
            "n" => Var::N,
            "t" => Var::T,
            _ => {
                let full = name_parts.join(".");
                match &self.unknown {
                    Some(u) if *u == full => Var::Count,
                    Some(_) => return None, // second distinct unknown
                    None => {
                        self.unknown = Some(full);
                        Var::Count
                    }
                }
            }
        };
        Some(Expr::Var(var))
    }

    fn skip_bracketed(&mut self, open: char, close: char) -> Option<()> {
        let mut depth = 0i32;
        while self.pos < self.end {
            match &self.toks[self.pos].tok {
                Tok::Punct(c) if *c == open => depth += 1,
                Tok::Punct(c) if *c == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return Some(());
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        None
    }

    /// Skips `as <type>` casts (the grid works in mathematical integers).
    fn skip_cast(&mut self) {
        while matches!(self.peek(), Some(Tok::Ident(s)) if s == "as") {
            self.pos += 1;
            if matches!(self.peek(), Some(Tok::Ident(_))) {
                self.pos += 1;
            }
        }
    }
}
