//! `protocol/effect-exhaustiveness` — every effect a handler can emit is
//! applied by the engine.
//!
//! Handlers communicate with the simulator exclusively through the
//! `Effects` accumulator; `apply_effects` drains it. The pairing is
//! structural, not type-checked: adding a field to `Effects` (or a
//! variant to an effect enum like `StorageOp`) compiles cleanly even if
//! `apply_effects` never looks at it — the new effect silently no-ops
//! and every protocol built on it is subtly broken. This rule closes the
//! loop: for every struct named `Effects` in a deterministic crate, each
//! field must be read by an `apply_effects` fn in the same crate, and
//! every constructed variant of each same-crate enum appearing in a
//! field's type must have a handling arm there too.

use crate::report::Finding;
use crate::rules::{LintContext, Rule};
use crate::source::SourceFile;

/// Name of the effect-accumulator struct the engine drains.
const EFFECTS_STRUCT: &str = "Effects";

/// Name of the engine fn that must handle every effect.
const APPLY_FN: &str = "apply_effects";

/// See module docs.
pub struct EffectExhaustiveness;

impl Rule for EffectExhaustiveness {
    fn id(&self) -> &'static str {
        "protocol/effect-exhaustiveness"
    }

    fn describe(&self) -> &'static str {
        "every Effects field and every constructed variant of its effect \
         enums must be handled by apply_effects in the same crate"
    }

    fn scope(&self) -> &'static str {
        "Effects structs in deterministic crates"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let ws = ctx.ws;
        let mut ticks = 0u64;
        for file in &ws.files {
            if !file.deterministic() || file.is_test_file {
                continue;
            }
            for s in &file.items.structs {
                if s.name != EFFECTS_STRUCT || s.is_test {
                    continue;
                }
                // Every apply_effects body in the same crate, as token
                // ident sets.
                let appliers = applier_idents(ws, &file.crate_name);
                ticks += appliers.len() as u64;
                if appliers.is_empty() {
                    out.push(finding(
                        self.id(),
                        file,
                        s.line,
                        format!(
                            "struct `{}` has no `{}` handler anywhere in crate \
                             `{}`: every effect it accumulates silently no-ops",
                            EFFECTS_STRUCT, APPLY_FN, file.crate_name
                        ),
                    ));
                    continue;
                }
                for field in &s.fields {
                    ticks += 1;
                    if !appliers.iter().any(|a| a.contains(&field.name)) {
                        out.push(finding(
                            self.id(),
                            file,
                            field.line,
                            format!(
                                "`{}` field `{}` is never touched by `{}`: \
                                 effects accumulated there are dropped on \
                                 the floor; drain it in the engine or remove \
                                 the field",
                                EFFECTS_STRUCT, field.name, APPLY_FN
                            ),
                        ));
                    }
                    // Effect enums named in the field's type: every
                    // constructed variant needs a handling arm.
                    for ty in &field.type_idents {
                        let Some((ef_file, variants, line)) =
                            find_enum(ws, &file.crate_name, ty)
                        else {
                            continue;
                        };
                        for variant in &variants {
                            ticks += 1;
                            if !constructed(ws, ty, variant) {
                                continue;
                            }
                            if !appliers.iter().any(|a| a.contains(variant)) {
                                out.push(finding(
                                    self.id(),
                                    &ws.files[ef_file],
                                    line,
                                    format!(
                                        "effect variant `{ty}::{variant}` is \
                                         constructed but `{APPLY_FN}` has no \
                                         arm for it: the effect silently \
                                         no-ops at the engine"
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        ticks
    }
}

fn finding(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line,
        snippet: file.snippet(line),
        message,
        witness: Vec::new(),
        suppressed: None,
    }
}

/// The ident sets of every `apply_effects` body in `crate_name`.
fn applier_idents(ws: &crate::source::Workspace, crate_name: &str) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name != crate_name || file.is_test_file {
            continue;
        }
        for f in &file.items.fns {
            if f.name != APPLY_FN || f.is_test {
                continue;
            }
            let Some((open, close)) = f.body else { continue };
            out.push(
                file.tokens[open..=close]
                    .iter()
                    .filter_map(|t| t.ident().map(String::from))
                    .collect(),
            );
        }
    }
    out
}

/// Finds a non-test enum named `name` in `crate_name`:
/// `(file index, variants, decl line)`.
fn find_enum(
    ws: &crate::source::Workspace,
    crate_name: &str,
    name: &str,
) -> Option<(usize, Vec<String>, u32)> {
    for (fi, file) in ws.files.iter().enumerate() {
        if file.crate_name != crate_name || file.is_test_file {
            continue;
        }
        for e in &file.items.enums {
            if e.name == name && !e.is_test {
                return Some((fi, e.variants.clone(), e.line));
            }
        }
    }
    None
}

/// Whether `Enum::Variant` is constructed (path-referenced) anywhere in
/// non-test workspace code outside an `apply_effects` body.
fn constructed(ws: &crate::source::Workspace, ty: &str, variant: &str) -> bool {
    for file in &ws.files {
        if file.is_test_file {
            continue;
        }
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !file.non_test[i]
                || !toks[i].is_ident(ty)
                || !toks.get(i + 1).map(|t| t.is_punct(':')).unwrap_or(false)
                || !toks.get(i + 2).map(|t| t.is_punct(':')).unwrap_or(false)
                || !toks.get(i + 3).map(|t| t.is_ident(variant)).unwrap_or(false)
            {
                continue;
            }
            // A mention inside an apply_effects body is a handling arm,
            // not a construction.
            let in_applier = file
                .items
                .enclosing_fn(i)
                .map(|fid| file.items.fns[fid].name == APPLY_FN)
                .unwrap_or(false);
            if !in_applier {
                return true;
            }
        }
    }
    false
}
