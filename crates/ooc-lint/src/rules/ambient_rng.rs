//! `determinism/ambient-rng` — all randomness must flow from the seed.
//!
//! `thread_rng`, `from_entropy`, `OsRng` and friends pull entropy from the
//! OS, which makes a failing schedule unreproducible: the campaign
//! engine's "re-run the failing seed" workflow silently stops working.
//! Every RNG in the workspace must derive from the master `SplitMix64`
//! seed. The rule applies everywhere, including tests — a test that rolls
//! ambient dice is a test that cannot be rerun.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, LintContext, Rule};

/// The ambient-entropy banned-API set (also consumed by
/// `determinism/transitive-reach` as a sink set).
pub const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "thread_rng",
        paths: &["rand::thread_rng"],
    },
    // Constructor methods carry no path; flagged by name.
    ForbiddenItem {
        base: "from_entropy",
        paths: &[],
    },
    ForbiddenItem {
        base: "from_os_rng",
        paths: &[],
    },
    ForbiddenItem {
        base: "OsRng",
        paths: &["rand::rngs::OsRng", "rand_core::OsRng"],
    },
    ForbiddenItem {
        base: "getrandom",
        paths: &[],
    },
];

/// See module docs.
pub struct AmbientRng;

impl Rule for AmbientRng {
    fn id(&self) -> &'static str {
        "determinism/ambient-rng"
    }

    fn describe(&self) -> &'static str {
        "forbids thread_rng / from_entropy / OsRng / getrandom anywhere; \
         every RNG must derive from the run's seed"
    }

    fn scope(&self) -> &'static str {
        "every file, tests included"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            ticks += file.tokens.len() as u64;
            for hit in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: hit.line,
                    snippet: file.snippet(hit.line),
                    message: format!(
                        "ambient entropy source `{}` ({}) makes runs unreplayable; \
                         derive a SplitMix64 from the run seed instead",
                        hit.item.base, hit.path
                    ),
                    witness: Vec::new(),
                    suppressed: None,
                });
            }
        }
        ticks
    }
}
