//! `determinism/ambient-rng` — all randomness must flow from the seed.
//!
//! `thread_rng`, `from_entropy`, `OsRng` and friends pull entropy from the
//! OS, which makes a failing schedule unreproducible: the campaign
//! engine's "re-run the failing seed" workflow silently stops working.
//! Every RNG in the workspace must derive from the master `SplitMix64`
//! seed. The rule applies everywhere, including tests — a test that rolls
//! ambient dice is a test that cannot be rerun.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, Rule};
use crate::source::Workspace;

const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "thread_rng",
        paths: &["rand::thread_rng"],
    },
    // Constructor methods carry no path; flagged by name.
    ForbiddenItem {
        base: "from_entropy",
        paths: &[],
    },
    ForbiddenItem {
        base: "from_os_rng",
        paths: &[],
    },
    ForbiddenItem {
        base: "OsRng",
        paths: &["rand::rngs::OsRng", "rand_core::OsRng"],
    },
    ForbiddenItem {
        base: "getrandom",
        paths: &[],
    },
];

/// See module docs.
pub struct AmbientRng;

impl Rule for AmbientRng {
    fn id(&self) -> &'static str {
        "determinism/ambient-rng"
    }

    fn describe(&self) -> &'static str {
        "forbids thread_rng / from_entropy / OsRng / getrandom anywhere; \
         every RNG must derive from the run's seed"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            for (line, path, item) in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line,
                    snippet: file.snippet(line),
                    message: format!(
                        "ambient entropy source `{}` ({}) makes runs unreplayable; \
                         derive a SplitMix64 from the run seed instead",
                        item.base, path
                    ),
                    suppressed: None,
                });
            }
        }
    }
}
