//! `determinism/transitive-reach` — banned APIs must not be reachable
//! from deterministic code, even through other crates.
//!
//! The per-file rules (`determinism/wall-clock`, `determinism/ambient-rng`,
//! `determinism/host-env`) stop a deterministic file from *containing* a
//! banned call; this rule stops it from *reaching* one: a helper in a
//! measurement crate that calls `Instant::now` and is then invoked from
//! `Sim::run`, a `Template` handler, or the campaign sweep path would
//! otherwise sail straight through. Every non-test function in a
//! deterministic file is an entry point; every function in a
//! non-deterministic file that directly touches a banned API is a sink
//! (even when the touch itself carries a local allow — justifying a
//! measurement inside `ooc-campaign` does not justify calling it from
//! deterministic code). A finding is reported at the *boundary* call site
//! — the first edge of the chain that leaves the determinism contract —
//! so one allow at the boundary covers every sink behind it, and the
//! minimal witness call chain is printed and serialized in `--json`.

use crate::report::{Finding, WitnessStep};
use crate::rules::{ambient_rng, host_env, scan_forbidden, wall_clock, LintContext, Rule};

/// See module docs.
pub struct TransitiveReach;

impl Rule for TransitiveReach {
    fn id(&self) -> &'static str {
        "determinism/transitive-reach"
    }

    fn describe(&self) -> &'static str {
        "no wall-clock / ambient-RNG / host-env API may be transitively \
         reachable from deterministic code through the call graph; findings \
         carry the minimal witness call chain"
    }

    fn scope(&self) -> &'static str {
        "call graph from deterministic entry points"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let ws = ctx.ws;
        let g = &ctx.graph;
        let mut ticks = 0u64;

        // Sinks: fns in non-deterministic, non-test files that directly
        // touch a banned API. (Direct touches in deterministic files are
        // already findings of the per-file rules.)
        let banned: Vec<&crate::rules::ForbiddenItem> = wall_clock::ITEMS
            .iter()
            .chain(ambient_rng::ITEMS.iter())
            .chain(host_env::ITEMS.iter())
            .collect();
        let mut sink_hits: Vec<Option<(String, u32)>> = vec![None; g.nodes.len()];
        for (fi, file) in ws.files.iter().enumerate() {
            if file.deterministic() || file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            for item in &banned {
                for hit in scan_forbidden(file, std::slice::from_ref(*item)) {
                    let Some(fn_item) = file.items.enclosing_fn(hit.idx) else {
                        continue;
                    };
                    let Some(node) = g.node_id(fi, fn_item) else {
                        continue;
                    };
                    if sink_hits[node].is_none() {
                        sink_hits[node] = Some((hit.path.clone(), hit.line));
                    }
                }
            }
        }

        // Entries: every non-test fn defined in a deterministic file.
        let mut entries = Vec::new();
        for (id, node) in g.nodes.iter().enumerate() {
            let file = &ws.files[node.file];
            if file.deterministic() && !file.is_test_file && !file.items.fns[node.item].is_test {
                entries.push(id);
            }
        }

        let reach = g.reach(&entries);
        ticks += g.nodes.len() as u64;
        ticks += g.calls.iter().map(|c| c.len() as u64).sum::<u64>();

        for (sink, hit) in sink_hits.iter().enumerate() {
            let Some((banned_path, hit_line)) = hit else {
                continue;
            };
            if reach.dist[sink].is_none() {
                continue;
            }
            let chain = g.chain_to(&reach, sink);
            // The boundary: the first chain step whose file leaves the
            // determinism contract. The finding lands on the call site in
            // the last deterministic file, where the justification (or
            // fix) belongs.
            let Some(boundary) = chain
                .iter()
                .position(|&(n, _)| !ws.files[g.nodes[n].file].deterministic())
            else {
                continue;
            };
            if boundary == 0 {
                // Cannot happen (entries are deterministic files), but
                // never index below the chain start.
                continue;
            }
            let caller = chain[boundary - 1].0;
            let caller_file = &ws.files[g.nodes[caller].file];
            let call_line = chain[boundary].1.unwrap_or(0);
            let witness: Vec<WitnessStep> = chain
                .iter()
                .map(|&(n, line)| {
                    let node = g.nodes[n];
                    let f = &ws.files[node.file].items.fns[node.item];
                    WitnessStep {
                        func: f.display_name(),
                        file: ws.files[node.file].path.clone(),
                        line: line.unwrap_or(f.line),
                    }
                })
                .collect();
            let sink_file = &ws.files[g.nodes[sink].file];
            out.push(Finding {
                rule: self.id(),
                path: caller_file.path.clone(),
                line: call_line,
                snippet: caller_file.snippet(call_line),
                message: format!(
                    "deterministic code reaches banned API `{}`: `{}` \
                     ({}:{}) is {} call(s) away via `{}`; route the value \
                     through the seed/simulated clock, or allow at this \
                     boundary with the reason the host reading never \
                     influences a deterministic output",
                    banned_path,
                    g.display(ws, sink),
                    sink_file.path,
                    hit_line,
                    chain.len() - 1,
                    g.display(ws, chain[boundary].0),
                ),
                witness,
                suppressed: None,
            });
        }
        ticks
    }
}
