//! `determinism/unordered-iter` — no randomized-order containers in
//! deterministic crates.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`, so any
//! iteration over them inside the simulator or a protocol crate is a
//! latent nondeterminism bug waiting for a refactor to expose it. The
//! rule flags every `HashMap`/`HashSet` *mention* in deterministic crates
//! rather than trying to prove an iteration reaches it: the safe steady
//! state is `BTreeMap`/`BTreeSet` (ordered, and `Ord` keys are cheap
//! here), and a genuinely membership-only use can carry an allow stating
//! exactly that.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, Rule};
use crate::source::Workspace;

const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "HashMap",
        paths: &["std::collections::HashMap", "hashbrown::HashMap"],
    },
    ForbiddenItem {
        base: "HashSet",
        paths: &["std::collections::HashSet", "hashbrown::HashSet"],
    },
];

/// See module docs.
pub struct UnorderedIter;

impl Rule for UnorderedIter {
    fn id(&self) -> &'static str {
        "determinism/unordered-iter"
    }

    fn describe(&self) -> &'static str {
        "flags HashMap/HashSet in deterministic crates; use BTreeMap/BTreeSet \
         so iteration order is a function of the data, not of RandomState"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if !file.deterministic() || file.is_test_file {
                continue;
            }
            for (line, path, item) in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line,
                    snippet: file.snippet(line),
                    message: format!(
                        "`{}` ({}) has seed-independent iteration order; use \
                         BTree{} in deterministic crates, or allow with a \
                         reason proving the use is membership-only",
                        item.base,
                        path,
                        &item.base[4..]
                    ),
                    suppressed: None,
                });
            }
        }
    }
}
