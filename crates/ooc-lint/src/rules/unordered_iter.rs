//! `determinism/unordered-iter` — no randomized-order containers in
//! deterministic crates.
//!
//! `HashMap`/`HashSet` iteration order depends on `RandomState`, so any
//! iteration over them inside the simulator or a protocol crate is a
//! latent nondeterminism bug waiting for a refactor to expose it. The
//! rule flags every `HashMap`/`HashSet` *mention* in deterministic crates
//! rather than trying to prove an iteration reaches it: the safe steady
//! state is `BTreeMap`/`BTreeSet` (ordered, and `Ord` keys are cheap
//! here), and a genuinely membership-only use can carry an allow stating
//! exactly that.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, LintContext, Rule};

const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "HashMap",
        paths: &["std::collections::HashMap", "hashbrown::HashMap"],
    },
    ForbiddenItem {
        base: "HashSet",
        paths: &["std::collections::HashSet", "hashbrown::HashSet"],
    },
];

/// See module docs.
pub struct UnorderedIter;

impl Rule for UnorderedIter {
    fn id(&self) -> &'static str {
        "determinism/unordered-iter"
    }

    fn describe(&self) -> &'static str {
        "flags HashMap/HashSet in deterministic crates; use BTreeMap/BTreeSet \
         so iteration order is a function of the data, not of RandomState"
    }

    fn scope(&self) -> &'static str {
        "deterministic crates and listed modules"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            if !file.deterministic() || file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            for hit in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: hit.line,
                    snippet: file.snippet(hit.line),
                    message: format!(
                        "`{}` ({}) has seed-independent iteration order; use \
                         BTree{} in deterministic crates, or allow with a \
                         reason proving the use is membership-only",
                        hit.item.base,
                        hit.path,
                        &hit.item.base[4..]
                    ),
                    witness: Vec::new(),
                    suppressed: None,
                });
            }
        }
        ticks
    }
}
