//! `determinism/host-env` — no host-environment probes in deterministic
//! code.
//!
//! `available_parallelism` / `num_cpus` answer "what machine am I on?",
//! and any value derived from them varies between a laptop and a CI
//! runner. Inside the determinism contract (the simulator, the
//! protocols, and listed modules such as the parallel campaign
//! executor) that is exactly the class of input a replayable run must
//! not read. The one legitimate pattern — choosing a *worker count*
//! whose value provably never reaches an output — carries a reasoned
//! `ooc-lint::allow` stating that proof.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, LintContext, Rule};

/// The host-environment banned-API set (also consumed by
/// `determinism/transitive-reach` as a sink set).
pub const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "available_parallelism",
        paths: &["std::thread::available_parallelism"],
    },
    ForbiddenItem {
        base: "num_cpus",
        paths: &["num_cpus"],
    },
];

/// See module docs.
pub struct HostEnv;

impl Rule for HostEnv {
    fn id(&self) -> &'static str {
        "determinism/host-env"
    }

    fn describe(&self) -> &'static str {
        "forbids available_parallelism / num_cpus in deterministic code; \
         host topology must never influence a run's observable output"
    }

    fn scope(&self) -> &'static str {
        "deterministic crates and listed modules"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            if !file.deterministic() || file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            for hit in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: hit.line,
                    snippet: file.snippet(hit.line),
                    message: format!(
                        "host-environment probe `{}` ({}) varies across machines; \
                         deterministic code must not read host topology, or must \
                         carry an ooc-lint::allow proving the value never reaches \
                         an output",
                        hit.item.base, hit.path
                    ),
                    witness: Vec::new(),
                    suppressed: None,
                });
            }
        }
        ticks
    }
}
