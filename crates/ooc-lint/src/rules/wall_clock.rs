//! `determinism/wall-clock` — no ambient time sources.
//!
//! A replayable run must be a pure function of its seed; `Instant::now`
//! and `SystemTime` smuggle the host's clock into the execution. The rule
//! applies to every crate's shipped code (simulated time comes from
//! `ooc_simnet::SimTime`); measurement code in `ooc-campaign`/`ooc-bench`
//! that reports *real* elapsed wall time carries explicit allows.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, Rule};
use crate::source::Workspace;

const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "Instant",
        paths: &["std::time::Instant"],
    },
    ForbiddenItem {
        base: "SystemTime",
        paths: &["std::time::SystemTime"],
    },
    ForbiddenItem {
        base: "UNIX_EPOCH",
        paths: &["std::time::UNIX_EPOCH", "std::time::SystemTime::UNIX_EPOCH"],
    },
];

/// See module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "determinism/wall-clock"
    }

    fn describe(&self) -> &'static str {
        "forbids std::time::Instant / SystemTime (wall-clock) in shipped code; \
         simulated time must come from ooc_simnet::SimTime"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Finding>) {
        for file in &ws.files {
            if file.is_test_file {
                continue;
            }
            for (line, path, item) in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line,
                    snippet: file.snippet(line),
                    message: format!(
                        "wall-clock time source `{}` ({}) breaks seed-replayability; \
                         use ooc_simnet::SimTime, or justify with an \
                         ooc-lint::allow for measurement-only code",
                        item.base, path
                    ),
                    suppressed: None,
                });
            }
        }
    }
}
