//! `determinism/wall-clock` — no ambient time sources.
//!
//! A replayable run must be a pure function of its seed; `Instant::now`
//! and `SystemTime` smuggle the host's clock into the execution. The rule
//! applies to every crate's shipped code (simulated time comes from
//! `ooc_simnet::SimTime`); measurement code in `ooc-campaign`/`ooc-bench`
//! that reports *real* elapsed wall time carries explicit allows.

use crate::report::Finding;
use crate::rules::{scan_forbidden, ForbiddenItem, LintContext, Rule};

/// The wall-clock banned-API set (also consumed by
/// `determinism/transitive-reach` as a sink set).
pub const ITEMS: &[ForbiddenItem] = &[
    ForbiddenItem {
        base: "Instant",
        paths: &["std::time::Instant"],
    },
    ForbiddenItem {
        base: "SystemTime",
        paths: &["std::time::SystemTime"],
    },
    ForbiddenItem {
        base: "UNIX_EPOCH",
        paths: &["std::time::UNIX_EPOCH", "std::time::SystemTime::UNIX_EPOCH"],
    },
];

/// See module docs.
pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "determinism/wall-clock"
    }

    fn describe(&self) -> &'static str {
        "forbids std::time::Instant / SystemTime (wall-clock) in shipped code; \
         simulated time must come from ooc_simnet::SimTime"
    }

    fn scope(&self) -> &'static str {
        "every non-test file"
    }

    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64 {
        let mut ticks = 0u64;
        for file in &ctx.ws.files {
            if file.is_test_file {
                continue;
            }
            ticks += file.tokens.len() as u64;
            for hit in scan_forbidden(file, ITEMS) {
                out.push(Finding {
                    rule: self.id(),
                    path: file.path.clone(),
                    line: hit.line,
                    snippet: file.snippet(hit.line),
                    message: format!(
                        "wall-clock time source `{}` ({}) breaks seed-replayability; \
                         use ooc_simnet::SimTime, or justify with an \
                         ooc-lint::allow for measurement-only code",
                        hit.item.base, hit.path
                    ),
                    witness: Vec::new(),
                    suppressed: None,
                });
            }
        }
        ticks
    }
}
