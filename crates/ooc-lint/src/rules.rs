//! The pluggable rule engine and shared analysis helpers.

use crate::callgraph::CallGraph;
use crate::report::Finding;
use crate::resolve::canonical_path;
use crate::source::{SourceFile, Workspace};

pub mod ambient_rng;
pub mod checker_coverage;
pub mod effect_exhaustiveness;
pub mod host_env;
pub mod protocol_panic;
pub mod quorum_arith;
pub mod rng_provenance;
pub mod transitive_reach;
pub mod unordered_iter;
pub mod wall_clock;

/// Everything a rule may look at: the workspace model plus the shared
/// cross-crate analyses built once per lint pass.
pub struct LintContext<'a> {
    /// The scanned workspace.
    pub ws: &'a Workspace,
    /// The cross-crate call graph (see [`crate::callgraph`]).
    pub graph: CallGraph,
}

impl<'a> LintContext<'a> {
    /// Builds the shared analyses for a workspace.
    pub fn new(ws: &'a Workspace) -> LintContext<'a> {
        LintContext {
            ws,
            graph: CallGraph::build(ws),
        }
    }
}

/// A lint rule. Rules see the whole workspace (and the call graph) so
/// they can be cross-file and cross-crate as well as token-local.
pub trait Rule {
    /// Stable id used in reports and `ooc-lint::allow(...)`.
    fn id(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn describe(&self) -> &'static str;
    /// What happens to an active finding. Everything registered today is
    /// `deny` (fails the build); the field exists so the catalog is
    /// explicit about it.
    fn severity(&self) -> &'static str {
        "deny"
    }
    /// Which part of the workspace the rule examines.
    fn scope(&self) -> &'static str;
    /// Appends findings for the workspace. Returns the work performed in
    /// deterministic ticks (tokens walked, graph nodes visited, grid
    /// points evaluated — anything monotone in effort), surfaced in the
    /// report's `meta` block so a rule that quietly goes quadratic shows
    /// up in CI before it shows up in wall time.
    fn check(&self, ctx: &LintContext, out: &mut Vec<Finding>) -> u64;
}

/// The registered rule set, in report order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(wall_clock::WallClock),
        Box::new(ambient_rng::AmbientRng),
        Box::new(host_env::HostEnv),
        Box::new(unordered_iter::UnorderedIter),
        Box::new(transitive_reach::TransitiveReach),
        Box::new(rng_provenance::RngProvenance),
        Box::new(protocol_panic::ProtocolPanic),
        Box::new(effect_exhaustiveness::EffectExhaustiveness),
        Box::new(quorum_arith::QuorumArith),
        Box::new(checker_coverage::CheckerCoverage),
    ]
}

/// Rule id of the engine-level suppression-hygiene findings (malformed
/// allow, unknown rule id, unused allow). Not suppressible.
pub const SUPPRESSION_RULE: &str = "hygiene/suppression";

/// Every id an `ooc-lint::allow` may name.
pub fn known_ids() -> Vec<&'static str> {
    all().iter().map(|r| r.id()).collect()
}

/// One catalog row, mirroring the [`Rule`] accessors.
pub struct RuleInfo {
    /// Stable rule id.
    pub id: &'static str,
    /// `deny` (active findings fail the build).
    pub severity: &'static str,
    /// Which part of the workspace the rule examines.
    pub scope: &'static str,
    /// One-line description.
    pub doc: &'static str,
}

/// The machine-readable rule catalog (`ooc-lint rules --json`), including
/// the engine-level suppression-hygiene pseudo-rule.
pub fn catalog() -> Vec<RuleInfo> {
    let mut rows: Vec<RuleInfo> = all()
        .iter()
        .map(|r| RuleInfo {
            id: r.id(),
            severity: r.severity(),
            scope: r.scope(),
            doc: r.describe(),
        })
        .collect();
    rows.push(RuleInfo {
        id: SUPPRESSION_RULE,
        severity: "deny",
        scope: "every ooc-lint::allow annotation",
        doc: "allows must name a known rule, carry a reason, and suppress a \
              real finding; not itself suppressible",
    });
    rows
}

/// Renders [`catalog`] as JSON.
pub fn catalog_json() -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
    for (i, r) in catalog().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"id\": {}, \"severity\": {}, \"scope\": {}, \"doc\": {}}}",
            crate::report::json_str(r.id),
            crate::report::json_str(r.severity),
            crate::report::json_str(r.scope),
            crate::report::json_str(r.doc)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Shared helpers.
// ---------------------------------------------------------------------------

/// A forbidden item a token rule scans for.
pub struct ForbiddenItem {
    /// The identifier the item appears as in source.
    pub base: &'static str,
    /// Canonical path prefixes that confirm the identifier really is this
    /// item (empty = flag on name alone, e.g. method calls, which carry
    /// no path to resolve).
    pub paths: &'static [&'static str],
}

/// One forbidden-item hit: the token index, its line, the resolved path
/// (or bare name), and the matched item.
pub struct ForbiddenHit<'a> {
    /// Index of the offending token in `file.tokens`.
    pub idx: usize,
    /// 1-based source line.
    pub line: u32,
    /// Resolved canonical path, or the bare name when unresolvable.
    pub path: String,
    /// The matched forbidden item.
    pub item: &'a ForbiddenItem,
}

/// Scans a file's non-test tokens for forbidden items, honoring the
/// file's `use` declarations: an identifier that resolves to a different
/// origin than the forbidden paths is *not* flagged, and a rename of a
/// forbidden item *is*.
pub fn scan_forbidden<'a>(file: &SourceFile, items: &'a [ForbiddenItem]) -> Vec<ForbiddenHit<'a>> {
    let mut hits = Vec::new();
    // Renames: `use std::time::Instant as Clock` makes `Clock` a target.
    let aliases: Vec<(String, &ForbiddenItem)> = file
        .uses
        .aliases()
        .filter_map(|(alias, path)| {
            items
                .iter()
                .find(|it| it.paths.iter().any(|p| path.starts_with(p)))
                .map(|it| (alias.to_string(), it))
        })
        .collect();
    for (idx, token) in file.tokens.iter().enumerate() {
        if !file.non_test[idx] {
            continue;
        }
        let Some(name) = token.ident() else { continue };
        let item = items
            .iter()
            .find(|it| it.base == name)
            .or_else(|| aliases.iter().find(|(a, _)| a == name).map(|(_, it)| *it));
        let Some(item) = item else { continue };
        if defines_ident(file, name) {
            continue; // the workspace's own type/fn of the same name
        }
        match canonical_path(&file.tokens, idx, &file.uses) {
            Some(path) => {
                let confirmed = item.paths.is_empty()
                    || item
                        .paths
                        .iter()
                        .any(|p| path.starts_with(p) || p.starts_with(path.as_str()));
                if confirmed {
                    hits.push(ForbiddenHit {
                        idx,
                        line: token.line,
                        path,
                        item,
                    });
                }
            }
            // Unresolvable: a bare method call, a glob import, or prelude
            // leakage. Flag it — the determinism gate errs conservative,
            // and a justified use can carry an allow.
            None => hits.push(ForbiddenHit {
                idx,
                line: token.line,
                path: name.to_string(),
                item,
            }),
        }
    }
    hits
}

/// Whether the file itself defines `name` (struct/enum/trait/type/fn/mod
/// /const/static), which vetoes forbidden-name matching for shadowing
/// local types.
fn defines_ident(file: &SourceFile, name: &str) -> bool {
    file.tokens.windows(2).any(|w| {
        matches!(
            w[0].ident(),
            Some("struct" | "enum" | "trait" | "type" | "fn" | "mod" | "const" | "static")
        ) && w[1].is_ident(name)
    })
}

/// One `impl` block header, trait and self-type resolved to bare names.
#[derive(Debug, Clone, PartialEq)]
pub struct ImplHead {
    /// Last path segment of the trait, empty for inherent impls.
    pub trait_name: String,
    /// Last leading path segment of the implementing type.
    pub type_name: String,
    /// Line of the `impl` keyword.
    pub line: u32,
}

/// Parses every `impl` header in the file's non-test code. Handles
/// generic parameter lists (including `Fn(..) -> T` bounds) and
/// path-qualified traits/types.
pub fn impl_heads(file: &SourceFile) -> Vec<ImplHead> {
    let toks = &file.tokens;
    let mut heads = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !file.non_test[i] || !t.is_ident("impl") {
            continue;
        }
        let mut j = i + 1;
        // Skip the generic parameter list, if any. `>` directly preceded
        // by `-` is an arrow inside an `Fn` bound, not a closer.
        if toks.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>')
                    && !(j > 0 && toks[j - 1].is_punct('-'))
                {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // First path: the trait (if followed by `for`) or the self type.
        let (first_last, k, stopped_at_for) = scan_path(file, j);
        if stopped_at_for {
            let (type_last, _, _) = scan_path(file, k + 1);
            heads.push(ImplHead {
                trait_name: first_last,
                type_name: type_last,
                line: t.line,
            });
        } else {
            heads.push(ImplHead {
                trait_name: String::new(),
                type_name: first_last,
                line: t.line,
            });
        }
    }
    heads
}

/// Scans a trait/type path from `j`; returns (last angle-depth-0 ident,
/// stop index, whether it stopped at the `for` keyword).
fn scan_path(file: &SourceFile, mut j: usize) -> (String, usize, bool) {
    let toks = &file.tokens;
    let mut depth = 0i32;
    let mut last = String::new();
    while j < toks.len() {
        let t = &toks[j];
        if depth == 0 {
            if t.is_ident("for") {
                return (last, j, true);
            }
            if t.is_ident("where") || t.is_punct('{') || t.is_punct(';') {
                return (last, j, false);
            }
            if let Some(name) = t.ident() {
                last = name.to_string();
            }
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(j > 0 && toks[j - 1].is_punct('-')) {
            depth -= 1;
        }
        j += 1;
    }
    (last, j, false)
}

/// Whether a file contains protocol state-machine code: an impl of the
/// simulator's `Process`/`SyncProcess` traits or of any `…Object`
/// protocol-object trait, or a handler-shaped `fn on_*` definition.
pub fn is_state_machine_file(file: &SourceFile) -> bool {
    if impl_heads(file).iter().any(|h| {
        h.trait_name == "Process"
            || h.trait_name == "SyncProcess"
            || h.trait_name.ends_with("Object")
    }) {
        return true;
    }
    file.tokens.windows(2).enumerate().any(|(i, w)| {
        file.non_test[i]
            && w[0].is_ident("fn")
            && matches!(
                w[1].ident(),
                Some("on_start" | "on_message" | "on_timer" | "on_restart")
            )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    #[test]
    fn impl_heads_handle_generics_and_paths() {
        let src = "impl<A: AcObject> VacObject for AcDetector<A> {}\n\
                   impl<V, F: FnMut(u64) -> V> ReconciliatorObject for FnReconciliator<V, F> {}\n\
                   impl ooc_simnet::SyncProcess for QueenNode {}\n\
                   impl Widget {}\n";
        let f = SourceFile::from_source("src/x.rs", "ooc-core", src);
        let heads = impl_heads(&f);
        assert_eq!(heads.len(), 4);
        assert_eq!(heads[0].trait_name, "VacObject");
        assert_eq!(heads[0].type_name, "AcDetector");
        assert_eq!(heads[1].trait_name, "ReconciliatorObject");
        assert_eq!(heads[1].type_name, "FnReconciliator");
        assert_eq!(heads[2].trait_name, "SyncProcess");
        assert_eq!(heads[2].type_name, "QueenNode");
        assert_eq!(heads[3].trait_name, "");
        assert_eq!(heads[3].type_name, "Widget");
    }

    #[test]
    fn state_machine_markers() {
        let on_msg = SourceFile::from_source(
            "src/x.rs",
            "ooc-core",
            "impl Thing { fn on_message(&mut self) {} }",
        );
        assert!(is_state_machine_file(&on_msg));
        let plain = SourceFile::from_source("src/x.rs", "ooc-core", "fn helper() {}");
        assert!(!is_state_machine_file(&plain));
    }
}
