//! Lightweight use-path resolution.
//!
//! Rules want to know what an identifier *refers to*, not what it is
//! called: `use std::time::Instant as Clock; Clock::now()` must trip the
//! wall-clock rule, while `use crate::sim_clock::Instant; Instant::now()`
//! must not. We get there without a full name resolver by recording every
//! `use` declaration in a file (including groups, globs and renames) and
//! expanding an occurrence's leading path segment through that map.

use crate::lexer::{Tok, Token};

/// The `use` declarations of one file, flattened.
#[derive(Debug, Default, Clone)]
pub struct UseMap {
    /// `alias → fully written path` (e.g. `Clock → std::time::Instant`).
    aliases: Vec<(String, String)>,
    /// Prefixes of glob imports (`use std::collections::*` → `std::collections`).
    globs: Vec<String>,
}

impl UseMap {
    /// Scans a token stream for `use` declarations.
    pub fn parse(tokens: &[Token]) -> UseMap {
        let mut map = UseMap::default();
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_ident("use") {
                i = parse_tree(tokens, i + 1, &mut Vec::new(), &mut map);
            } else {
                i += 1;
            }
        }
        map
    }

    /// The full path an identifier was imported as, if any.
    pub fn lookup(&self, ident: &str) -> Option<&str> {
        self.aliases
            .iter()
            .find(|(a, _)| a == ident)
            .map(|(_, p)| p.as_str())
    }

    /// Whether `ident` could come from a glob import under `prefix`
    /// (e.g. `could_glob("HashMap", "std::collections")`).
    pub fn could_glob(&self, prefix: &str) -> bool {
        self.globs.iter().any(|g| g == prefix)
    }

    /// Every `(alias, path)` pair, for rules that scan for renamed
    /// imports of a forbidden item.
    pub fn aliases(&self) -> impl Iterator<Item = (&str, &str)> {
        self.aliases.iter().map(|(a, p)| (a.as_str(), p.as_str()))
    }
}

/// Parses one use-tree starting at `i` with the given path `prefix`;
/// returns the index after the tree (and its terminator, where applicable).
fn parse_tree(tokens: &[Token], mut i: usize, prefix: &mut Vec<String>, map: &mut UseMap) -> usize {
    let depth_at_entry = prefix.len();
    loop {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(seg)) if seg == "as" => {
                // Rename: `path as Alias` — binds only the alias.
                if let Some(Tok::Ident(alias)) = tokens.get(i + 1).map(|t| &t.tok) {
                    map.aliases.push((alias.clone(), prefix.join("::")));
                    i += 2;
                    while !matches!(
                        tokens.get(i).map(|t| &t.tok),
                        None | Some(Tok::Punct(';'))
                    ) {
                        i += 1;
                    }
                    prefix.truncate(depth_at_entry);
                    if tokens.get(i).is_some() {
                        i += 1;
                    }
                    return i;
                }
                i += 1;
            }
            Some(Tok::Ident(seg)) => {
                prefix.push(seg.clone());
                i += 1;
            }
            Some(Tok::Punct(':')) => i += 1,
            Some(Tok::Punct('*')) => {
                map.globs.push(prefix.join("::"));
                i += 1;
            }
            Some(Tok::Punct('{')) => {
                // A group: parse each comma-separated subtree.
                i += 1;
                loop {
                    match tokens.get(i).map(|t| &t.tok) {
                        None | Some(Tok::Punct('}')) => {
                            i += 1;
                            break;
                        }
                        Some(Tok::Punct(',')) => i += 1,
                        _ => {
                            let mut sub = prefix.clone();
                            i = parse_group_element(tokens, i, &mut sub, map);
                        }
                    }
                }
                // A group always ends the tree at this level.
                prefix.truncate(depth_at_entry);
                return finish(tokens, i, prefix, map, depth_at_entry, true);
            }
            Some(Tok::Punct(';')) | None => {
                return finish(tokens, i, prefix, map, depth_at_entry, false);
            }
            _ => i += 1,
        }
    }
}

/// Ends a use-tree: a path without a group or rename binds its last
/// segment as the alias.
fn finish(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    map: &mut UseMap,
    depth_at_entry: usize,
    had_group: bool,
) -> usize {
    if !had_group && prefix.len() > depth_at_entry {
        if let Some(last) = prefix.last() {
            if last != "self" {
                map.aliases.push((last.clone(), prefix.join("::")));
            } else {
                // `use a::b::{self, c}` binds `b`.
                let path = prefix[..prefix.len() - 1].join("::");
                if let Some(name) = prefix.get(prefix.len().wrapping_sub(2)) {
                    map.aliases.push((name.clone(), path));
                }
            }
        }
    }
    prefix.truncate(depth_at_entry);
    if tokens.get(i).map(|t| t.is_punct(';')).unwrap_or(false) {
        i += 1;
    }
    i
}

/// Parses one element inside `{…}`: a nested tree that terminates at `,`
/// or `}` instead of `;`.
fn parse_group_element(
    tokens: &[Token],
    mut i: usize,
    prefix: &mut Vec<String>,
    map: &mut UseMap,
) -> usize {
    let depth_at_entry = prefix.len();
    loop {
        match tokens.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(seg)) if seg == "as" => {
                if let Some(Tok::Ident(alias)) = tokens.get(i + 1).map(|t| &t.tok) {
                    map.aliases.push((alias.clone(), prefix.join("::")));
                    i += 2;
                    // Skip to the element terminator.
                    while !matches!(
                        tokens.get(i).map(|t| &t.tok),
                        None | Some(Tok::Punct(',')) | Some(Tok::Punct('}'))
                    ) {
                        i += 1;
                    }
                    return i;
                }
                i += 1;
            }
            Some(Tok::Ident(seg)) => {
                prefix.push(seg.clone());
                i += 1;
            }
            Some(Tok::Punct(':')) => i += 1,
            Some(Tok::Punct('*')) => {
                map.globs.push(prefix.join("::"));
                i += 1;
            }
            Some(Tok::Punct('{')) => {
                i += 1;
                loop {
                    match tokens.get(i).map(|t| &t.tok) {
                        None | Some(Tok::Punct('}')) => {
                            i += 1;
                            break;
                        }
                        Some(Tok::Punct(',')) => i += 1,
                        _ => {
                            let mut sub = prefix.clone();
                            i = parse_group_element(tokens, i, &mut sub, map);
                        }
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            None | Some(Tok::Punct(',')) | Some(Tok::Punct('}')) => {
                if prefix.len() > depth_at_entry {
                    let last = prefix.last().cloned().unwrap_or_default();
                    if last == "self" {
                        let path = prefix[..prefix.len() - 1].join("::");
                        if prefix.len() >= 2 {
                            map.aliases.push((prefix[prefix.len() - 2].clone(), path));
                        }
                    } else {
                        map.aliases.push((last, prefix.join("::")));
                    }
                }
                prefix.truncate(depth_at_entry);
                return i;
            }
            _ => i += 1,
        }
    }
}

/// Expands the textual path around the ident token at `idx` (walking
/// `a::b` chains both directions) and resolves its first segment through
/// the file's [`UseMap`]. Returns the canonical path, e.g.
/// `std::time::Instant::now` for a bare `Instant::now()` under
/// `use std::time::Instant`.
///
/// Returns `None` when the first segment is neither absolute
/// (`std`/`core`/`alloc`/a crate name is treated as written) nor found in
/// the use map — i.e. for locally defined names.
pub fn canonical_path(tokens: &[Token], idx: usize, uses: &UseMap) -> Option<String> {
    // Walk back to the first segment of the path.
    let mut first = idx;
    while first >= 2
        && tokens[first - 1].is_punct(':')
        && tokens[first - 2].is_punct(':')
        && first >= 3
        && matches!(tokens[first - 3].tok, Tok::Ident(_))
    {
        first -= 3;
    }
    // Collect segments forward from `first`.
    let mut segs: Vec<&str> = Vec::new();
    let mut j = first;
    while let Some(s) = tokens.get(j).and_then(|t| t.ident()) {
        segs.push(s);
        if tokens.get(j + 1).map(|t| t.is_punct(':')).unwrap_or(false)
            && tokens.get(j + 2).map(|t| t.is_punct(':')).unwrap_or(false)
            && matches!(tokens.get(j + 3).map(|t| &t.tok), Some(Tok::Ident(_)))
        {
            j += 3;
        } else {
            break;
        }
    }
    let head = *segs.first()?;
    let resolved_head: String = match head {
        "std" | "core" | "alloc" => segs.join("::"),
        "crate" | "self" | "super" => return Some(segs.join("::")),
        _ => {
            let base = uses.lookup(head)?;
            let mut full = base.to_string();
            for s in &segs[1..] {
                full.push_str("::");
                full.push_str(s);
            }
            full
        }
    };
    Some(resolved_head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn uses(src: &str) -> UseMap {
        UseMap::parse(&lex(src).tokens)
    }

    #[test]
    fn plain_group_and_rename_imports() {
        let m = uses(
            "use std::time::{Instant, Duration};\n\
             use std::time::SystemTime as Wall;\n\
             use std::collections::*;\n\
             use rand::thread_rng;",
        );
        assert_eq!(m.lookup("Instant"), Some("std::time::Instant"));
        assert_eq!(m.lookup("Duration"), Some("std::time::Duration"));
        assert_eq!(m.lookup("Wall"), Some("std::time::SystemTime"));
        assert_eq!(m.lookup("thread_rng"), Some("rand::thread_rng"));
        assert!(m.could_glob("std::collections"));
    }

    #[test]
    fn nested_groups_and_self() {
        let m = uses("use a::{b::{c, d as e}, f::self};");
        assert_eq!(m.lookup("c"), Some("a::b::c"));
        assert_eq!(m.lookup("e"), Some("a::b::d"));
        assert_eq!(m.lookup("f"), Some("a::f"));
    }

    #[test]
    fn canonical_paths_resolve_imports_and_absolutes() {
        let lx = lex("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        let m = UseMap::parse(&lx.tokens);
        let idx = lx
            .tokens
            .iter()
            .rposition(|t| t.is_ident("Instant"))
            .unwrap();
        assert_eq!(
            canonical_path(&lx.tokens, idx, &m).as_deref(),
            Some("std::time::Instant::now")
        );
        // `now` resolves through the same chain when asked from its index.
        let now = lx.tokens.iter().rposition(|t| t.is_ident("now")).unwrap();
        assert_eq!(
            canonical_path(&lx.tokens, now, &m).as_deref(),
            Some("std::time::Instant::now")
        );
    }

    #[test]
    fn local_names_do_not_resolve() {
        let lx = lex("fn f() { let t = Instant::now(); }");
        let m = UseMap::parse(&lx.tokens);
        let idx = lx.tokens.iter().position(|t| t.is_ident("Instant")).unwrap();
        assert_eq!(canonical_path(&lx.tokens, idx, &m), None);
    }

    #[test]
    fn fully_qualified_std_paths_resolve_as_written() {
        let lx = lex("fn f() { std::time::Instant::now(); }");
        let m = UseMap::parse(&lx.tokens);
        let idx = lx.tokens.iter().position(|t| t.is_ident("time")).unwrap();
        assert_eq!(
            canonical_path(&lx.tokens, idx, &m).as_deref(),
            Some("std::time::Instant::now")
        );
    }
}
