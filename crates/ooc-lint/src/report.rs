//! Findings and report rendering (human text and `--json`).
//!
//! The JSON form carries *all* findings including suppressed ones (with
//! their suppression reason), so CI tooling can diff lint results across
//! PRs and audit what is being allowed, not just what is failing.

use std::fmt::Write as _;

/// One step of a transitive-reach witness call chain.
#[derive(Debug, Clone)]
pub struct WitnessStep {
    /// `Type::name` (or bare `name`) of the function.
    pub func: String,
    /// Workspace-relative path of the file defining it.
    pub file: String,
    /// The line the chain enters the function at: the call site in the
    /// previous step's file, or the definition line for the first step.
    pub line: u32,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `determinism/wall-clock`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// The trimmed offending source line.
    pub snippet: String,
    /// Why this is a problem, with the fix direction.
    pub message: String,
    /// The minimal call chain proving a transitive finding (empty for
    /// token-local rules).
    pub witness: Vec<WitnessStep>,
    /// The suppression reason when an `ooc-lint::allow` covers this
    /// finding; `None` means the finding is active (fails the build).
    pub suppressed: Option<String>,
}

/// Per-rule execution statistics for the report `meta` block.
#[derive(Debug, Clone)]
pub struct RuleStat {
    /// Rule id.
    pub id: &'static str,
    /// Findings emitted (suppressed included).
    pub findings: usize,
    /// Deterministic work performed (see `Rule::check`). Ticks, not
    /// seconds: the measure must itself obey the determinism contract.
    pub work_ticks: u64,
}

/// The outcome of a full lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, suppressed or not, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Per-rule statistics, in registration order.
    pub rule_stats: Vec<RuleStat>,
}

impl Report {
    /// Findings that are not suppressed — these fail the build.
    pub fn active(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Number of active (build-failing) findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Sorts findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in self.active() {
            let _ = writeln!(
                out,
                "error[{}]: {}\n  --> {}:{}\n   | {}",
                f.rule, f.message, f.path, f.line, f.snippet
            );
            for (i, step) in f.witness.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "   {} {} ({}:{})",
                    if i == 0 { "chain:" } else { "    ->" },
                    step.func,
                    step.file,
                    step.line
                );
            }
            out.push('\n');
        }
        let suppressed = self.findings.len() - self.active_count();
        let _ = writeln!(
            out,
            "ooc-lint: {} file(s) scanned, {} finding(s), {} suppressed",
            self.files_scanned,
            self.active_count(),
            suppressed
        );
        out
    }

    /// Machine-readable report (stable field order, findings pre-sorted).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 2,\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"active_findings\": {},", self.active_count());
        out.push_str("  \"meta\": {\n");
        let _ = writeln!(out, "    \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "    \"total_findings\": {},", self.findings.len());
        let _ = writeln!(out, "    \"active_findings\": {},", self.active_count());
        out.push_str("    \"rules\": [");
        for (i, s) in self.rule_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n      {{\"id\": {}, \"findings\": {}, \"work_ticks\": {}}}",
                json_str(s.id),
                s.findings,
                s.work_ticks
            );
        }
        out.push_str("\n    ]\n  },\n");
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let _ = write!(out, "\"rule\": {}, ", json_str(f.rule));
            let _ = write!(out, "\"file\": {}, ", json_str(&f.path));
            let _ = write!(out, "\"line\": {}, ", f.line);
            let _ = write!(out, "\"snippet\": {}, ", json_str(&f.snippet));
            let _ = write!(out, "\"message\": {}, ", json_str(&f.message));
            if !f.witness.is_empty() {
                out.push_str("\"witness\": [");
                for (k, step) in f.witness.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(
                        out,
                        "{{\"fn\": {}, \"file\": {}, \"line\": {}}}",
                        json_str(&step.func),
                        json_str(&step.file),
                        step.line
                    );
                }
                out.push_str("], ");
            }
            match &f.suppressed {
                Some(reason) => {
                    let _ = write!(
                        out,
                        "\"suppressed\": true, \"suppression_reason\": {}",
                        json_str(reason)
                    );
                }
                None => {
                    let _ = write!(out, "\"suppressed\": false");
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report {
            findings: vec![
                Finding {
                    rule: "determinism/wall-clock",
                    path: "crates/x/src/a.rs".into(),
                    line: 3,
                    snippet: "let t = Instant::now(); // \"quoted\"".into(),
                    message: "m".into(),
                    witness: Vec::new(),
                    suppressed: None,
                },
                Finding {
                    rule: "protocol/panic",
                    path: "crates/x/src/a.rs".into(),
                    line: 1,
                    snippet: "s".into(),
                    message: "m".into(),
                    witness: Vec::new(),
                    suppressed: Some("checked invariant".into()),
                },
            ],
            files_scanned: 2,
            rule_stats: vec![RuleStat {
                id: "determinism/wall-clock",
                findings: 1,
                work_ticks: 42,
            }],
        };
        r.sort();
        assert_eq!(r.findings[0].line, 1);
        assert_eq!(r.active_count(), 1);
        let json = r.render_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"suppressed\": true"));
        assert!(json.contains("\"suppression_reason\": \"checked invariant\""));
        assert!(json.contains("\"active_findings\": 1"));
        assert!(json.contains("\"meta\""));
        assert!(json.contains("\"work_ticks\": 42"));
    }

    #[test]
    fn witness_chains_serialize_and_render() {
        let r = Report {
            findings: vec![Finding {
                rule: "determinism/transitive-reach",
                path: "crates/x/src/a.rs".into(),
                line: 5,
                snippet: "run_artifact(&a)".into(),
                message: "m".into(),
                witness: vec![
                    WitnessStep {
                        func: "run_all".into(),
                        file: "crates/x/src/a.rs".into(),
                        line: 4,
                    },
                    WitnessStep {
                        func: "run_artifact".into(),
                        file: "crates/x/src/b.rs".into(),
                        line: 5,
                    },
                ],
                suppressed: None,
            }],
            files_scanned: 1,
            rule_stats: Vec::new(),
        };
        let json = r.render_json();
        assert!(json.contains(
            "\"witness\": [{\"fn\": \"run_all\", \"file\": \"crates/x/src/a.rs\", \"line\": 4}, \
             {\"fn\": \"run_artifact\", \"file\": \"crates/x/src/b.rs\", \"line\": 5}]"
        ));
        let text = r.render_text();
        assert!(text.contains("chain: run_all (crates/x/src/a.rs:4)"));
        assert!(text.contains("-> run_artifact (crates/x/src/b.rs:5)"));
    }
}
