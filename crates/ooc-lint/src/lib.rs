//! `ooc-lint` — workspace-aware static analysis enforcing the determinism
//! & protocol-hygiene contract.
//!
//! Every safety/liveness claim this repo reproduces is checked by
//! *replaying simulated runs*, so the whole verification story rests on
//! the contract pinned by `tests/determinism.rs`: **a run is a pure
//! function of its seed**. This crate is the build-time half of that
//! contract. Where Gafni frames consensus power as restricting the set of
//! admissible *runs*, the linter restricts the set of admissible
//! *programs* — to those whose runs are replayable and whose crashes are
//! accounted for.
//!
//! The pass is a hand-rolled lexer plus lightweight use-path resolution
//! (no rustc plugin, no external deps) feeding a pluggable rule engine:
//!
//! | rule | contract clause |
//! |------|-----------------|
//! | `determinism/wall-clock`    | no `Instant::now` / `SystemTime` in shipped code |
//! | `determinism/ambient-rng`   | no `thread_rng` / `from_entropy` / `OsRng` anywhere |
//! | `determinism/host-env`      | no `available_parallelism` / `num_cpus` in deterministic code |
//! | `determinism/unordered-iter`| no `HashMap`/`HashSet` in deterministic crates |
//! | `protocol/panic`            | no `unwrap`/`panic!` inside protocol state machines |
//! | `hygiene/checker-coverage`  | every public protocol object is checker-tested |
//!
//! Suppression is explicit and auditable:
//! `// ooc-lint::allow(<rule>, "<reason>")` on (or directly above) the
//! offending line. Allows without reasons, with unknown rule ids, or that
//! suppress nothing are findings themselves (`hygiene/suppression`).
//!
//! Run it as `cargo run -p ooc-lint -- check [--json]`.

pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod source;
pub mod suppress;

pub use report::{Finding, Report};
pub use source::{SourceFile, Workspace};

use std::io;
use std::path::Path;

/// Lints the workspace rooted at `root` (see [`Workspace::scan`] for what
/// is scanned).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    Ok(lint(&Workspace::scan(root)?))
}

/// Runs every rule over an already-built workspace model, applies
/// suppressions, and audits the suppressions themselves.
pub fn lint(ws: &Workspace) -> Report {
    let ctx = rules::LintContext::new(ws);
    let mut findings = Vec::new();
    let mut rule_stats = Vec::new();
    for rule in rules::all() {
        let before = findings.len();
        let work_ticks = rule.check(&ctx, &mut findings);
        rule_stats.push(report::RuleStat {
            id: rule.id(),
            findings: findings.len() - before,
            work_ticks,
        });
    }
    let known = rules::known_ids();
    let mut hygiene = Vec::new();
    let mut audit_ticks = 0u64;
    for file in &ws.files {
        audit_ticks += file.allows.len() as u64;
        for allow in &file.allows {
            if let Some(err) = &allow.error {
                hygiene.push(suppression_finding(file, allow.line, err));
                continue;
            }
            if !known.contains(&allow.rule.as_str()) {
                hygiene.push(suppression_finding(
                    file,
                    allow.line,
                    &format!(
                        "unknown rule `{}` in ooc-lint::allow (known: {})",
                        allow.rule,
                        known.join(", ")
                    ),
                ));
                continue;
            }
            let mut used = false;
            for f in findings.iter_mut().filter(|f| {
                f.suppressed.is_none()
                    && f.rule == allow.rule
                    && f.path == file.path
                    && f.line == allow.target
            }) {
                f.suppressed = Some(allow.reason.clone());
                used = true;
            }
            if !used {
                hygiene.push(suppression_finding(
                    file,
                    allow.line,
                    &format!(
                        "stale ooc-lint::allow({}) suppresses nothing on line {}",
                        allow.rule, allow.target
                    ),
                ));
            }
        }
    }
    rule_stats.push(report::RuleStat {
        id: rules::SUPPRESSION_RULE,
        findings: hygiene.len(),
        work_ticks: audit_ticks,
    });
    findings.extend(hygiene);
    let mut report = Report {
        findings,
        files_scanned: ws.files.len(),
        rule_stats,
    };
    report.sort();
    report
}

fn suppression_finding(file: &SourceFile, line: u32, message: &str) -> Finding {
    Finding {
        rule: rules::SUPPRESSION_RULE,
        path: file.path.clone(),
        line,
        snippet: file.snippet(line),
        message: message.to_string(),
        witness: Vec::new(),
        suppressed: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str, &str)]) -> Workspace {
        Workspace::from_files(
            files
                .iter()
                .map(|(p, c, s)| SourceFile::from_source(p, c, s))
                .collect(),
        )
    }

    #[test]
    fn suppression_lifecycle() {
        // A justified allow silences the finding; the JSON still sees it.
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "use std::collections::HashMap;\n\
             // ooc-lint::allow(determinism/unordered-iter, \"membership-only\")\n\
             struct S { m: HashMap<u32, u32> }\n",
        )]);
        let r = lint(&w);
        // Line 1 (the `use`) is an active finding; line 3 is suppressed.
        let active: Vec<_> = r.active().collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].line, 1);
        assert_eq!(r.findings.len(), 2);
        assert!(r
            .findings
            .iter()
            .any(|f| f.suppressed.as_deref() == Some("membership-only")));
    }

    #[test]
    fn stale_and_unknown_allows_are_findings() {
        let w = ws(&[(
            "crates/ooc-core/src/a.rs",
            "ooc-core",
            "// ooc-lint::allow(determinism/wall-clock, \"nothing here\")\n\
             fn f() {}\n\
             // ooc-lint::allow(not/a-rule, \"whatever\")\n\
             fn g() {}\n",
        )]);
        let r = lint(&w);
        let rules: Vec<_> = r.active().map(|f| f.rule).collect();
        assert_eq!(rules, vec!["hygiene/suppression", "hygiene/suppression"]);
    }
}
