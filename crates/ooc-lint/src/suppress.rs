//! Explicit, auditable suppressions.
//!
//! A finding is silenced only by an annotation at the offending line:
//!
//! ```text
//! // ooc-lint::allow(determinism/wall-clock, "measures real elapsed time for reports")
//! let started = Instant::now();
//! ```
//!
//! A trailing comment annotates its own line; a standalone comment
//! annotates the next code line. The reason string is mandatory and must
//! be non-empty — an allow without a reason is itself a finding, as is an
//! allow that suppresses nothing (so stale annotations cannot linger).

use crate::source::SourceFile;

/// The marker every suppression comment starts with (after trimming).
pub const ALLOW_PREFIX: &str = "ooc-lint::allow";

/// One parsed suppression annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id being allowed, e.g. `determinism/wall-clock`.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// The line the comment sits on.
    pub line: u32,
    /// The code line it suppresses.
    pub target: u32,
    /// Parse problem, if any (malformed allows never suppress).
    pub error: Option<String>,
}

/// Extracts every `ooc-lint::allow` annotation from a file's comments.
/// Doc comments are ignored so documentation about the syntax is inert.
pub fn parse_allows(file: &SourceFile) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in &file.comments {
        if c.doc {
            continue;
        }
        let text = c.text.trim();
        if !text.starts_with(ALLOW_PREFIX) {
            continue;
        }
        let target = if c.code_before {
            c.line
        } else {
            file.next_code_line(c.line).unwrap_or(c.line)
        };
        let rest = text[ALLOW_PREFIX.len()..].trim_start();
        let (rule, reason, error) = parse_args(rest);
        allows.push(Allow {
            rule,
            reason,
            line: c.line,
            target,
            error,
        });
    }
    allows
}

/// Parses `(<rule>, "<reason>")`. Returns whatever could be salvaged plus
/// an error description when the annotation is malformed.
fn parse_args(rest: &str) -> (String, String, Option<String>) {
    let fail = |msg: &str| (String::new(), String::new(), Some(msg.to_string()));
    let Some(inner) = rest.strip_prefix('(') else {
        return fail("expected `(` after `ooc-lint::allow`");
    };
    let Some(close) = inner.rfind(')') else {
        return fail("missing closing `)`");
    };
    let inner = &inner[..close];
    let Some((rule, reason_part)) = inner.split_once(',') else {
        return (
            inner.trim().to_string(),
            String::new(),
            Some("missing reason: use ooc-lint::allow(<rule>, \"<why this is sound>\")".into()),
        );
    };
    let rule = rule.trim().to_string();
    let reason_part = reason_part.trim();
    if reason_part.len() < 2 || !reason_part.starts_with('"') || !reason_part.ends_with('"') {
        return (
            rule,
            String::new(),
            Some("reason must be a quoted string".into()),
        );
    }
    let reason = reason_part[1..reason_part.len() - 1].to_string();
    if reason.trim().is_empty() {
        return (rule, reason, Some("reason must not be empty".into()));
    }
    (rule, reason, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn allows(src: &str) -> Vec<Allow> {
        SourceFile::from_source("src/x.rs", "ooc-core", src).allows
    }

    #[test]
    fn trailing_and_standalone_targets() {
        let src = "let a = 1; // ooc-lint::allow(determinism/wall-clock, \"trailing\")\n\
                   // ooc-lint::allow(determinism/ambient-rng, \"standalone\")\n\
                   let b = 2;";
        let a = allows(src);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].target, 1);
        assert_eq!(a[1].target, 3);
        assert!(a.iter().all(|x| x.error.is_none()));
    }

    #[test]
    fn missing_or_empty_reason_is_an_error() {
        let a = allows("// ooc-lint::allow(protocol/panic)\nfn f() {}");
        assert!(a[0].error.is_some());
        let a = allows("// ooc-lint::allow(protocol/panic, \"  \")\nfn f() {}");
        assert!(a[0].error.is_some());
        let a = allows("// ooc-lint::allow(protocol/panic, unquoted)\nfn f() {}");
        assert!(a[0].error.is_some());
    }

    #[test]
    fn doc_comments_never_suppress() {
        let a = allows("/// ooc-lint::allow(protocol/panic, \"docs\")\nfn f() {}");
        assert!(a.is_empty());
    }
}
