//! The `ooc-lint` CLI.
//!
//! ```text
//! cargo run -p ooc-lint -- check            # human-readable, exit 1 on findings
//! cargo run -p ooc-lint -- check --json     # machine-readable (all findings,
//! cargo run -p ooc-lint -- check --root X   #   incl. suppressed, for diffing)
//! cargo run -p ooc-lint -- rules            # list the rule catalogue
//! cargo run -p ooc-lint -- rules --json     # machine-readable catalogue
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(arg.as_str()),
            "--json" => json = true,
            "--root" => match it.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    match cmd {
        Some("rules") => {
            if json {
                print!("{}", ooc_lint::rules::catalog_json());
            } else {
                for info in ooc_lint::rules::catalog() {
                    println!("{:28} [{}] {}", info.id, info.severity, info.doc);
                }
            }
            ExitCode::SUCCESS
        }
        Some("check") => {
            let root = root.or_else(|| {
                std::env::current_dir()
                    .ok()
                    .and_then(|d| ooc_lint::Workspace::find_root(&d))
            });
            let Some(root) = root else {
                return usage("no workspace root found (run inside the repo or pass --root)");
            };
            match ooc_lint::lint_workspace(&root) {
                Ok(report) => {
                    if json {
                        print!("{}", report.render_json());
                    } else {
                        print!("{}", report.render_text());
                    }
                    if report.active_count() == 0 {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("ooc-lint: i/o error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage("expected a command: check | rules"),
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ooc-lint: {err}");
    eprintln!("usage: ooc-lint check [--json] [--root <dir>] | ooc-lint rules [--json]");
    ExitCode::from(2)
}
