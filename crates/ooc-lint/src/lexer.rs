//! A minimal, lossy Rust lexer.
//!
//! The rules only need to see *code* — identifiers and punctuation with
//! line numbers — plus the line comments (where suppressions live). So the
//! lexer collapses every literal into an opaque [`Tok::Literal`] and
//! discards string/char contents entirely, which is what makes the whole
//! pass immune to false positives from `"HashMap"` appearing in a doc
//! string or an error message.
//!
//! Handled: line & (nested) block comments, doc comments, string / raw
//! string / byte-string / char literals, lifetimes vs. char literals,
//! raw identifiers, numeric literals with suffixes and exponents.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident(String),
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `::` is `:`, `:`).
    Punct(char),
    /// Any literal: string, raw string, byte string, char, or number.
    /// Plain integer literals keep their value (the quorum-arithmetic
    /// rule evaluates threshold expressions like `n / 2 + 1`); every
    /// other literal carries `None`.
    Literal(Option<i64>),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }

    /// Whether this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }

    /// The integer value, if this token is a plain integer literal.
    pub fn int_value(&self) -> Option<i64> {
        match self.tok {
            Tok::Literal(v) => v,
            _ => None,
        }
    }
}

/// A `//` comment (suppressions are only read from these; `///` and `//!`
/// doc comments are captured but marked, so documentation *about* the
/// suppression syntax can never act as a suppression).
#[derive(Debug, Clone)]
pub struct LineComment {
    /// Text after the `//`, untrimmed.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// Whether any code token precedes the comment on its line (a
    /// trailing comment annotates its own line; a standalone comment
    /// annotates the next code line).
    pub code_before: bool,
    /// Whether this is a `///` or `//!` doc comment.
    pub doc: bool,
}

/// The lexer output.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Line comments in source order.
    pub comments: Vec<LineComment>,
}

/// Lexes Rust source. Never fails: unrecognized bytes come out as
/// [`Tok::Punct`], and an unterminated literal consumes to end of input —
/// good enough for linting code that `rustc` already accepts.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut last_code_line: u32 = 0;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_char = |c: char| c.is_alphanumeric() || c == '_';

    macro_rules! push_tok {
        ($tok:expr, $line:expr) => {{
            last_code_line = $line;
            out.tokens.push(Token { tok: $tok, line: $line });
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let doc = matches!(chars.get(i + 2), Some('/') | Some('!'));
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                out.comments.push(LineComment {
                    text: chars[i + 2..j].iter().collect(),
                    line: start_line,
                    code_before: last_code_line == start_line,
                    doc,
                });
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comments nest in Rust.
                let mut depth = 1;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
                push_tok!(Tok::Literal(None), start_line);
            }
            '\'' => {
                // Lifetime or char literal?
                let next = chars.get(i + 1).copied();
                let char_lit = match next {
                    Some('\\') => true,
                    Some(n) if is_ident_char(n) => chars.get(i + 2) == Some(&'\''),
                    Some('\'') => false, // `''` — malformed, treat as puncts
                    Some(_) => true,     // e.g. '+' — a char literal
                    None => false,
                };
                if char_lit {
                    // Consume until the closing quote (handles escapes and
                    // multi-char escapes like '\u{1F600}').
                    let mut j = i + 1;
                    while j < chars.len() {
                        match chars[j] {
                            '\\' => j += 2,
                            '\'' => {
                                j += 1;
                                break;
                            }
                            '\n' => break, // malformed; bail at line end
                            _ => j += 1,
                        }
                    }
                    i = j;
                    push_tok!(Tok::Literal(None), start_line);
                } else if matches!(next, Some(n) if is_ident_start(n)) {
                    // A lifetime: skip the quote and the identifier.
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_char(chars[j]) {
                        j += 1;
                    }
                    i = j;
                } else {
                    i += 1;
                    push_tok!(Tok::Punct('\''), start_line);
                }
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < chars.len() && (is_ident_char(chars[j])) {
                    j += 1;
                }
                let mut is_float = false;
                // Fractional part only when followed by a digit, so `4u64.pow`
                // and `0..n` keep their dots.
                if chars.get(j) == Some(&'.')
                    && matches!(chars.get(j + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    j += 2;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                    if matches!(chars.get(j), Some('e') | Some('E')) {
                        let mut k = j + 1;
                        if matches!(chars.get(k), Some('+') | Some('-')) {
                            k += 1;
                        }
                        if matches!(chars.get(k), Some(d) if d.is_ascii_digit()) {
                            j = k;
                            while j < chars.len() && chars[j].is_ascii_digit() {
                                j += 1;
                            }
                        }
                    }
                }
                let value = if is_float {
                    None
                } else {
                    parse_int(&chars[i..j])
                };
                i = j;
                push_tok!(Tok::Literal(value), start_line);
            }
            'r' | 'b' if is_raw_or_byte_literal(&chars, i) => {
                i = skip_raw_or_byte_literal(&chars, i, &mut line);
                push_tok!(Tok::Literal(None), start_line);
            }
            'r' if chars.get(i + 1) == Some(&'#')
                && matches!(chars.get(i + 2), Some(n) if is_ident_start(*n)) =>
            {
                // Raw identifier `r#type`.
                let mut j = i + 2;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                let name: String = chars[i + 2..j].iter().collect();
                i = j;
                push_tok!(Tok::Ident(name), start_line);
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                let name: String = chars[i..j].iter().collect();
                i = j;
                push_tok!(Tok::Ident(name), start_line);
            }
            _ => {
                i += 1;
                push_tok!(Tok::Punct(c), start_line);
            }
        }
    }
    out
}

/// Parses the integer value of a numeric literal's characters: decimal
/// (`42`, `1_000`, `42u64`) and hex/octal/binary prefixes. Returns `None`
/// for floats, overflow, or anything else exotic.
fn parse_int(chars: &[char]) -> Option<i64> {
    let text: String = chars.iter().filter(|&&c| c != '_').collect();
    let digits = text
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    // The suffix trim above eats hex digits (`0xff` → `0x`), so radix
    // prefixes are parsed from the untrimmed text instead.
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        let hex = hex.trim_end_matches("u64").trim_end_matches("u32").trim_end_matches("usize");
        return i64::from_str_radix(hex, 16).ok();
    }
    if let Some(oct) = text.strip_prefix("0o") {
        return i64::from_str_radix(oct.trim_end_matches(|c: char| !c.is_digit(8)), 8).ok();
    }
    if let Some(bin) = text.strip_prefix("0b") {
        return i64::from_str_radix(bin.trim_end_matches(|c: char| !c.is_digit(2)), 2).ok();
    }
    digits.parse().ok()
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte literal rather
/// than an identifier.
fn is_raw_or_byte_literal(chars: &[char], i: usize) -> bool {
    match chars[i] {
        'b' => matches!(
            (chars.get(i + 1), chars.get(i + 2)),
            (Some('"'), _) | (Some('\''), _) | (Some('r'), Some('"')) | (Some('r'), Some('#'))
        ),
        'r' => {
            // `r"`, or `r#`+ ultimately followed by `"` (otherwise it is a
            // raw identifier, handled elsewhere).
            match chars.get(i + 1) {
                Some('"') => true,
                Some('#') => {
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        j += 1;
                    }
                    chars.get(j) == Some(&'"')
                }
                _ => false,
            }
        }
        _ => false,
    }
}

/// Skips a raw string / byte string / byte char starting at `i`; returns
/// the index past the literal.
fn skip_raw_or_byte_literal(chars: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'\'') {
        // Byte char b'x'.
        j += 1;
        while j < chars.len() {
            match chars[j] {
                '\\' => j += 2,
                '\'' => return j + 1,
                _ => j += 1,
            }
        }
        return j;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
    }
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return j; // not actually a literal; be permissive
    }
    if hashes == 0 && !raw(chars, i) {
        // Plain (byte) string with escapes.
        return skip_string(chars, j, line);
    }
    j += 1;
    // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return k;
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    j
}

/// Whether the literal at `i` has an `r` (raw) marker.
fn raw(chars: &[char], i: usize) -> bool {
    chars[i] == 'r' || (chars[i] == 'b' && chars.get(i + 1) == Some(&'r'))
}

/// Skips a `"…"` string starting at the opening quote; returns the index
/// past the closing quote.
fn skip_string(chars: &[char], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r###"
            let x = "Instant::now()"; // Instant in a comment
            /* HashMap in /* a nested */ block */
            let y = r#"SystemTime"#;
            let z = 'a';
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"let".into()));
        assert!(!ids.contains(&"Instant".into()));
        assert!(!ids.contains(&"HashMap".into()));
        assert!(!ids.contains(&"SystemTime".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // Lifetimes are dropped entirely (their names are never rule
        // targets); the point is that `'a` must not open a char literal
        // that would swallow the rest of the signature.
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(ids, vec!["fn", "f", "x", "str", "str", "x"]);
    }

    #[test]
    fn numeric_literals_do_not_eat_method_calls() {
        let ids = idents("let v = 4u64.pow(2) + 1.5e-3 as u64;");
        assert!(ids.contains(&"pow".into()));
    }

    #[test]
    fn comments_track_position_and_docness() {
        let lx = lex("let a = 1; // trailing\n// standalone\n/// doc\nlet b = 2;");
        assert_eq!(lx.comments.len(), 3);
        assert!(lx.comments[0].code_before);
        assert!(!lx.comments[1].code_before);
        assert!(lx.comments[2].doc);
        assert_eq!(lx.comments[1].line, 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lx = lex("let s = \"line1\nline2\";\nlet t = 3;");
        let t = lx.tokens.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn raw_identifiers_lose_their_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
