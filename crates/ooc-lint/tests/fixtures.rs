//! Fixture snippets proving each rule fires, stays quiet, and suppresses.
//!
//! Every rule gets three scenarios over in-memory source files:
//! a **positive** fixture that must produce the finding, a **negative**
//! fixture that must not, and a **suppressed** fixture where a reasoned
//! `ooc-lint::allow` silences it (visible to `--json`, absent from the
//! active set). The file closes with the self-test the whole crate exists
//! for: the real workspace lints clean.

use ooc_lint::{lint, Report, SourceFile, Workspace};

/// Lints one fixture file placed in a deterministic crate.
fn lint_one(path: &str, crate_name: &str, src: &str) -> Report {
    lint(&Workspace::from_files(vec![SourceFile::from_source(
        path, crate_name, src,
    )]))
}

fn active_rules(report: &Report) -> Vec<&'static str> {
    report.active().map(|f| f.rule).collect()
}

/// Asserts the standard suppressed-fixture shape: nothing active, exactly
/// one finding recorded with the given suppression reason.
fn assert_suppressed(report: &Report, rule: &str, reason: &str) {
    assert_eq!(active_rules(report), Vec::<&str>::new(), "no active findings");
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == rule)
        .expect("the finding is still recorded for --json auditing");
    assert_eq!(f.suppressed.as_deref(), Some(reason));
}

// ---------------------------------------------------------------------------
// determinism/wall-clock
// ---------------------------------------------------------------------------

#[test]
fn wall_clock_positive() {
    let r = lint_one(
        "crates/ooc-core/src/clocky.rs",
        "ooc-core",
        "use std::time::Instant;\nfn f() -> Instant { Instant::now() }\n",
    );
    let rules = active_rules(&r);
    assert!(
        rules.iter().all(|&x| x == "determinism/wall-clock") && !rules.is_empty(),
        "{rules:?}"
    );
}

#[test]
fn wall_clock_catches_renamed_imports() {
    let r = lint_one(
        "crates/ooc-core/src/clocky.rs",
        "ooc-core",
        "use std::time::Instant as Clock;\nfn f() -> Clock { Clock::now() }\n",
    );
    assert!(
        active_rules(&r).contains(&"determinism/wall-clock"),
        "an `as` rename must not launder a wall-clock read"
    );
}

#[test]
fn wall_clock_negative_simulated_time() {
    // A local type that happens to be called Instant is fine once the use
    // path proves it is not std's.
    let r = lint_one(
        "crates/ooc-core/src/clocky.rs",
        "ooc-core",
        "use crate::sim_clock::Instant;\nfn f() -> Instant { Instant::now() }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn wall_clock_suppressed() {
    let r = lint_one(
        "crates/ooc-bench/src/b.rs",
        "ooc-bench",
        "use std::time::Instant;\n\
         // ooc-lint::allow(determinism/wall-clock, \"benchmark timing\")\n\
         fn f() { let _ = Instant::now(); }\n",
    );
    // The `use` line itself is annotated separately in real code; here only
    // line 3 is allowed, so line 1 must stay active.
    let active: Vec<_> = r.active().collect();
    assert_eq!(active.len(), 1);
    assert_eq!(active[0].line, 1);
    assert!(r
        .findings
        .iter()
        .any(|f| f.suppressed.as_deref() == Some("benchmark timing")));
}

// ---------------------------------------------------------------------------
// determinism/ambient-rng
// ---------------------------------------------------------------------------

#[test]
fn ambient_rng_positive() {
    let r = lint_one(
        "crates/ooc-simnet/src/r.rs",
        "ooc-simnet",
        "fn f() -> u64 { let mut rng = rand::thread_rng(); rng.gen() }\n",
    );
    assert!(active_rules(&r).contains(&"determinism/ambient-rng"));
}

#[test]
fn ambient_rng_fires_even_in_test_files() {
    // Ambient entropy in tests breaks replayability of failures, so the
    // rule does not carve out tests/.
    let r = lint_one(
        "crates/ooc-simnet/tests/r.rs",
        "ooc-simnet",
        "fn seed() -> Foo { Foo::from_entropy() }\n",
    );
    assert!(active_rules(&r).contains(&"determinism/ambient-rng"));
}

#[test]
fn ambient_rng_negative_seeded() {
    let r = lint_one(
        "crates/ooc-simnet/src/r.rs",
        "ooc-simnet",
        "fn f(seed: u64) -> u64 { let mut rng = SplitMix64::new(seed); rng.next_u64() }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn ambient_rng_suppressed() {
    let r = lint_one(
        "crates/ooc-campaign/src/r.rs",
        "ooc-campaign",
        "// ooc-lint::allow(determinism/ambient-rng, \"seeding the seed generator\")\n\
         fn f() -> u64 { rand::thread_rng().gen() }\n",
    );
    assert_suppressed(&r, "determinism/ambient-rng", "seeding the seed generator");
}

// ---------------------------------------------------------------------------
// determinism/host-env
// ---------------------------------------------------------------------------

#[test]
fn host_env_positive() {
    let r = lint_one(
        "crates/ooc-simnet/src/pool.rs",
        "ooc-simnet",
        "fn jobs() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n",
    );
    assert!(active_rules(&r).contains(&"determinism/host-env"), "{r:?}");
}

#[test]
fn host_env_covers_listed_modules_in_tooling_crates() {
    // `parallel.rs` is in a measurement crate, but DETERMINISTIC_MODULES
    // pulls it into the contract: host probes there need an allow.
    let src = "fn jobs() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
    let r = lint_one("crates/ooc-campaign/src/parallel.rs", "ooc-campaign", src);
    assert!(active_rules(&r).contains(&"determinism/host-env"));
    // The same probe elsewhere in the campaign crate is none of this
    // rule's business.
    let r = lint_one("crates/ooc-campaign/src/other.rs", "ooc-campaign", src);
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn reliable_module_is_pinned_into_the_determinism_contract() {
    // `reliable.rs` is covered twice: via the `ooc-simnet` crate listing
    // and via its DETERMINISTIC_MODULES pin. The pin is what keeps the
    // retransmission backoff/jitter derivation chain in contract even if
    // the crate list ever changes, so assert both that the path is
    // listed and that a determinism rule actually fires there.
    assert!(
        ooc_lint::source::DETERMINISTIC_MODULES.contains(&"crates/ooc-simnet/src/reliable.rs"),
        "the reliable-delivery layer must stay pinned"
    );
    let r = lint_one(
        "crates/ooc-simnet/src/reliable.rs",
        "ooc-simnet",
        "fn jobs() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n",
    );
    assert!(active_rules(&r).contains(&"determinism/host-env"));
}

#[test]
fn host_env_negative_own_identifier() {
    // A workspace-local function of the same name is not a host probe.
    let r = lint_one(
        "crates/ooc-simnet/src/pool.rs",
        "ooc-simnet",
        "fn available_parallelism() -> usize { 1 }\nfn f() -> usize { available_parallelism() }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn host_env_suppressed() {
    let r = lint_one(
        "crates/ooc-campaign/src/parallel.rs",
        "ooc-campaign",
        "// ooc-lint::allow(determinism/host-env, \"worker-count default only\")\n\
         fn jobs() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n",
    );
    assert_suppressed(&r, "determinism/host-env", "worker-count default only");
}

// ---------------------------------------------------------------------------
// determinism/unordered-iter
// ---------------------------------------------------------------------------

#[test]
fn unordered_iter_positive() {
    let r = lint_one(
        "crates/ooc-simnet/src/s.rs",
        "ooc-simnet",
        "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
    );
    let rules = active_rules(&r);
    assert_eq!(rules, vec!["determinism/unordered-iter"; 2], "{rules:?}");
}

#[test]
fn unordered_iter_negative_btree_and_tooling_crates() {
    let r = lint_one(
        "crates/ooc-simnet/src/s.rs",
        "ooc-simnet",
        "use std::collections::BTreeMap;\nstruct S { m: BTreeMap<u32, u32> }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // Measurement tooling may hash freely: iteration order never feeds a
    // schedule there.
    let r = lint_one(
        "crates/ooc-campaign/src/s.rs",
        "ooc-campaign",
        "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn unordered_iter_suppressed() {
    let r = lint_one(
        "crates/ooc-core/src/s.rs",
        "ooc-core",
        "// ooc-lint::allow(determinism/unordered-iter, \"membership-only, never iterated\")\n\
         fn f(m: &std::collections::HashMap<u32, u32>) -> bool { m.contains_key(&1) }\n",
    );
    assert_suppressed(
        &r,
        "determinism/unordered-iter",
        "membership-only, never iterated",
    );
}

// ---------------------------------------------------------------------------
// protocol/panic
// ---------------------------------------------------------------------------

/// A fixture that looks like a protocol state machine (it impls an object
/// trait) with a panic in a handler.
const PANICKY_OBJECT: &str = "\
impl VacObject for Flaky {
    type Value = u64;
    type Msg = u64;
    fn begin(&mut self, input: u64, net: &mut dyn ObjectNet<u64>) -> Option<VacOutcome<u64>> {
        self.state.take().unwrap();
        None
    }
}
";

#[test]
fn protocol_panic_positive() {
    let r = lint_one("crates/ooc-core/src/p.rs", "ooc-core", PANICKY_OBJECT);
    assert_eq!(active_rules(&r), vec!["protocol/panic"]);
}

#[test]
fn protocol_panic_negative_outside_state_machines() {
    // The same unwrap in a file with no protocol handlers is none of this
    // rule's business (clippy territory, not fault-budget territory).
    let r = lint_one(
        "crates/ooc-core/src/util.rs",
        "ooc-core",
        "fn parse(s: &str) -> u64 { s.parse().unwrap() }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // And `unwrap_or` inside a state machine is a distinct identifier.
    let r = lint_one(
        "crates/ooc-core/src/p.rs",
        "ooc-core",
        "impl AcObject for Safe {\n    fn on_message(&mut self) { self.v.unwrap_or(0); }\n}\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn protocol_panic_suppressed() {
    let src = PANICKY_OBJECT.replace(
        "        self.state.take().unwrap();",
        "        // ooc-lint::allow(protocol/panic, \"state is Some between begin and outcome\")\n\
         \x20       self.state.take().unwrap();",
    );
    let r = lint_one("crates/ooc-core/src/p.rs", "ooc-core", &src);
    assert_suppressed(&r, "protocol/panic", "state is Some between begin and outcome");
}

// ---------------------------------------------------------------------------
// hygiene/checker-coverage
// ---------------------------------------------------------------------------

const PUBLIC_OBJECT: &str = "\
pub struct Orphan;
impl AcObject for Orphan {
    type Value = u64;
    type Msg = u64;
}
";

#[test]
fn checker_coverage_positive() {
    let r = lint(&Workspace::from_files(vec![SourceFile::from_source(
        "crates/ooc-core/src/o.rs",
        "ooc-core",
        PUBLIC_OBJECT,
    )]));
    assert_eq!(active_rules(&r), vec!["hygiene/checker-coverage"]);
}

#[test]
fn checker_coverage_negative_when_checker_tested() {
    // Covered: a tests/ file names the type *and* speaks the checker
    // vocabulary.
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source("crates/ooc-core/src/o.rs", "ooc-core", PUBLIC_OBJECT),
        SourceFile::from_source(
            "crates/ooc-core/tests/o.rs",
            "ooc-core",
            "#[test]\nfn laws() { let o = Orphan; assert!(round.check_ac().is_empty()); }\n",
        ),
    ]));
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // Not covered: the test names the type but never invokes any checker.
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source("crates/ooc-core/src/o.rs", "ooc-core", PUBLIC_OBJECT),
        SourceFile::from_source(
            "crates/ooc-core/tests/o.rs",
            "ooc-core",
            "#[test]\nfn smoke() { let _ = Orphan; }\n",
        ),
    ]));
    assert_eq!(active_rules(&r), vec!["hygiene/checker-coverage"]);
    // Private objects are the template's internal business.
    let r = lint(&Workspace::from_files(vec![SourceFile::from_source(
        "crates/ooc-core/src/o.rs",
        "ooc-core",
        &PUBLIC_OBJECT.replace("pub struct", "struct"),
    )]));
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn checker_coverage_accepts_the_durability_checker_vocabulary() {
    // A tests/ file that exercises the type through the crash-recovery
    // `DurabilityChecker` speaks the checker vocabulary just as the §2
    // round checkers do.
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source("crates/ooc-core/src/o.rs", "ooc-core", PUBLIC_OBJECT),
        SourceFile::from_source(
            "crates/ooc-core/tests/o.rs",
            "ooc-core",
            "#[test]\nfn durable() { let o = Orphan; \
             assert!(DurabilityChecker::check(&events).is_empty()); }\n",
        ),
    ]));
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn checker_coverage_suppressed() {
    let src = PUBLIC_OBJECT.replace(
        "impl AcObject for Orphan {",
        "// ooc-lint::allow(hygiene/checker-coverage, \"exercised indirectly via TwoAcVac\")\n\
         impl AcObject for Orphan {",
    );
    let r = lint(&Workspace::from_files(vec![SourceFile::from_source(
        "crates/ooc-core/src/o.rs",
        "ooc-core",
        &src,
    )]));
    assert_suppressed(
        &r,
        "hygiene/checker-coverage",
        "exercised indirectly via TwoAcVac",
    );
}

// ---------------------------------------------------------------------------
// determinism/transitive-reach
// ---------------------------------------------------------------------------

/// A measurement-crate helper that touches the wall clock; calling it from
/// deterministic code is a transitive-reach finding even though the direct
/// touch lives outside the determinism contract.
const CLOCKY_HELPER: (&str, &str, &str) = (
    "crates/ooc-campaign/src/measure.rs",
    "ooc-campaign",
    "// ooc-lint::allow(determinism/wall-clock, \"duration reporting only\")\n\
     pub fn stamp() -> std::time::Instant { std::time::Instant::now() }\n",
);

#[test]
fn transitive_reach_positive_with_witness_chain() {
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source(
            "crates/ooc-simnet/src/sweep.rs",
            "ooc-simnet",
            "use ooc_campaign::stamp;\nfn run() { let _ = stamp(); }\n",
        ),
        SourceFile::from_source(CLOCKY_HELPER.0, CLOCKY_HELPER.1, CLOCKY_HELPER.2),
    ]));
    let active: Vec<_> = r.active().collect();
    assert_eq!(active_rules(&r), vec!["determinism/transitive-reach"]);
    let f = active[0];
    // The finding lands at the boundary call site in the deterministic
    // file, not at the Instant::now touch.
    assert_eq!(f.path, "crates/ooc-simnet/src/sweep.rs");
    assert_eq!(f.line, 2);
    // Minimal witness: entry (the boundary caller) then the sink — no
    // detour through other nodes.
    let chain: Vec<&str> = f.witness.iter().map(|s| s.func.as_str()).collect();
    assert_eq!(chain, vec!["run", "stamp"]);
    assert_eq!(f.witness[1].file, "crates/ooc-campaign/src/measure.rs");
    // And the chain survives into the machine-readable report.
    assert!(r.render_json().contains("\"witness\": ["), "{}", r.render_json());
}

#[test]
fn transitive_reach_negative_when_unreached() {
    // The helper exists but deterministic code never calls it.
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source(
            "crates/ooc-simnet/src/sweep.rs",
            "ooc-simnet",
            "fn run() -> u64 { 7 }\n",
        ),
        SourceFile::from_source(CLOCKY_HELPER.0, CLOCKY_HELPER.1, CLOCKY_HELPER.2),
    ]));
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn transitive_reach_suppressed_at_the_boundary() {
    let r = lint(&Workspace::from_files(vec![
        SourceFile::from_source(
            "crates/ooc-simnet/src/sweep.rs",
            "ooc-simnet",
            "use ooc_campaign::stamp;\n\
             // ooc-lint::allow(determinism/transitive-reach, \"timing never feeds a schedule\")\n\
             fn run() { let _ = stamp(); }\n",
        ),
        SourceFile::from_source(CLOCKY_HELPER.0, CLOCKY_HELPER.1, CLOCKY_HELPER.2),
    ]));
    assert_suppressed(
        &r,
        "determinism/transitive-reach",
        "timing never feeds a schedule",
    );
}

// ---------------------------------------------------------------------------
// determinism/rng-provenance
// ---------------------------------------------------------------------------

#[test]
fn rng_provenance_positive_fresh_seed() {
    let r = lint_one(
        "crates/ooc-simnet/src/g.rs",
        "ooc-simnet",
        "fn fresh() -> SplitMix64 { SplitMix64::new(0xDEAD_BEEF) }\n",
    );
    assert_eq!(active_rules(&r), vec!["determinism/rng-provenance"]);
}

#[test]
fn rng_provenance_negative_seed_flows_through_locals() {
    // Taint propagates through let bindings, so a seed reshaped before
    // construction still counts as seed-derived.
    let r = lint_one(
        "crates/ooc-simnet/src/g.rs",
        "ooc-simnet",
        "fn derived(seed: u64, stream: u64) -> SplitMix64 {\n\
         \x20   let mixed = seed ^ stream.wrapping_mul(0x9E37);\n\
         \x20   let salted = mixed.rotate_left(17);\n\
         \x20   SplitMix64::new(salted)\n\
         }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn rng_provenance_exempts_tests_and_nondeterministic_crates() {
    // A constant seed in a #[cfg(test)] item *is* the seed.
    let r = lint_one(
        "crates/ooc-simnet/src/g.rs",
        "ooc-simnet",
        "#[cfg(test)]\nmod tests {\n    fn fixed() -> SplitMix64 { SplitMix64::new(42) }\n}\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // Measurement tooling may pick seeds however it likes.
    let r = lint_one(
        "crates/ooc-campaign/src/pick.rs",
        "ooc-campaign",
        "fn fresh() -> SplitMix64 { SplitMix64::new(1) }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn rng_provenance_suppressed() {
    let r = lint_one(
        "crates/ooc-simnet/src/g.rs",
        "ooc-simnet",
        "// ooc-lint::allow(determinism/rng-provenance, \"golden-stream vector, compared not replayed\")\n\
         fn golden() -> SplitMix64 { SplitMix64::new(7) }\n",
    );
    assert_suppressed(
        &r,
        "determinism/rng-provenance",
        "golden-stream vector, compared not replayed",
    );
}

// ---------------------------------------------------------------------------
// protocol/effect-exhaustiveness
// ---------------------------------------------------------------------------

#[test]
fn effect_exhaustiveness_positive_unhandled_field() {
    let r = lint_one(
        "crates/ooc-simnet/src/fx.rs",
        "ooc-simnet",
        "pub struct Effects { sends: Vec<u64>, timers: Vec<u64> }\n\
         fn apply_effects(fx: &mut Effects) { for s in &fx.sends { let _ = s; } }\n",
    );
    let active: Vec<_> = r.active().collect();
    assert_eq!(active_rules(&r), vec!["protocol/effect-exhaustiveness"]);
    assert!(active[0].message.contains("timers"), "{}", active[0].message);
}

#[test]
fn effect_exhaustiveness_positive_unhandled_constructed_variant() {
    let r = lint_one(
        "crates/ooc-simnet/src/fx.rs",
        "ooc-simnet",
        "pub enum StorageOp { Persist, Forget }\n\
         pub struct Effects { storage: Vec<StorageOp> }\n\
         fn emit(fx: &mut Effects) { fx.storage.push(StorageOp::Forget); }\n\
         fn apply_effects(fx: &mut Effects) {\n\
         \x20   for op in &fx.storage { if let StorageOp::Persist = op {} }\n\
         }\n",
    );
    let active: Vec<_> = r.active().collect();
    assert_eq!(active_rules(&r), vec!["protocol/effect-exhaustiveness"]);
    assert!(
        active[0].message.contains("StorageOp::Forget"),
        "{}",
        active[0].message
    );
}

#[test]
fn effect_exhaustiveness_negative_all_handled() {
    let r = lint_one(
        "crates/ooc-simnet/src/fx.rs",
        "ooc-simnet",
        "pub enum StorageOp { Persist, Forget }\n\
         pub struct Effects { sends: Vec<u64>, storage: Vec<StorageOp> }\n\
         fn emit(fx: &mut Effects) { fx.storage.push(StorageOp::Forget); }\n\
         fn apply_effects(fx: &mut Effects) {\n\
         \x20   for s in &fx.sends { let _ = s; }\n\
         \x20   for op in &fx.storage {\n\
         \x20       match op { StorageOp::Persist => {} StorageOp::Forget => {} }\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // An unconstructed variant needs no arm: Persist-only emission with a
    // Persist-only applier is exhaustive for the program that exists.
    let r = lint_one(
        "crates/ooc-simnet/src/fx.rs",
        "ooc-simnet",
        "pub enum StorageOp { Persist, Forget }\n\
         pub struct Effects { storage: Vec<StorageOp> }\n\
         fn emit(fx: &mut Effects) { fx.storage.push(StorageOp::Persist); }\n\
         fn apply_effects(fx: &mut Effects) {\n\
         \x20   for op in &fx.storage { if let StorageOp::Persist = op {} }\n\
         }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn effect_exhaustiveness_suppressed() {
    let r = lint_one(
        "crates/ooc-simnet/src/fx.rs",
        "ooc-simnet",
        "pub struct Effects {\n\
         \x20   sends: Vec<u64>,\n\
         \x20   // ooc-lint::allow(protocol/effect-exhaustiveness, \"drained by the typed engine in the next PR\")\n\
         \x20   timers: Vec<u64>,\n\
         }\n\
         fn apply_effects(fx: &mut Effects) { for s in &fx.sends { let _ = s; } }\n",
    );
    assert_suppressed(
        &r,
        "protocol/effect-exhaustiveness",
        "drained by the typed engine in the next PR",
    );
}

// ---------------------------------------------------------------------------
// protocol/quorum-arithmetic
// ---------------------------------------------------------------------------

#[test]
fn quorum_arith_positive_threshold_exceeds_bound() {
    // A Queen-style threshold (needs 4t < n) under a Phase-King bound
    // (3t < n): already at n=4, t=1 the 3 live processors cannot reach
    // 2*cnt > n + 2t = 6.
    let r = lint_one(
        "crates/ooc-phase-king/src/q.rs",
        "ooc-phase-king",
        "impl Q {\n\
         \x20   fn new(n: u64, t: u64) -> Self { assert!(3 * t < n); Q { n, t } }\n\
         \x20   fn decide(&self, cnt: u64) -> bool { 2 * cnt > self.n + 2 * self.t }\n\
         }\n",
    );
    let active: Vec<_> = r.active().collect();
    assert_eq!(active_rules(&r), vec!["protocol/quorum-arithmetic"]);
    assert_eq!(active[0].line, 3);
    assert!(active[0].message.contains("n=4, t=1"), "{}", active[0].message);
}

#[test]
fn quorum_arith_positive_missing_resilience_declaration() {
    let r = lint_one(
        "crates/ooc-ben-or/src/q.rs",
        "ooc-ben-or",
        "fn quorate(count: usize, n: usize, t: usize) -> bool { count >= n - t }\n",
    );
    let active: Vec<_> = r.active().collect();
    assert_eq!(active_rules(&r), vec!["protocol/quorum-arithmetic"]);
    assert!(
        active[0].message.contains("no resilience bound"),
        "{}",
        active[0].message
    );
}

#[test]
fn quorum_arith_negative_thresholds_match_their_bounds() {
    // n - t survivors meet an n - t threshold under 3t < n.
    let r = lint_one(
        "crates/ooc-phase-king/src/q.rs",
        "ooc-phase-king",
        "impl Q {\n\
         \x20   fn new(n: u64, t: u64) -> Self { assert!(3 * t < n); Q { n, t } }\n\
         \x20   fn strong(&self, cnt: u64) -> bool { cnt >= self.n - self.t }\n\
         \x20   fn king(&self, d: &[u64], k: u64) -> bool { d[k as usize] > self.t }\n\
         }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
    // A majority quorum under a comment-declared minority bound; index
    // checks like `i < n` are not quorum-shaped and stay out of scope.
    let r = lint_one(
        "crates/ooc-raft/src/q.rs",
        "ooc-raft",
        "// ooc-lint::resilience(2 * t < n)\n\
         fn elected(votes: usize, n: usize) -> bool { votes * 2 > n }\n\
         fn in_range(i: usize, n: usize) -> bool { i < n }\n",
    );
    assert_eq!(active_rules(&r), Vec::<&str>::new());
}

#[test]
fn quorum_arith_suppressed() {
    let r = lint_one(
        "crates/ooc-phase-king/src/q.rs",
        "ooc-phase-king",
        "impl Q {\n\
         \x20   fn new(n: u64, t: u64) -> Self { assert!(3 * t < n); Q { n, t } }\n\
         \x20   // ooc-lint::allow(protocol/quorum-arithmetic, \"deliberately sabotaged threshold for the adversary zoo\")\n\
         \x20   fn decide(&self, cnt: u64) -> bool { 2 * cnt > self.n + 2 * self.t }\n\
         }\n",
    );
    assert_suppressed(
        &r,
        "protocol/quorum-arithmetic",
        "deliberately sabotaged threshold for the adversary zoo",
    );
}

// ---------------------------------------------------------------------------
// the rule catalog is the registry, not a hand-maintained copy
// ---------------------------------------------------------------------------

#[test]
fn rules_catalog_matches_registry() {
    let infos = ooc_lint::rules::catalog();
    let mut expected: Vec<&str> = ooc_lint::rules::all().iter().map(|r| r.id()).collect();
    expected.push(ooc_lint::rules::SUPPRESSION_RULE);
    let ids: Vec<&str> = infos.iter().map(|i| i.id).collect();
    assert_eq!(ids, expected, "catalog rows must mirror the registry, in order");
    for info in &infos {
        assert!(!info.doc.is_empty(), "{} has no doc line", info.id);
        assert!(!info.scope.is_empty(), "{} has no scope", info.id);
        assert_eq!(info.severity, "deny");
    }
    // The machine-readable form carries every id.
    let json = ooc_lint::rules::catalog_json();
    for id in ids {
        assert!(json.contains(id), "catalog json misses {id}:\n{json}");
    }
}

// ---------------------------------------------------------------------------
// hygiene/suppression — the engine audits its own escape hatch
// ---------------------------------------------------------------------------

#[test]
fn reasonless_allow_is_a_finding() {
    let r = lint_one(
        "crates/ooc-core/src/s.rs",
        "ooc-core",
        "// ooc-lint::allow(determinism/wall-clock)\nfn f() {}\n",
    );
    assert_eq!(active_rules(&r), vec!["hygiene/suppression"]);
}

// ---------------------------------------------------------------------------
// the point of the whole exercise
// ---------------------------------------------------------------------------

#[test]
fn lint_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let report = ooc_lint::lint_workspace(&root).expect("workspace scans");
    assert!(
        report.files_scanned > 100,
        "sanity: the scan saw the real workspace, not an empty dir ({} files)",
        report.files_scanned
    );
    let active: Vec<String> = report
        .active()
        .map(|f| format!("{}:{} [{}] {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        active.is_empty(),
        "the workspace must lint clean; new findings need a fix or a reasoned \
         allow:\n{}",
        active.join("\n")
    );
    // Zero unexplained suppressions: every allow in the tree carries a
    // reason and suppresses a live finding (the engine turns violations of
    // either property into hygiene/suppression findings, checked above).
    for f in &report.findings {
        if let Some(reason) = &f.suppressed {
            assert!(
                !reason.trim().is_empty(),
                "{}:{} has an empty suppression reason",
                f.path,
                f.line
            );
        }
    }
}
