//! The T1–T16 experiment implementations.
//!
//! Each function runs one experiment sweep, prints the table, and returns
//! the raw rows so tests can assert on the *shape* of the results (who
//! wins, where crossovers fall) without parsing stdout.

use crate::stats::Summary;
use ooc_ben_or::harness::{
    balanced_inputs, run_composed, run_decomposed, run_decomposed_with, run_monolithic,
    split_adversary, BenOrConfig,
};
use ooc_core::Confidence;
use ooc_phase_king::{run_phase_king, run_phase_queen, Attack, PhaseKingConfig};
use ooc_raft::decentralized::{coin_flip_twin, decentralized_raft};
use ooc_raft::harness::{run_raft, RaftClusterConfig};
use ooc_raft::RaftConfig;
use ooc_sharedmem::{RegisterAc, SharedConsensus};
use ooc_simnet::{FaultPlan, NetworkConfig, RunLimit, Sim, SimTime};
use std::sync::Arc;
// ooc-lint::allow(determinism/wall-clock, "throughput benchmarks time real execution by design")
use std::time::Instant;

/// Number of seeds per configuration (kept moderate so `tables all`
/// finishes in minutes even in debug builds).
pub const SEEDS: u64 = 40;

fn hr(title: &str) {
    println!("\n==== {title} ====");
}

/// T1 — template correctness matrix (Lemma 1): safety-violation counts
/// across all algorithms × fault settings × seeds. Must be all zeros.
///
/// Returns `(label, runs, violations)` rows.
pub fn t1() -> Vec<(String, u64, u64)> {
    hr("T1  template correctness matrix (violations must be 0)");
    let mut rows: Vec<(String, u64, u64)> = Vec::new();

    for (n, t) in [(5usize, 2usize), (7, 3)] {
        let mut v = 0u64;
        let cfg = BenOrConfig::new(n, t);
        for seed in 0..SEEDS {
            v += run_decomposed(&cfg, &balanced_inputs(n), seed).violations.len() as u64;
        }
        rows.push((format!("ben-or n={n} t={t} fault-free"), SEEDS, v));

        let mut v = 0u64;
        let cfg = BenOrConfig::new(n, t)
            .with_faults(FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(25)));
        for seed in 0..SEEDS {
            v += run_decomposed(&cfg, &balanced_inputs(n), seed).violations.len() as u64;
        }
        rows.push((format!("ben-or n={n} t={t} +{t} crashes"), SEEDS, v));
    }

    for attack in [Attack::Equivocate, Attack::Random] {
        let mut v = 0u64;
        let cfg = PhaseKingConfig::new(7, 2).with_attack(attack);
        for seed in 0..SEEDS {
            v += run_phase_king(&cfg, &[0, 1, 0, 1, 0], seed).violations.len() as u64;
        }
        rows.push((format!("phase-king n=7 t=2 {attack:?}"), SEEDS, v));

        let mut v = 0u64;
        for seed in 0..SEEDS {
            v += run_phase_queen(9, 2, attack, &[0, 1, 0, 1, 0, 1, 0], seed)
                .violations
                .len() as u64;
        }
        rows.push((format!("phase-queen n=9 t=2 {attack:?}"), SEEDS, v));
    }

    {
        let mut v = 0u64;
        let cfg = RaftClusterConfig::new(5);
        for seed in 0..SEEDS {
            v += run_raft(&cfg, &[1, 2, 3, 4, 5], seed).violations.len() as u64;
        }
        rows.push(("raft n=5 fault-free".into(), SEEDS, v));

        let mut v = 0u64;
        let cfg = RaftClusterConfig::new(5)
            .with_faults(FaultPlan::new().crash_tail(5, 2, SimTime::from_ticks(300)));
        for seed in 0..SEEDS {
            v += run_raft(&cfg, &[1, 2, 3, 4, 5], seed).violations.len() as u64;
        }
        rows.push(("raft n=5 +2 crashes".into(), SEEDS, v));
    }

    println!("{:<34} {:>6} {:>12}", "configuration", "runs", "violations");
    for (label, runs, v) in &rows {
        println!("{label:<34} {runs:>6} {v:>12}");
    }
    rows
}

/// T2 — Phase-King sweep (Lemmas 2–3): phases/rounds/messages to decide
/// vs `(n, t)` and attack; plus the classical baseline's fixed cost.
///
/// Returns `(n, t, attack, worst_phases, mean_messages)` rows.
pub fn t2() -> Vec<(usize, usize, String, u64, u64)> {
    hr("T2  Phase-King: cost vs (n, t) and attack");
    let mut rows = Vec::new();
    println!(
        "{:>4} {:>3} {:<14} {:>12} {:>14} {:>12} {:>14}",
        "n", "t", "attack", "decide phase", "1st commit ≤", "bound t+2", "mean messages"
    );
    for (n, t) in [(4usize, 1usize), (7, 2), (10, 3), (13, 4)] {
        for attack in [Attack::Silent, Attack::Equivocate, Attack::Random] {
            let cfg = PhaseKingConfig::new(n, t).with_attack(attack);
            let inputs: Vec<u64> = (0..n - t).map(|i| (i % 2) as u64).collect();
            let mut worst = 0u64;
            let mut worst_commit = 0u64;
            let mut msgs = Vec::new();
            for seed in 0..SEEDS {
                let run = run_phase_king(&cfg, &inputs, seed);
                assert!(run.violations.is_empty(), "t2 violation: {:?}", run.violations);
                worst = worst.max(run.phases_to_decide().unwrap_or(0));
                worst_commit = worst_commit.max(run.first_commit_phase().unwrap_or(0));
                msgs.push(run.messages);
            }
            let mean_msgs = Summary::of(&msgs).mean as u64;
            println!(
                "{:>4} {:>3} {:<14} {:>12} {:>14} {:>12} {:>14}",
                n,
                t,
                format!("{attack:?}"),
                worst,
                worst_commit,
                t + 2,
                mean_msgs
            );
            rows.push((n, t, format!("{attack:?}"), worst, mean_msgs));
        }
    }
    rows
}

/// T3 — Ben-Or (Lemmas 4–5): empirical rounds to decide vs `n` under the
/// random scheduler and the split-vote adversary.
///
/// Returns `(n, scheduler, Summary-of-rounds)` rows.
pub fn t3() -> Vec<(usize, &'static str, Summary)> {
    hr("T3  Ben-Or: rounds to decide vs n and scheduler");
    let mut rows = Vec::new();
    println!("{:>4} {:<12} rounds to decide", "n", "scheduler");
    for n in [3usize, 5, 9, 15, 21] {
        let t = (n - 1) / 2;
        let cfg = BenOrConfig::new(n, t);
        for sched in ["random", "split-vote"] {
            let mut rounds = Vec::new();
            for seed in 0..SEEDS {
                let run = if sched == "random" {
                    run_decomposed(&cfg, &balanced_inputs(n), seed)
                } else {
                    run_decomposed_with(
                        &cfg,
                        &balanced_inputs(n),
                        seed,
                        Some(split_adversary(n, (1, 4), (25, 50))),
                    )
                };
                assert!(run.violations.is_empty(), "t3 violation: {:?}", run.violations);
                rounds.push(run.rounds_to_decide().unwrap_or(0));
            }
            let s = Summary::of(&rounds);
            println!("{n:>4} {sched:<12} {s}");
            rows.push((n, sched, s));
        }
    }
    rows
}

/// T4 — the three processor types (§5): per-round VAC outcome
/// distribution in Ben-Or.
///
/// Returns `(n, vacillate, adopt, commit)` rows (counts over all
/// processor-rounds).
pub fn t4() -> Vec<(usize, u64, u64, u64)> {
    hr("T4  Ben-Or: VAC outcome distribution (the paper's 3 processor types)");
    let mut rows = Vec::new();
    println!(
        "{:>4} {:>10} {:>10} {:>10} {:>22}",
        "n", "vacillate", "adopt", "commit", "adopt share of non-C"
    );
    for n in [5usize, 9, 15] {
        let t = (n - 1) / 2;
        let cfg = BenOrConfig::new(n, t);
        let mut counts = [0u64; 3];
        for seed in 0..SEEDS * 2 {
            let run = run_decomposed(&cfg, &balanced_inputs(n), seed);
            for (i, c) in run.confidence_counts.iter().enumerate() {
                counts[i] += c;
            }
        }
        let nc = counts[Confidence::Vacillate as usize] + counts[Confidence::Adopt as usize];
        let share = if nc == 0 {
            0.0
        } else {
            counts[Confidence::Adopt as usize] as f64 / nc as f64
        };
        println!(
            "{:>4} {:>10} {:>10} {:>10} {:>21.1}%",
            n,
            counts[0],
            counts[1],
            counts[2],
            share * 100.0
        );
        rows.push((n, counts[0], counts[1], counts[2]));
    }
    rows
}

/// T5 — AC-insufficiency (§5): frequency of adopt-states whose value
/// differs from the final decision (the states an AC-framework commit
/// would get wrong), vs commit-states (which must never diverge).
///
/// Returns `(n, runs, runs_with_divergence, total_divergences)`.
pub fn t5() -> Vec<(usize, u64, u64, u64)> {
    hr("T5  §5 AC-insufficiency: adopt-value vs final decision");
    let mut rows = Vec::new();
    println!(
        "{:>4} {:>6} {:>22} {:>18}",
        "n", "runs", "runs w/ divergence", "total divergences"
    );
    for n in [5usize, 9, 15] {
        let t = (n - 1) / 2;
        let cfg = BenOrConfig::new(n, t);
        let mut with = 0u64;
        let mut total = 0u64;
        let runs = SEEDS * 4;
        for seed in 0..runs {
            let run = run_decomposed_with(
                &cfg,
                &balanced_inputs(n),
                seed,
                Some(split_adversary(n, (1, 4), (20, 40))),
            );
            total += run.adopt_divergences;
            if run.adopt_divergences > 0 {
                with += 1;
            }
            // Commit divergence would be a soundness bug: checked by the
            // violations list being empty.
            assert!(run.violations.is_empty(), "t5 violation: {:?}", run.violations);
        }
        println!("{n:>4} {runs:>6} {with:>22} {total:>18}");
        rows.push((n, runs, with, total));
    }
    rows
}

/// T6 — Raft timing property (Lemmas 6–7): election latency and election
/// counts vs the election-timeout / broadcast-delay ratio.
///
/// Returns `(timeout_lo, timeout_hi, delay, mean_elections,
/// consensus_latency_summary)` rows.
pub fn t6() -> Vec<(u64, u64, u64, f64, Summary)> {
    hr("T6  Raft: the timing property (timeout vs broadcast delay)");
    let mut rows = Vec::new();
    println!(
        "{:>14} {:>7} {:>10} {:>16} {:>9} consensus latency (ticks)",
        "timeout", "delay", "ratio", "mean elections", "decided"
    );
    let delay = 25u64;
    for (lo, hi) in [(30u64, 60u64), (75, 150), (150, 300), (300, 600), (900, 1800)] {
        let cfg = RaftClusterConfig::new(5)
            .with_network(NetworkConfig::reliable(delay))
            .with_raft(RaftConfig {
                election_timeout: (lo, hi),
                heartbeat_interval: (lo / 3).max(1),
                max_batch: 16,
            });
        let mut elections = 0usize;
        let mut latency = Vec::new();
        let mut elect_latency = Vec::new();
        let mut decided = 0u64;
        for seed in 0..SEEDS {
            let run = run_raft(&cfg, &[1, 2, 3, 4, 5], seed);
            assert!(run.violations.is_empty(), "t6 violation: {:?}", run.violations);
            elections += run.elections;
            if let Some(t) = run.first_leader_at {
                elect_latency.push(t.ticks());
            }
            if run.outcome.all_decided() {
                decided += 1;
                latency.push(run.consensus_latency().map(|t| t.ticks()).unwrap_or(0));
            }
        }
        let mean_elections = elections as f64 / SEEDS as f64;
        let s = Summary::of(&latency);
        let es = Summary::of(&elect_latency);
        println!(
            "{:>14} {:>7} {:>10.1} {:>16.1} {:>9} {:>14.0} {}",
            format!("{lo}-{hi}"),
            delay,
            (lo + hi) as f64 / 2.0 / delay as f64,
            mean_elections,
            format!("{decided}/{SEEDS}"),
            es.mean,
            s
        );
        rows.push((lo, hi, delay, mean_elections, s));
    }
    rows
}

/// T7 — the price of composition: native Ben-Or VAC vs the §5 two-AC
/// composition vs the monolithic baseline, and the two reconciliators
/// (coin vs timer-nudge).
///
/// Returns `(variant, Summary-of-messages, Summary-of-ticks)` rows.
pub fn t7() -> Vec<(&'static str, Summary, Summary)> {
    hr("T7  composition & decomposition overhead (n=7, t=3, balanced inputs)");
    let n = 7usize;
    let t = 3usize;
    let cfg = BenOrConfig::new(n, t);
    let inputs = balanced_inputs(n);
    let mut rows = Vec::new();

    let mut collect = |label: &'static str, f: &mut dyn FnMut(u64) -> (u64, u64)| {
        let mut msgs = Vec::new();
        let mut ticks = Vec::new();
        for seed in 0..SEEDS {
            let (m, d) = f(seed);
            msgs.push(m);
            ticks.push(d);
        }
        rows.push((label, Summary::of(&msgs), Summary::of(&ticks)));
    };

    collect("monolithic ben-or", &mut |seed| {
        let (out, _) = run_monolithic(&cfg, &inputs, seed);
        (
            out.stats.messages_sent,
            out.last_decision_time().map(|t| t.ticks()).unwrap_or(0),
        )
    });
    collect("template + native VAC", &mut |seed| {
        let run = run_decomposed(&cfg, &inputs, seed);
        (
            run.outcome.stats.messages_sent,
            run.outcome.last_decision_time().map(|t| t.ticks()).unwrap_or(0),
        )
    });
    collect("template + 2×AC VAC (§5)", &mut |seed| {
        let run = run_composed(&cfg, &inputs, seed);
        (
            run.outcome.stats.messages_sent,
            run.outcome.last_decision_time().map(|t| t.ticks()).unwrap_or(0),
        )
    });
    collect("coin-flip reconciliator", &mut |seed| {
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| coin_flip_twin(v, n, t)))
            .build();
        let out = sim.run(RunLimit::default());
        (
            out.stats.messages_sent,
            out.last_decision_time().map(|t| t.ticks()).unwrap_or(0),
        )
    });
    collect("timer-nudge reconciliator", &mut |seed| {
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| decentralized_raft(v, n, t)))
            .build();
        let out = sim.run(RunLimit::default());
        (
            out.stats.messages_sent,
            out.last_decision_time().map(|t| t.ticks()).unwrap_or(0),
        )
    });

    println!("{:<26} {:>14} {:>16}", "variant", "mean messages", "mean ticks");
    for (label, msgs, ticks) in &rows {
        println!("{:<26} {:>14.0} {:>16.0}", label, msgs.mean, ticks.mean);
    }
    rows
}

/// T8 — shared-memory substrate: register-AC operation cost and rounds
/// to consensus vs thread count.
///
/// Returns `(threads, ac_ops_per_sec, consensus_per_sec)` rows.
pub fn t8() -> Vec<(usize, f64, f64)> {
    hr("T8  shared memory: throughput vs threads");
    let mut rows = Vec::new();
    println!(
        "{:>8} {:>16} {:>20}",
        "threads", "AC invocations/s", "consensus runs/s"
    );
    for threads in [1usize, 2, 4, 8] {
        // Adopt-commit throughput: each iteration is a fresh object, all
        // threads propose once.
        let iters = 400u64;
        // ooc-lint::allow(determinism/wall-clock, "adopt-commit throughput measurement")
        let start = Instant::now();
        for i in 0..iters {
            let ac = Arc::new(RegisterAc::new(threads));
            std::thread::scope(|s| {
                for th in 0..threads {
                    let ac = Arc::clone(&ac);
                    s.spawn(move || ac.propose(th, (i + th as u64) % 2));
                }
            });
        }
        let ac_rate = (iters * threads as u64) as f64 / start.elapsed().as_secs_f64();

        let runs = 150u64;
        // ooc-lint::allow(determinism/wall-clock, "consensus throughput measurement")
        let start = Instant::now();
        for seed in 0..runs {
            let c = Arc::new(SharedConsensus::new(threads));
            std::thread::scope(|s| {
                for th in 0..threads {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.propose(th, th as u64 % 2, seed * 31 + th as u64));
                }
            });
        }
        let cons_rate = runs as f64 / start.elapsed().as_secs_f64();
        println!("{threads:>8} {ac_rate:>16.0} {cons_rate:>20.0}");
        rows.push((threads, ac_rate, cons_rate));
    }
    rows
}


/// T9 — Phase-King vs Phase-Queen (same Berman-Garay-Perry paper): the
/// rounds-vs-resilience trade the framework expresses as "swap the AC".
///
/// Returns `(n, t, algorithm, mean_rounds, mean_messages)` rows.
pub fn t9() -> Vec<(usize, usize, &'static str, f64, u64)> {
    hr("T9  Phase-King vs Phase-Queen (Equivocate attack)");
    let mut rows = Vec::new();
    println!(
        "{:>4} {:>3} {:<12} {:>12} {:>14} {:>12}",
        "n", "t", "algorithm", "mean rounds", "mean messages", "violations"
    );
    for (n, t) in [(9usize, 2usize), (13, 3), (17, 4)] {
        let inputs: Vec<u64> = (0..n - t).map(|i| (i % 2) as u64).collect();
        // King (3t < n always holds here).
        let kcfg = PhaseKingConfig::new(n, t).with_attack(Attack::Equivocate);
        let mut k_rounds = Vec::new();
        let mut k_msgs = Vec::new();
        let mut k_viol = 0usize;
        for seed in 0..SEEDS {
            let run = run_phase_king(&kcfg, &inputs, seed);
            k_viol += run.violations.len();
            k_rounds.push(run.rounds);
            k_msgs.push(run.messages);
        }
        println!(
            "{:>4} {:>3} {:<12} {:>12.1} {:>14} {:>12}",
            n,
            t,
            "king",
            Summary::of(&k_rounds).mean,
            Summary::of(&k_msgs).mean as u64,
            k_viol
        );
        rows.push((n, t, "king", Summary::of(&k_rounds).mean, Summary::of(&k_msgs).mean as u64));
        // Queen needs 4t < n.
        if 4 * t < n {
            let mut q_rounds = Vec::new();
            let mut q_msgs = Vec::new();
            let mut q_viol = 0usize;
            for seed in 0..SEEDS {
                let run = run_phase_queen(n, t, Attack::Equivocate, &inputs, seed);
                q_viol += run.violations.len();
                q_rounds.push(run.rounds);
                q_msgs.push(run.messages);
            }
            println!(
                "{:>4} {:>3} {:<12} {:>12.1} {:>14} {:>12}",
                n,
                t,
                "queen",
                Summary::of(&q_rounds).mean,
                Summary::of(&q_msgs).mean as u64,
                q_viol
            );
            rows.push((n, t, "queen", Summary::of(&q_rounds).mean, Summary::of(&q_msgs).mean as u64));
        } else {
            println!("{:>4} {:>3} {:<12} {:>12}", n, t, "queen", "n/a (4t ≥ n)");
        }
    }
    rows
}

/// T10 — the multi-shot sequence composition: cost per decided slot as
/// the log grows (Ben-Or slots, n = 5, t = 2).
///
/// Returns `(slots, mean_messages_per_slot, mean_ticks_per_slot)` rows.
pub fn t10() -> Vec<(usize, f64, f64)> {
    use ooc_ben_or::{BenOrVac, CoinFlip};
    use ooc_core::sequence::SequenceConsensus;
    use ooc_core::template::TemplateConfig;
    hr("T10  sequence consensus: cost per slot as the log grows");
    let n = 5usize;
    let t = 2usize;
    let mut rows = Vec::new();
    println!(
        "{:>6} {:>18} {:>16}",
        "slots", "messages / slot", "ticks / slot"
    );
    for slots in [1usize, 2, 4, 8] {
        let mut msgs = Vec::new();
        let mut ticks = Vec::new();
        for seed in 0..SEEDS / 2 {
            let mut sim = Sim::builder(NetworkConfig::default())
                .seed(seed)
                .processes((0..n).map(|i| {
                    SequenceConsensus::new(
                        (0..slots).map(|k| (i + k) % 2 == 0).collect(),
                        move |_slot, _round| BenOrVac::new(n, t),
                        |_slot, _round| CoinFlip::new(),
                        TemplateConfig::default(),
                    )
                }))
                .build();
            let out = sim.run(RunLimit::default());
            assert!(out.all_decided(), "t10: sequence must complete");
            assert!(out.agreement(), "t10: sequences must agree");
            msgs.push(out.stats.messages_sent / slots as u64);
            ticks.push(out.last_decision_time().map(|t| t.ticks()).unwrap_or(0) / slots as u64);
        }
        let (m, k) = (Summary::of(&msgs).mean, Summary::of(&ticks).mean);
        println!("{slots:>6} {m:>18.0} {k:>16.0}");
        rows.push((slots, m, k));
    }
    rows
}

/// T11 — the observability layer end to end: engine metrics registry,
/// protocol-level round metrics, trace analysis, and the decision
/// critical path, exercised on Ben-Or under a lossy duplicating network
/// and on Phase-King under the Equivocate attack.
///
/// Returns `(metric, value)` rows — exactly what `--bench-json`
/// serializes into `BENCH_ooc.json`. Every value is a simulated
/// quantity (no wall clock), so the rows are bit-for-bit reproducible.
pub fn t11() -> Vec<(String, u64)> {
    use ooc_core::RoundMetrics;
    use ooc_simnet::{analyze, decision_critical_path, ProcessId, TickHistogram};

    hr("T11  observability: metrics registry, round metrics, critical path");
    let mut rows: Vec<(String, u64)> = Vec::new();

    // Ben-Or over a lossy, duplicating network, so every layer of the
    // stack has something to report: drops for the trace breakdown,
    // duplicates for the delivery-ratio fix, rounds for RoundMetrics.
    {
        let n = 7usize;
        let t = 3usize;
        let net = NetworkConfig {
            duplicate_probability: 0.05,
            ..NetworkConfig::lossy(1, 5, 0.05)
        };
        let cfg = BenOrConfig::new(n, t).with_network(net);
        let mut rm = RoundMetrics::default();
        let (mut sent, mut delivered, mut dups, mut dropped) = (0u64, 0u64, 0u64, 0u64);
        let mut decide_hist = TickHistogram::new();
        let mut path_hops = 0u64;
        for seed in 0..SEEDS {
            let run = run_decomposed(&cfg, &balanced_inputs(n), seed);
            assert!(run.violations.is_empty(), "t11 violation: {:?}", run.violations);
            for h in &run.histories {
                rm.absorb(h);
            }
            let stats = &run.outcome.stats;
            sent += stats.messages_sent;
            delivered += stats.messages_delivered;
            dups += stats.duplicate_deliveries;
            dropped += stats.messages_dropped;
            if let Some(at) = run.outcome.last_decision_time() {
                decide_hist.record(at.ticks());
            }
            // The trace must agree with the engine's own counters.
            let analysis = analyze(&run.outcome.trace, n, 50);
            let traced_drops: u64 = analysis.drop_breakdown.values().sum();
            assert_eq!(traced_drops, stats.messages_dropped, "trace/stats drop mismatch");
            let first = run
                .outcome
                .decision_times
                .iter()
                .enumerate()
                .filter_map(|(i, at)| at.map(|at| (at, i)))
                .min();
            if let Some((_, p)) = first {
                path_hops +=
                    decision_critical_path(&run.outcome.trace, ProcessId(p)).len() as u64;
            }
        }
        rows.push(("ben-or/rounds_total".into(), rm.rounds));
        rows.push(("ben-or/rounds_vacillated".into(), rm.vacillated));
        rows.push(("ben-or/rounds_adopted".into(), rm.adopted));
        rows.push(("ben-or/rounds_committed".into(), rm.committed));
        rows.push(("ben-or/rounds_shaken".into(), rm.shaken));
        rows.push(("ben-or/protocol_messages".into(), rm.messages));
        rows.push(("ben-or/max_round_messages".into(), rm.max_round_messages));
        rows.push(("ben-or/wire_sent".into(), sent));
        rows.push(("ben-or/wire_delivered".into(), delivered));
        rows.push(("ben-or/wire_duplicates".into(), dups));
        rows.push(("ben-or/wire_dropped".into(), dropped));
        rows.push(("ben-or/delivery_permille".into(), delivered * 1000 / sent.max(1)));
        rows.push((
            "ben-or/decide_ticks_p50".into(),
            decide_hist.quantile(0.50).unwrap_or(0),
        ));
        rows.push((
            "ben-or/decide_ticks_p95".into(),
            decide_hist.quantile(0.95).unwrap_or(0),
        ));
        rows.push(("ben-or/critical_path_hops".into(), path_hops));
    }

    // Phase-King (synchronous): round metrics come from the same
    // RoundRecord instrumentation, with durations in network rounds.
    {
        let cfg = PhaseKingConfig::new(7, 2).with_attack(Attack::Equivocate);
        let mut rm = RoundMetrics::default();
        let mut wire = 0u64;
        for seed in 0..SEEDS {
            let run = run_phase_king(&cfg, &[0, 1, 0, 1, 0], seed);
            assert!(run.violations.is_empty(), "t11 violation: {:?}", run.violations);
            for (_, h) in &run.honest_histories {
                rm.absorb(h);
            }
            wire += run.messages;
        }
        rows.push(("phase-king/rounds_total".into(), rm.rounds));
        rows.push(("phase-king/rounds_committed".into(), rm.committed));
        rows.push(("phase-king/rounds_shaken".into(), rm.shaken));
        rows.push(("phase-king/protocol_messages".into(), rm.messages));
        rows.push(("phase-king/max_round_messages".into(), rm.max_round_messages));
        rows.push(("phase-king/wire_messages".into(), wire));
    }

    println!("{:<34} {:>14}", "metric", "value");
    for (metric, value) in &rows {
        println!("{metric:<34} {value:>14}");
    }
    rows
}

/// T12 — parallel campaign throughput: `ooc-campaign`'s deterministic
/// scoped-thread executor over a smoke grid, serial vs 4 workers.
///
/// Wall-clock throughput (runs/sec, events/sec, speedup) is printed for
/// the operator but deliberately kept **out** of the returned rows: only
/// simulated, machine-independent totals feed `BENCH_ooc.json`. The
/// function also asserts the executor's contract in passing — the
/// 4-worker outcomes must match the serial ones field-for-field (wall
/// time excepted), or the table itself is meaningless.
pub fn t12() -> Vec<(String, u64)> {
    use ooc_campaign::{grid, run_all, Algorithm};

    hr("T12  parallel campaign throughput (smoke grid, jobs=1 vs jobs=4)");
    const COMBOS: usize = 64;
    let mut artifacts = grid(Algorithm::BenOr, COMBOS);
    artifacts.truncate(COMBOS);

    // ooc-lint::allow(determinism/wall-clock, "throughput measurement of the serial executor")
    let start = Instant::now();
    let serial = run_all(&artifacts, 1);
    let serial_secs = start.elapsed().as_secs_f64().max(1e-9);

    // ooc-lint::allow(determinism/wall-clock, "throughput measurement of the 4-worker executor")
    let start = Instant::now();
    let parallel = run_all(&artifacts, 4);
    let parallel_secs = start.elapsed().as_secs_f64().max(1e-9);

    // The executor contract, asserted on real data: worker count must be
    // invisible in everything but wall time.
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.violations, p.violations, "combo {i} violations diverged");
        assert_eq!(
            (s.decided, s.undecided, s.messages, &s.stop),
            (p.decided, p.undecided, p.messages, &p.stop),
            "combo {i} outcome diverged"
        );
        assert_eq!(
            (s.spent.rounds, s.spent.ticks, s.spent.events),
            (p.spent.rounds, p.spent.ticks, p.spent.events),
            "combo {i} budget spend diverged"
        );
    }

    let combos = artifacts.len() as u64;
    let events: u64 = serial.iter().map(|o| o.spent.events).sum();
    let messages: u64 = serial.iter().map(|o| o.messages).sum();
    let decided: u64 = serial.iter().map(|o| o.decided as u64).sum();
    let undecided: u64 = serial.iter().map(|o| o.undecided as u64).sum();
    let sim_ticks: u64 = serial.iter().map(|o| o.spent.ticks).sum();

    println!(
        "{:<8} {:>10} {:>12} {:>14}",
        "jobs", "secs", "runs/sec", "events/sec"
    );
    for (jobs, secs) in [(1, serial_secs), (4, parallel_secs)] {
        println!(
            "{:<8} {:>10.3} {:>12.1} {:>14.0}",
            jobs,
            secs,
            combos as f64 / secs,
            events as f64 / secs
        );
    }
    println!("speedup at jobs=4: {:.2}x", serial_secs / parallel_secs);

    vec![
        ("campaign/combos".into(), combos),
        ("campaign/decided".into(), decided),
        ("campaign/undecided".into(), undecided),
        ("campaign/messages".into(), messages),
        ("campaign/events".into(), events),
        ("campaign/sim_ticks".into(), sim_ticks),
    ]
}

/// T14 — gray-failure degradation: the `ooc-campaign` scenario zoo
/// (clean, asymmetric loss, flapping partitions, heavy-tailed delays with
/// clock drift and slow disks) against the adversary ladder (oblivious →
/// message-adaptive split-vote → state-adaptive split-vote →
/// quorum-starve), Ben-Or n=7 t=3.
///
/// Every returned value is a simulated, machine-independent total:
/// eventual-agreement probability in permille plus the p50/p95
/// rounds-to-decide of the runs that agreed. The degradation report
/// itself guarantees `jobs`-independence, so the rows are byte-stable.
pub fn t14() -> Vec<(String, u64)> {
    use ooc_campaign::degradation_report_jobs;

    hr("T14  gray-failure degradation (adversary ladder × scenario zoo)");
    const DEG_SEEDS: usize = 24;
    let report = degradation_report_jobs(DEG_SEEDS, 4);

    let mut rows: Vec<(String, u64)> = Vec::new();
    println!(
        "{:<18} {:<18} {:>10} {:>8} {:>8}",
        "regime", "adversary", "agree ‰", "rnd p50", "rnd p95"
    );
    for regime in &report.regimes {
        for cell in &regime.cells {
            assert_eq!(
                cell.safety_violations, 0,
                "t14: {}/{} broke safety",
                regime.regime, cell.adversary
            );
            println!(
                "{:<18} {:<18} {:>10} {:>8} {:>8}",
                regime.regime,
                cell.adversary,
                cell.agreement_permille,
                cell.rounds_to_decide.p50,
                cell.rounds_to_decide.p95
            );
            let key = format!("degradation/{}/{}", regime.regime, cell.adversary);
            rows.push((format!("{key}/agreement_permille"), cell.agreement_permille));
            rows.push((format!("{key}/rounds_p95"), cell.rounds_to_decide.p95));
        }
    }
    rows
}

/// Message flood shared by T15/T16: every process broadcasts at start
/// and rebroadcasts on each delivery until it has handled
/// [`FLOOD_BUDGET`] messages, then decides. Pure engine hot path: no
/// checkers, no histories.
#[derive(Debug, Default)]
struct Flood {
    handled: u64,
}

const FLOOD_N: usize = 8;
const FLOOD_BUDGET: u64 = 300;
const FLOOD_SEEDS: u64 = 6;
/// Timing repetitions per measurement: one flood pass runs in
/// single-digit milliseconds, where scheduler jitter dominates, so the
/// wall time reported is the *minimum* over this many identical passes
/// (the standard best-of-k estimator for a deterministic workload).
/// Simulated totals come from the first pass — every pass is
/// byte-identical by determinism, so repetition changes nothing else.
const FLOOD_REPS: usize = 15;

impl ooc_simnet::Process for Flood {
    type Msg = u64;
    type Output = u64;
    fn on_start(&mut self, ctx: &mut ooc_simnet::Context<'_, u64, u64>) {
        ctx.broadcast_others(0);
    }
    fn on_message(
        &mut self,
        ctx: &mut ooc_simnet::Context<'_, u64, u64>,
        _from: ooc_simnet::ProcessId,
        _msg: u64,
    ) {
        self.handled += 1;
        if self.handled < FLOOD_BUDGET {
            ctx.broadcast_others(self.handled);
        } else if self.handled == FLOOD_BUDGET {
            ctx.decide(self.handled);
        }
    }
    fn on_timer(&mut self, _ctx: &mut ooc_simnet::Context<'_, u64, u64>, _t: ooc_simnet::TimerId) {}
}

/// Simulated totals of one flood run (all machine-independent) plus the
/// wall time, which is printed for the operator but never serialized.
struct FloodTotals {
    events: u64,
    messages: u64,
    dropped: u64,
    duplicated: u64,
    timers: u64,
    sim_ticks: u64,
    secs: f64,
}

/// One timed flood pass over [`FLOOD_SEEDS`] seeds; accumulates the
/// simulated totals into `t` only when `accumulate` is set (the first
/// pass — every pass is byte-identical by determinism) and always folds
/// the pass's wall time into `t.secs` via min.
fn flood_pass(
    config: &NetworkConfig,
    scheduler: ooc_simnet::SchedulerKind,
    fanout: ooc_simnet::FanoutKind,
    t: &mut FloodTotals,
    accumulate: bool,
) {
    // ooc-lint::allow(determinism/wall-clock, "throughput measurement of the engine hot path")
    let start = Instant::now();
    for seed in 0..FLOOD_SEEDS {
        let mut sim = Sim::builder(config.clone())
            .seed(seed)
            .scheduler(scheduler)
            .fanout(fanout)
            // Raw-speed configuration: the trace ring records nothing,
            // the way a campaign happy path would run.
            .trace_capacity(0)
            .processes((0..FLOOD_N).map(|_| Flood::default()))
            .build();
        let out = sim.run(RunLimit::default());
        assert!(out.all_decided(), "flood seed {seed} must decide");
        if accumulate {
            t.events += out.stats.events_processed;
            t.messages += out.stats.messages_sent;
            t.dropped += out.stats.messages_dropped;
            t.duplicated += out.stats.messages_duplicated;
            t.timers += out.stats.timers_fired;
            t.sim_ticks += out.stats.end_time.ticks();
        }
    }
    t.secs = t.secs.min(start.elapsed().as_secs_f64().max(1e-9));
}

fn flood_totals() -> FloodTotals {
    FloodTotals {
        events: 0,
        messages: 0,
        dropped: 0,
        duplicated: 0,
        timers: 0,
        sim_ticks: 0,
        secs: f64::INFINITY,
    }
}

/// Times two engine variants on the same flood workload with their
/// passes interleaved (A, B, A, B, …), so slow drift in host load or
/// CPU frequency hits both variants alike and cancels out of the
/// reported ratio — best-of-[`FLOOD_REPS`] per variant.
fn run_flood_ab(
    config: &NetworkConfig,
    a: (ooc_simnet::SchedulerKind, ooc_simnet::FanoutKind),
    b: (ooc_simnet::SchedulerKind, ooc_simnet::FanoutKind),
) -> (FloodTotals, FloodTotals) {
    let (mut ta, mut tb) = (flood_totals(), flood_totals());
    for rep in 0..FLOOD_REPS {
        flood_pass(config, a.0, a.1, &mut ta, rep == 0);
        flood_pass(config, b.0, b.1, &mut tb, rep == 0);
    }
    (ta, tb)
}

/// Deterministic modelled work-tick breakdown of the delivery path,
/// printed under `--profile` and **never** serialized into rows — the
/// same discipline as `ooc-lint`'s per-rule `work_ticks`: a tick is one
/// unit of logical work counted from the simulated totals, never wall
/// time, so the breakdown is identical on every host.
///
/// * `plan` — one tick per outbound message classified against the
///   routing state (partition/override/probability resolution);
/// * `sample` — one tick per routing RNG decision: a drop check per
///   message plus a delay draw per surviving message;
/// * `insert` — one tick per entry pushed into the scheduler: survivors,
///   duplicate copies, and fired timers;
/// * `deliver` — one tick per handler invocation popped from the queue.
fn print_work_ticks(label: &str, t: &FloodTotals) {
    let survivors = t.messages - t.dropped;
    let plan = t.messages;
    let sample = t.messages + survivors;
    let insert = survivors + t.duplicated + t.timers;
    let deliver = t.events;
    println!(
        "profile[{label}]: plan={plan} sample={sample} insert={insert} deliver={deliver} work ticks"
    );
}

/// T15 — raw simnet throughput: events/sec of the timing-wheel engine on
/// a message-flood workload (against the reference `BinaryHeap` scheduler
/// run on the identical schedule), plus sweeps/sec over the T12 smoke
/// grid.
///
/// Wall-clock events/sec and sweeps/sec are printed for the operator and
/// deliberately kept **out** of the returned rows: only simulated,
/// machine-independent totals feed `BENCH_ooc.json`, so the committed
/// rows are byte-stable across hosts and runs. Both schedulers must
/// produce identical totals — asserted in passing, the bench-level face
/// of the engine's A/B equivalence contract.
pub fn t15() -> Vec<(String, u64)> {
    t15_with(false)
}

/// [`t15`] with an optional deterministic work-tick profile (see
/// [`print_work_ticks`]).
pub fn t15_with(profile: bool) -> Vec<(String, u64)> {
    use ooc_campaign::{grid, run_all, Algorithm};
    use ooc_simnet::{FanoutKind, SchedulerKind};

    hr("T15  raw simnet throughput (events/sec + sweeps/sec)");

    let clean = NetworkConfig::default();
    let (wheel, heap) = run_flood_ab(
        &clean,
        (SchedulerKind::TimingWheel, FanoutKind::default()),
        (SchedulerKind::BinaryHeap, FanoutKind::default()),
    );
    // The A/B contract, asserted on real totals: the scheduler knob must
    // be invisible in everything but wall time.
    assert_eq!(
        (wheel.events, wheel.messages, wheel.sim_ticks),
        (heap.events, heap.messages, heap.sim_ticks),
        "wheel and heap schedulers diverged on the flood workload"
    );
    let (events, msgs, ticks) = (wheel.events, wheel.messages, wheel.sim_ticks);

    println!(
        "{:<14} {:>10} {:>14}",
        "scheduler", "secs", "events/sec"
    );
    for (name, secs) in [("timing-wheel", wheel.secs), ("binary-heap", heap.secs)] {
        println!(
            "{:<14} {:>10.3} {:>14.0}",
            name,
            secs,
            events as f64 / secs
        );
    }
    if profile {
        print_work_ticks("t15/flood", &wheel);
    }

    // Sweeps/sec over the T12 smoke grid: the full campaign pipeline
    // (harness + checkers + bounded-ring traces) at the default worker
    // count the CI throughput job uses.
    const COMBOS: usize = 64;
    let mut artifacts = grid(Algorithm::BenOr, COMBOS);
    artifacts.truncate(COMBOS);
    // ooc-lint::allow(determinism/wall-clock, "throughput measurement of the campaign sweep")
    let start = Instant::now();
    let outcomes = run_all(&artifacts, 4);
    let sweep_secs = start.elapsed().as_secs_f64().max(1e-9);
    let sweep_events: u64 = outcomes.iter().map(|o| o.spent.events).sum();
    println!(
        "sweep: {:.1} sweeps/sec, {:.0} events/sec ({} combos in {:.3}s)",
        COMBOS as f64 / sweep_secs,
        sweep_events as f64 / sweep_secs,
        COMBOS,
        sweep_secs
    );

    vec![
        ("t15/engine_seeds".into(), FLOOD_SEEDS),
        ("t15/engine_events".into(), events),
        ("t15/engine_messages".into(), msgs),
        ("t15/engine_sim_ticks".into(), ticks),
        ("t15/sweep_combos".into(), COMBOS as u64),
        ("t15/sweep_events".into(), sweep_events),
    ]
}

/// T16 — batched fan-out throughput: the batched delivery planner
/// against the per-recipient oracle on the T15 flood workload, over
/// three regimes: a clean network (default uniform delay), a
/// fixed-delay network (statically uniform routing, so the zero-draw
/// broadcast hot path streams whole outboxes into one wheel bucket),
/// and a lossy/duplicating/delaying one (so the planner's RNG hot path
/// is exercised rather than bypassed).
///
/// Wall-clock events/sec and the batched-over-per-recipient speedup are
/// printed for the operator; only simulated, machine-independent totals
/// feed the returned rows — and those totals are asserted identical
/// across the two fan-out kinds, the bench-level face of the engine's
/// A/B byte-identity contract.
pub fn t16() -> Vec<(String, u64)> {
    t16_with(false)
}

/// [`t16`] with an optional deterministic work-tick profile (see
/// [`print_work_ticks`]).
pub fn t16_with(profile: bool) -> Vec<(String, u64)> {
    use ooc_simnet::{DelayModel, FanoutKind, SchedulerKind};

    hr("T16  batched fan-out throughput (batched vs per-recipient)");

    let lossy = NetworkConfig {
        drop_probability: 0.05,
        duplicate_probability: 0.05,
        delay: DelayModel::Uniform { min: 1, max: 40 },
        ..NetworkConfig::default()
    };
    let mut rows = vec![("t16/engine_seeds".to_string(), FLOOD_SEEDS)];
    println!(
        "{:<8} {:<14} {:>10} {:>14} {:>9}",
        "network", "fanout", "secs", "events/sec", "speedup"
    );
    for (label, config) in [
        ("clean", NetworkConfig::default()),
        ("fixed", NetworkConfig::reliable(3)),
        ("lossy", lossy),
    ] {
        let (batched, per) = run_flood_ab(
            &config,
            (SchedulerKind::TimingWheel, FanoutKind::Batched),
            (SchedulerKind::TimingWheel, FanoutKind::PerRecipient),
        );
        // The tentpole contract at bench level: the fan-out knob must be
        // invisible in everything but wall time.
        assert_eq!(
            (batched.events, batched.messages, batched.sim_ticks),
            (per.events, per.messages, per.sim_ticks),
            "{label}: fan-out kinds diverged on the flood workload"
        );
        for (name, t, speedup) in [
            ("batched", &batched, Some(per.secs / batched.secs)),
            ("per-recipient", &per, None),
        ] {
            println!(
                "{:<8} {:<14} {:>10.3} {:>14.0} {:>9}",
                label,
                name,
                t.secs,
                t.events as f64 / t.secs,
                speedup.map_or(String::new(), |s| format!("{s:.2}x")),
            );
        }
        if profile {
            print_work_ticks(&format!("t16/{label}"), &batched);
        }
        rows.push((format!("t16/{label}_events"), batched.events));
        rows.push((format!("t16/{label}_messages"), batched.messages));
        rows.push((format!("t16/{label}_sim_ticks"), batched.sim_ticks));
    }
    rows
}

/// T17 — reliable delivery: the T14 gray-failure grid rerun with
/// [`ReliabilityPolicy::Retransmit`](ooc_simnet::ReliabilityPolicy)
/// at default knobs. Alongside agreement and rounds-to-decide
/// percentiles, each cell reports the reliability layer's own costs:
/// retransmissions and acks sent.
///
/// The headline this table exists to pin: the quorum-starve adversary —
/// 0‰ eventual agreement under fire-and-forget delivery in every regime
/// (see T14) — recovers to ≥900‰ once lost copies are retransmitted,
/// with safety violations still at zero. The per-cell assertions below
/// make the bench run itself the regression gate.
pub fn t17() -> Vec<(String, u64)> {
    use ooc_campaign::degradation_reliability_report_jobs;

    hr("T17  reliable delivery (T14 grid + retransmission)");
    const DEG_SEEDS: usize = 24;
    let report = degradation_reliability_report_jobs(DEG_SEEDS, 4);

    let mut rows: Vec<(String, u64)> = Vec::new();
    println!(
        "{:<18} {:<18} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "regime", "adversary", "agree ‰", "stalled", "rnd p50", "rnd p95", "retx", "acks"
    );
    for regime in &report.regimes {
        for cell in &regime.cells {
            assert_eq!(
                cell.safety_violations, 0,
                "t17: {}/{} broke safety",
                regime.regime, cell.adversary
            );
            // The headline acceptance bar: retransmission must lift the
            // quorum-starve cell from 0‰ to at least 900‰ everywhere.
            if cell.adversary == "quorum-starve" {
                assert!(
                    cell.agreement_permille >= 900,
                    "t17: {}/quorum-starve agreement {}‰ below the 900‰ bar",
                    regime.regime,
                    cell.agreement_permille
                );
            }
            println!(
                "{:<18} {:<18} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
                regime.regime,
                cell.adversary,
                cell.agreement_permille,
                cell.stalled,
                cell.rounds_to_decide.p50,
                cell.rounds_to_decide.p95,
                cell.retransmissions,
                cell.acks_sent
            );
            let key = format!("reliability/{}/{}", regime.regime, cell.adversary);
            rows.push((format!("{key}/agreement_permille"), cell.agreement_permille));
            rows.push((format!("{key}/stalled"), cell.stalled));
            rows.push((format!("{key}/rounds_p95"), cell.rounds_to_decide.p95));
            rows.push((format!("{key}/retransmissions"), cell.retransmissions));
            rows.push((format!("{key}/acks_sent"), cell.acks_sent));
        }
    }
    rows
}

/// Serializes T11/T12/T14/T15/T16/T17 rows as the `BENCH_ooc.json`
/// document: a schema tag plus `{name, value}` metric records, in row
/// order. Deterministic because the rows are.
pub fn bench_json(rows: &[(String, u64)]) -> String {
    let mut out = String::from("{\n  \"schema\": \"ooc-bench/v1\",\n  \"source\": \"tables t11 t12 t14 t15 t16 t17\",\n  \"metrics\": [");
    for (i, (name, value)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Metric names are plain ASCII identifiers; `{name:?}` quotes
        // and escapes them JSON-compatibly.
        out.push_str(&format!("\n    {{ \"name\": {name:?}, \"value\": {value} }}"));
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke-level shape assertions; the full sweeps run via the binary.

    #[test]
    fn t1_matrix_is_all_zeros() {
        for (label, _, v) in t1() {
            assert_eq!(v, 0, "{label}");
        }
    }

    #[test]
    fn t7_orders_variants_sensibly() {
        let rows = t7();
        let get = |label: &str| {
            rows.iter()
                .find(|(l, _, _)| *l == label)
                .map(|(_, m, _)| m.mean)
                .unwrap()
        };
        // The §5 composition must cost more messages than the native VAC.
        assert!(get("template + 2×AC VAC (§5)") > get("template + native VAC"));
    }

    #[test]
    fn t11_rows_are_deterministic_and_serialize() {
        let a = t11();
        let b = t11();
        assert_eq!(a, b, "t11 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"ooc-bench/v1\""));
        assert!(json.contains("\"ben-or/rounds_total\""));
        assert!(json.contains("\"phase-king/protocol_messages\""));
        // Sanity on the content: consensus costs messages and rounds.
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert!(get("ben-or/rounds_total") > 0);
        assert!(get("ben-or/wire_sent") > 0);
        assert!(get("ben-or/delivery_permille") <= 1000);
        assert!(get("phase-king/rounds_committed") > 0);
    }

    #[test]
    fn t14_rows_are_deterministic_and_show_degradation() {
        let a = t14();
        let b = t14();
        assert_eq!(a, b, "t14 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"tables t11 t12 t14 t15 t16 t17\""));
        assert!(json.contains("\"degradation/clean/oblivious/agreement_permille\""));
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        // The acceptance criterion: the state-adaptive split-vote must
        // sit measurably below the oblivious baseline.
        for regime in ["clean", "asym-loss", "flapping", "heavy-tail-drift"] {
            let oblivious = get(&format!("degradation/{regime}/oblivious/agreement_permille"));
            let state = get(&format!(
                "degradation/{regime}/state-split-vote/agreement_permille"
            ));
            assert!(
                state < oblivious,
                "{regime}: state-split-vote {state}‰ must degrade below oblivious {oblivious}‰"
            );
        }
    }

    #[test]
    fn t17_rows_are_deterministic_and_pin_the_recovery_headline() {
        // t17 internally asserts zero safety violations and the ≥900‰
        // quorum-starve bar; here we pin that the rows are reproducible
        // (so BENCH_ooc.json stays byte-stable) and that the reliability
        // layer visibly paid for the recovery.
        let a = t17();
        let b = t17();
        assert_eq!(a, b, "t17 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"reliability/clean/oblivious/agreement_permille\""));
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        for regime in ["clean", "asym-loss", "flapping", "heavy-tail-drift"] {
            // T14's quorum-starve rows sit at 0‰; the same cells here
            // must clear the recovery bar with zero stalled runs.
            let starve = format!("reliability/{regime}/quorum-starve");
            assert!(get(&format!("{starve}/agreement_permille")) >= 900);
            assert_eq!(get(&format!("{starve}/stalled")), 0);
            assert!(
                get(&format!("{starve}/retransmissions")) > 0,
                "{regime}: recovery without retransmissions is impossible"
            );
            assert!(get(&format!("{starve}/acks_sent")) > 0);
        }
    }

    #[test]
    fn t15_rows_are_deterministic_and_machine_independent() {
        // t15 internally asserts the wheel and heap schedulers agree on
        // every simulated total; here we pin that the rows themselves are
        // reproducible (so BENCH_ooc.json stays byte-stable) and carry no
        // wall-clock values.
        let a = t15();
        let b = t15();
        assert_eq!(a, b, "t15 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"t15/engine_events\""));
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert!(get("t15/engine_events") > 0);
        assert!(get("t15/engine_messages") > 0);
        assert!(get("t15/engine_sim_ticks") > 0);
        assert_eq!(get("t15/sweep_combos"), 64);
        assert!(get("t15/sweep_events") > 0);
    }

    #[test]
    fn t16_rows_are_deterministic_and_machine_independent() {
        // t16 internally asserts the batched and per-recipient fan-out
        // paths agree on every simulated total; here we pin that the
        // rows are reproducible (with and without the printed profile,
        // which must never leak into them) and carry no wall-clock
        // values.
        let a = t16();
        let b = t16_with(true);
        assert_eq!(a, b, "t16 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"t16/clean_events\""));
        assert!(!json.contains("secs"), "wall time must not be serialized");
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert_eq!(get("t16/engine_seeds"), 6);
        for regime in ["clean", "fixed", "lossy"] {
            assert!(get(&format!("t16/{regime}_events")) > 0);
            assert!(get(&format!("t16/{regime}_messages")) > 0);
            assert!(get(&format!("t16/{regime}_sim_ticks")) > 0);
        }
        // The lossy regime must actually lose traffic relative to what it
        // sends — otherwise the planner's RNG hot path went unexercised.
        assert!(get("t16/lossy_events") != get("t16/clean_events"));
    }

    #[test]
    fn t12_rows_are_deterministic_and_serialize() {
        // t12 internally asserts serial/parallel agreement; here we pin
        // that the *rows* (the BENCH_ooc.json feed) are reproducible and
        // free of wall-clock values.
        let a = t12();
        let b = t12();
        assert_eq!(a, b, "t12 must be bit-for-bit reproducible");
        let json = bench_json(&a);
        assert!(json.contains("\"campaign/combos\""));
        let get = |name: &str| a.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap();
        assert_eq!(get("campaign/combos"), 64);
        assert!(get("campaign/decided") > 0);
        assert!(get("campaign/events") > 0);
        assert!(get("campaign/messages") > 0);
    }
}
