//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p ooc-bench --bin tables --release -- all
//! cargo run -p ooc-bench --bin tables --release -- t3 t5
//! cargo run -p ooc-bench --bin tables --release -- t11 --bench-json BENCH_ooc.json
//! ```
//!
//! `--bench-json PATH` writes the T11 observability metrics, the T12
//! campaign-throughput totals, the T14 gray-failure degradation totals,
//! the T15 raw-engine throughput totals, the T16 batched fan-out totals
//! and the T17 reliable-delivery totals as one deterministic JSON
//! document (running the tables first if they were not requested).
//!
//! `--profile` prints the deterministic work-tick breakdown for T15/T16
//! (plan/sample/insert/deliver); the counters are simulated work units,
//! never wall time, and never reach the serialized rows.

use ooc_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_json_path = args
        .iter()
        .position(|a| a == "--bench-json")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--bench-json requires a PATH");
            std::process::exit(2);
        }));
    let profile = args.iter().any(|a| a == "--profile");
    let tables_args: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            *a != "--bench-json"
                && *a != "--profile"
                && !(*i > 0 && args[i - 1] == "--bench-json")
        })
        .map(|(_, a)| a.as_str())
        .collect();
    let wanted: Vec<&str> = if tables_args.is_empty() || tables_args.contains(&"all") {
        vec![
            "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11", "t12", "t14",
            "t15", "t16", "t17",
        ]
    } else {
        tables_args
    };
    let mut t11_rows: Option<Vec<(String, u64)>> = None;
    let mut t12_rows: Option<Vec<(String, u64)>> = None;
    let mut t14_rows: Option<Vec<(String, u64)>> = None;
    let mut t15_rows: Option<Vec<(String, u64)>> = None;
    let mut t16_rows: Option<Vec<(String, u64)>> = None;
    let mut t17_rows: Option<Vec<(String, u64)>> = None;
    for w in wanted {
        match w {
            "t1" => {
                tables::t1();
            }
            "t2" => {
                tables::t2();
            }
            "t3" => {
                tables::t3();
            }
            "t4" => {
                tables::t4();
            }
            "t5" => {
                tables::t5();
            }
            "t6" => {
                tables::t6();
            }
            "t7" => {
                tables::t7();
            }
            "t8" => {
                tables::t8();
            }
            "t9" => {
                tables::t9();
            }
            "t10" => {
                tables::t10();
            }
            "t11" => {
                t11_rows = Some(tables::t11());
            }
            "t12" => {
                t12_rows = Some(tables::t12());
            }
            "t14" => {
                t14_rows = Some(tables::t14());
            }
            "t15" => {
                t15_rows = Some(tables::t15_with(profile));
            }
            "t16" => {
                t16_rows = Some(tables::t16_with(profile));
            }
            "t17" => {
                t17_rows = Some(tables::t17());
            }
            other => {
                eprintln!("unknown table {other:?}; expected t1..t12, t14..t17, or all");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = bench_json_path {
        let mut rows = t11_rows.unwrap_or_else(tables::t11);
        rows.extend(t12_rows.unwrap_or_else(tables::t12));
        rows.extend(t14_rows.unwrap_or_else(tables::t14));
        rows.extend(t15_rows.unwrap_or_else(tables::t15));
        rows.extend(t16_rows.unwrap_or_else(tables::t16));
        rows.extend(t17_rows.unwrap_or_else(tables::t17));
        let doc = tables::bench_json(&rows);
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("\nwrote {path}");
    }
}
