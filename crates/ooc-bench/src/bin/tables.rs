//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run -p ooc-bench --bin tables --release -- all
//! cargo run -p ooc-bench --bin tables --release -- t3 t5
//! ```

use ooc_bench::tables;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec!["t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10"]
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    for w in wanted {
        match w {
            "t1" => {
                tables::t1();
            }
            "t2" => {
                tables::t2();
            }
            "t3" => {
                tables::t3();
            }
            "t4" => {
                tables::t4();
            }
            "t5" => {
                tables::t5();
            }
            "t6" => {
                tables::t6();
            }
            "t7" => {
                tables::t7();
            }
            "t8" => {
                tables::t8();
            }
            "t9" => {
                tables::t9();
            }
            "t10" => {
                tables::t10();
            }
            other => {
                eprintln!("unknown table {other:?}; expected t1..t10 or all");
                std::process::exit(2);
            }
        }
    }
}
