//! # ooc-bench
//!
//! The experiment harness behind `EXPERIMENTS.md`: workload generators,
//! parameter sweeps and the code that regenerates every table (T1–T8).
//! The `tables` binary prints them:
//!
//! ```sh
//! cargo run -p ooc-bench --bin tables --release -- all   # or t1..t8
//! ```
//!
//! Criterion benchmarks for the same experiments live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod tables;

pub use stats::Summary;
