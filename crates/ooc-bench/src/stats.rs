//! Tiny descriptive-statistics helpers for the experiment tables.

/// Summary statistics over a sample of `u64` measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: u64,
    /// Median (lower of the two middles for even sizes).
    pub p50: u64,
    /// 95th percentile (nearest-rank).
    pub p95: u64,
    /// Maximum.
    pub max: u64,
}

impl Summary {
    /// Summarizes a sample. Returns a zeroed summary for empty input.
    pub fn of(values: &[u64]) -> Summary {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0,
                p50: 0,
                p95: 0,
                max: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |q: f64| -> u64 {
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        Summary {
            count: sorted.len(),
            mean: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64,
            min: sorted[0],
            p50: rank(0.50),
            p95: rank(0.95),
            max: *sorted.last().unwrap(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean {:>8.1}  p50 {:>6}  p95 {:>6}  max {:>6}",
            self.mean, self.p50, self.p95, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7]);
        assert_eq!((s.min, s.p50, s.p95, s.max), (7, 7, 7, 7));
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn percentiles_on_known_sample() {
        let v: Vec<u64> = (1..=100).collect();
        let s = Summary::of(&v);
        assert_eq!(s.p50, 50);
        assert_eq!(s.p95, 95);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn unsorted_input_is_fine() {
        let s = Summary::of(&[9, 1, 5]);
        assert_eq!(s.p50, 5);
        assert_eq!(s.max, 9);
    }
}
