//! Microbenchmarks of the simulator substrate itself: event throughput of
//! the async engine and round throughput of the sync engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooc_simnet::{
    Context, NetworkConfig, Process, ProcessId, RunLimit, Sim, SimTime, SyncContext, SyncProcess,
    SyncSim, TimerId,
};
use std::hint::black_box;

/// Gossip forever: every delivery triggers one send to a random peer.
#[derive(Debug)]
struct Gossip;
impl Process for Gossip {
    type Msg = u64;
    type Output = ();
    fn on_start(&mut self, ctx: &mut Context<'_, u64, ()>) {
        ctx.broadcast(0);
    }
    fn on_message(&mut self, ctx: &mut Context<'_, u64, ()>, _f: ProcessId, v: u64) {
        let n = ctx.n() as u64;
        let to = ProcessId((ctx.rng().below(n)) as usize);
        ctx.send(to, v + 1);
    }
    fn on_timer(&mut self, _c: &mut Context<'_, u64, ()>, _t: TimerId) {}
}

#[derive(Debug)]
struct SyncChatter;
impl SyncProcess for SyncChatter {
    type Msg = u64;
    type Output = ();
    fn on_round(&mut self, r: u64, _i: &[(ProcessId, u64)], ctx: &mut SyncContext<'_, u64, ()>) {
        ctx.broadcast(r);
    }
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet");
    group.sample_size(10);
    for n in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("async_events", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sim = Sim::builder(NetworkConfig::default())
                    .seed(seed)
                    .processes((0..n).map(|_| Gossip))
                    .build();
                black_box(sim.run(RunLimit::until_time(SimTime::from_ticks(2_000))))
            })
        });
        group.bench_with_input(BenchmarkId::new("sync_rounds", n), &n, |b, &n| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sim = SyncSim::new((0..n).map(|_| SyncChatter), seed);
                black_box(sim.run(100))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
