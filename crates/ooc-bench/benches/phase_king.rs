//! Criterion benchmark for experiment T2: Phase-King cost vs (n, t) and
//! attack, plus the classical monolithic baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooc_phase_king::{run_phase_king, run_phase_queen, Attack, MonolithicPhaseKing, PhaseKingConfig};
use ooc_simnet::{ProcessId, SyncSim};
use std::hint::black_box;

fn bench_decomposed(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_king");
    group.sample_size(10);
    for (n, t) in [(4usize, 1usize), (7, 2), (13, 4)] {
        let inputs: Vec<u64> = (0..n - t).map(|i| (i % 2) as u64).collect();
        for attack in [Attack::Equivocate, Attack::Random] {
            let cfg = PhaseKingConfig::new(n, t).with_attack(attack);
            group.bench_with_input(
                BenchmarkId::new(format!("decomposed_{attack:?}"), n),
                &n,
                |b, _| {
                    let mut seed = 0;
                    b.iter(|| {
                        seed += 1;
                        black_box(run_phase_king(&cfg, &inputs, seed))
                    })
                },
            );
        }
        if 4 * t < n {
            group.bench_with_input(BenchmarkId::new("queen_Equivocate", n), &n, |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_phase_queen(n, t, Attack::Equivocate, &inputs, seed))
                })
            });
        }
        // The classical fixed-(t+1)-phase baseline, no Byzantine traffic.
        group.bench_with_input(BenchmarkId::new("monolithic", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut sim = SyncSim::new(
                    (0..n).map(|i| MonolithicPhaseKing::new((i % 2) as u64, n, t)),
                    seed,
                );
                sim.track_only((0..n).map(ProcessId));
                black_box(sim.run(3 * (t as u64 + 2) + 3))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decomposed);
criterion_main!(benches);
