//! Criterion benchmark for experiment T7: the price of building the VAC
//! from two ACs (§5) vs the native VAC vs the monolithic baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use ooc_ben_or::harness::{
    balanced_inputs, run_composed, run_decomposed, run_monolithic, BenOrConfig,
};
use std::hint::black_box;

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition_overhead");
    group.sample_size(10);
    let n = 7;
    let cfg = BenOrConfig::new(n, 3);
    let inputs = balanced_inputs(n);
    group.bench_function("monolithic", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_monolithic(&cfg, &inputs, seed))
        })
    });
    group.bench_function("native_vac", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_decomposed(&cfg, &inputs, seed))
        })
    });
    group.bench_function("two_ac_vac", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_composed(&cfg, &inputs, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_compose);
criterion_main!(benches);
