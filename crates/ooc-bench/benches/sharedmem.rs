//! Criterion benchmark for experiment T8: shared-memory adopt-commit and
//! consensus throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooc_sharedmem::{RegisterAc, SharedConsensus};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sharedmem(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharedmem");
    group.sample_size(10);
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("register_ac", threads), &threads, |b, &th| {
            b.iter(|| {
                let ac = Arc::new(RegisterAc::new(th));
                std::thread::scope(|s| {
                    for i in 0..th {
                        let ac = Arc::clone(&ac);
                        s.spawn(move || black_box(ac.propose(i, (i % 2) as u64)));
                    }
                });
            })
        });
        group.bench_with_input(BenchmarkId::new("consensus", threads), &threads, |b, &th| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let c = Arc::new(SharedConsensus::new(th));
                std::thread::scope(|s| {
                    for i in 0..th {
                        let c = Arc::clone(&c);
                        let seed = seed;
                        s.spawn(move || black_box(c.propose(i, (i % 2) as u64, seed + i as u64)));
                    }
                });
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharedmem);
criterion_main!(benches);
