//! Criterion benchmark for experiment T6: Raft consensus latency vs the
//! election-timeout / broadcast-delay ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooc_raft::harness::{run_raft, RaftClusterConfig};
use ooc_raft::RaftConfig;
use ooc_simnet::NetworkConfig;
use std::hint::black_box;

fn bench_raft(c: &mut Criterion) {
    let mut group = c.benchmark_group("raft_consensus");
    group.sample_size(10);
    let delay = 25u64;
    for (lo, hi) in [(75u64, 150u64), (150, 300), (600, 1200)] {
        let cfg = RaftClusterConfig::new(5)
            .with_network(NetworkConfig::reliable(delay))
            .with_raft(RaftConfig {
                election_timeout: (lo, hi),
                heartbeat_interval: (lo / 3).max(1),
                max_batch: 16,
            });
        group.bench_with_input(
            BenchmarkId::new("timeout", format!("{lo}-{hi}")),
            &lo,
            |b, _| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_raft(&cfg, &[1, 2, 3, 4, 5], seed))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_raft);
criterion_main!(benches);
