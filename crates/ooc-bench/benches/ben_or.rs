//! Criterion benchmark for experiment T3: Ben-Or consensus time vs `n`,
//! random scheduler vs split-vote adversary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ooc_ben_or::harness::{
    balanced_inputs, run_decomposed, run_decomposed_with, split_adversary, BenOrConfig,
};
use std::hint::black_box;

fn bench_ben_or(c: &mut Criterion) {
    let mut group = c.benchmark_group("ben_or_rounds");
    group.sample_size(10);
    for n in [5usize, 9, 15] {
        let t = (n - 1) / 2;
        let cfg = BenOrConfig::new(n, t);
        let inputs = balanced_inputs(n);
        group.bench_with_input(BenchmarkId::new("random", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_decomposed(&cfg, &inputs, seed))
            })
        });
        group.bench_with_input(BenchmarkId::new("split_vote", n), &n, |b, _| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_decomposed_with(
                    &cfg,
                    &inputs,
                    seed,
                    Some(split_adversary(n, (1, 4), (25, 50))),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ben_or);
criterion_main!(benches);
