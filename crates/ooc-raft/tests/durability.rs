//! Crash-recovery durability: a node that granted a vote, crashed, and
//! restarted in the same term must not vote again — *provided its
//! `VotedFor` record survived the crash*. These tests pin the contract
//! from both sides: under `StoragePolicy::SyncAlways` the recovered
//! hardstate forbids a second ballot, and under `StoragePolicy::Amnesia`
//! the forgotten ballot produces a double-vote that the
//! [`DurabilityChecker`] catches — deterministically, so the failing
//! execution replays bit-for-bit.

use ooc_raft::harness::{run_raft, RaftClusterConfig, RaftRun};
use ooc_raft::{DurabilityChecker, RaftEvent};
use ooc_simnet::{
    FaultPlan, NetworkConfig, PartitionWindow, ProcessId, SimTime, StorageFaultPlan,
    StoragePolicy,
};

/// The crash-a-voter schedule the campaign's durability grid uses, built
/// directly: a quorum-blocking tail crash (p2), the victim killed right
/// after its first-term ballot (two callbacks: `on_start` + the first
/// `RequestVote`), then revived into an isolation window so its election
/// timer fires before it hears the cluster's current term.
fn crash_a_voter(victim: usize, policy: StoragePolicy, seed: u64) -> RaftRun {
    let n = 3;
    let mut network = NetworkConfig::reliable(2);
    network.partitions.push(PartitionWindow {
        from: SimTime::from_ticks(420),
        until: SimTime::from_ticks(1020),
        groups: vec![(0..n)
            .filter(|&p| p != victim && p != n - 1)
            .map(ProcessId)
            .collect()],
    });
    let cfg = RaftClusterConfig::new(n)
        .with_network(network)
        .with_faults(
            FaultPlan::new()
                .crash_at(ProcessId(n - 1), SimTime::from_ticks(5))
                .crash_after_events(ProcessId(victim), 2)
                .restart_at(ProcessId(victim), SimTime::from_ticks(420)),
        )
        .with_storage(StorageFaultPlan::uniform(policy));
    run_raft(&cfg, &[1, 2, 3], seed)
}

/// Whether `run`'s victim granted its first-term ballot to another node
/// — the precondition for a recovery-side double-vote.
fn victim_granted_a_rival(run: &RaftRun, victim: usize) -> bool {
    run.events[victim].iter().any(|e| {
        matches!(e, RaftEvent::VoteGranted { term, candidate }
            if term.0 == 1 && candidate.index() != victim)
    })
}

#[test]
fn synced_voter_never_double_votes_after_restart() {
    let mut granter_runs = 0;
    for victim in [0usize, 1] {
        for seed in 0..12 {
            let run = crash_a_voter(victim, StoragePolicy::SyncAlways, seed);
            if victim_granted_a_rival(&run, victim) {
                granter_runs += 1;
            }
            assert!(
                run.violations.is_empty(),
                "sync-always must survive the crash-a-voter schedule \
                 (victim={victim} seed={seed}): {:?}",
                run.violations
            );
            assert!(DurabilityChecker::check(&run.events).is_empty());
        }
    }
    assert!(
        granter_runs > 0,
        "at least one schedule must actually exercise a pre-crash ballot"
    );
}

#[test]
fn amnesiac_voter_double_votes_and_the_checker_catches_it() {
    let mut caught = 0;
    for victim in [0usize, 1] {
        for seed in 0..12 {
            let run = crash_a_voter(victim, StoragePolicy::Amnesia, seed);
            let flagged = DurabilityChecker::check(&run.events);
            if !victim_granted_a_rival(&run, victim) {
                // The victim was the first candidate itself: its re-vote
                // goes to the same node and is legitimately ignored.
                continue;
            }
            caught += 1;
            assert!(
                !flagged.is_empty(),
                "a forgotten ballot must surface as a double-vote \
                 (victim={victim} seed={seed})"
            );
            assert!(
                flagged[0].detail.contains("durability"),
                "unexpected violation: {:?}",
                flagged[0]
            );
            assert!(
                run.violations.iter().any(|v| v.detail.contains("durability")),
                "the harness must report what the checker reports"
            );
        }
    }
    assert!(caught > 0, "the schedule must produce at least one double-vote");
}

#[test]
fn the_double_vote_replays_bit_for_bit() {
    // Find one failing (victim, seed) pair, then re-run it twice and
    // require identical event streams and identical violation text —
    // the property that makes a campaign artifact reproducible.
    for victim in [0usize, 1] {
        for seed in 0..12 {
            let run = crash_a_voter(victim, StoragePolicy::Amnesia, seed);
            if run.violations.is_empty() {
                continue;
            }
            for _ in 0..2 {
                let replay = crash_a_voter(victim, StoragePolicy::Amnesia, seed);
                assert_eq!(replay.events, run.events, "event streams must replay");
                assert_eq!(
                    format!("{:?}", replay.violations),
                    format!("{:?}", run.violations),
                    "violations must replay verbatim"
                );
            }
            return;
        }
    }
    panic!("no double-vote found to replay");
}
