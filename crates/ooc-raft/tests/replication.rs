//! Multi-entry log replication: the paper only needs Raft for a single
//! `D&S` command, but the substrate is full Raft — these tests drive it
//! with real multi-entry workloads so batching, `NextIndex` backtracking
//! and restart catch-up are exercised for what they are.

use ooc_raft::{LogIndex, RaftConfig, RaftNode};
use ooc_simnet::{
    FaultPlan, NetworkConfig, ProcessId, RunLimit, Sim, SimTime,
};

fn cluster_with_workload(
    n: usize,
    workload_len: u64,
    seed: u64,
    faults: FaultPlan,
) -> Sim<RaftNode> {
    Sim::builder(NetworkConfig::reliable(5))
        .seed(seed)
        .faults(faults)
        .processes((0..n).map(|i| {
            RaftNode::new(i as u64, RaftConfig::default())
                .with_workload((0..workload_len).map(|k| 1000 + k).collect())
        }))
        .build()
}

/// Drains the workload: run until quiescent-ish time budget.
fn run_to_steady(sim: &mut Sim<RaftNode>, until: u64) {
    let mut limit = RunLimit::until_time(SimTime::from_ticks(until));
    limit.stop_when_all_decide = false;
    let _ = sim.run(limit);
}

#[test]
fn workload_replicates_to_all_logs() {
    for seed in 0..5 {
        let n = 3;
        let mut sim = cluster_with_workload(n, 8, seed, FaultPlan::default());
        run_to_steady(&mut sim, 5_000);
        // Some node led and proposed its 8 commands; logs must agree on
        // the full committed prefix and contain ≥ 9 entries (D&S + 8).
        let lens: Vec<usize> = (0..n).map(|i| sim.process(ProcessId(i)).log().len()).collect();
        let max_len = *lens.iter().max().unwrap();
        assert!(max_len >= 9, "seed {seed}: logs too short: {lens:?}");
        let min_commit = (0..n)
            .map(|i| sim.process(ProcessId(i)).commit_index())
            .min()
            .unwrap();
        assert!(
            min_commit >= LogIndex(9),
            "seed {seed}: commit index lagging: {min_commit:?}"
        );
        // Log matching over the committed prefix.
        for idx in 1..=min_commit.0 {
            let e0 = *sim.process(ProcessId(0)).log().get(LogIndex(idx)).unwrap();
            for i in 1..n {
                let ei = *sim.process(ProcessId(i)).log().get(LogIndex(idx)).unwrap();
                assert_eq!(e0, ei, "seed {seed}: mismatch at {idx}");
            }
        }
    }
}

#[test]
fn restarted_node_catches_up_on_long_logs() {
    for seed in 0..5 {
        let n = 3;
        // p2 sleeps through most of the workload and must backtrack-fetch
        // the whole suffix after recovery (batched, max_batch = 16).
        let faults = FaultPlan::new()
            .crash_at(ProcessId(2), SimTime::from_ticks(400))
            .restart_at(ProcessId(2), SimTime::from_ticks(6_000));
        let mut sim = cluster_with_workload(n, 20, seed, faults);
        run_to_steady(&mut sim, 15_000);
        let reference = sim
            .process(ProcessId(0))
            .log()
            .len()
            .max(sim.process(ProcessId(1)).log().len());
        assert!(reference >= 21, "seed {seed}: workload not proposed");
        let straggler = sim.process(ProcessId(2)).log();
        assert_eq!(
            straggler.len(),
            reference,
            "seed {seed}: straggler did not catch up"
        );
        // Entire logs (not just prefixes) must match once caught up.
        for idx in 1..=reference as u64 {
            assert_eq!(
                sim.process(ProcessId(0)).log().get(LogIndex(idx)),
                straggler.get(LogIndex(idx)),
                "seed {seed}: divergence at {idx}"
            );
        }
    }
}

#[test]
fn leader_change_mid_workload_preserves_log_matching() {
    for seed in 0..5 {
        let n = 5;
        // Rolling crashes force at least one leader change while the
        // workload is in flight.
        let faults = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(800))
            .restart_at(ProcessId(0), SimTime::from_ticks(4_000))
            .crash_at(ProcessId(1), SimTime::from_ticks(1_600))
            .restart_at(ProcessId(1), SimTime::from_ticks(5_000));
        let mut sim = cluster_with_workload(n, 10, seed, faults);
        run_to_steady(&mut sim, 20_000);
        // Committed prefixes must be consistent across every node pair.
        let min_commit = (0..n)
            .map(|i| sim.process(ProcessId(i)).commit_index())
            .min()
            .unwrap();
        assert!(min_commit >= LogIndex(1), "seed {seed}: nothing committed");
        for idx in 1..=min_commit.0 {
            let e0 = *sim.process(ProcessId(0)).log().get(LogIndex(idx)).unwrap();
            for i in 1..n {
                let ei = *sim.process(ProcessId(i)).log().get(LogIndex(idx)).unwrap();
                assert_eq!(e0, ei, "seed {seed}: committed prefix differs at {idx}");
            }
        }
        // Consensus decision (first entry) still agreed and valid.
        let d0 = sim.process(ProcessId(0)).decision();
        for i in 1..n {
            let di = sim.process(ProcessId(i)).decision();
            if let (Some(a), Some(b)) = (d0, di) {
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }
}

#[test]
fn lossy_network_replication_is_safe() {
    for seed in 0..5 {
        let n = 3;
        let mut sim = Sim::builder(NetworkConfig::lossy(1, 10, 0.1))
            .seed(seed)
            .processes((0..n).map(|i| {
                RaftNode::new(i as u64, RaftConfig::default())
                    .with_workload((0..6).map(|k| 500 + k).collect())
            }))
            .build();
        run_to_steady(&mut sim, 20_000);
        let min_commit = (0..n)
            .map(|i| sim.process(ProcessId(i)).commit_index())
            .min()
            .unwrap();
        for idx in 1..=min_commit.0 {
            let e0 = *sim.process(ProcessId(0)).log().get(LogIndex(idx)).unwrap();
            for i in 1..n {
                let ei = *sim.process(ProcessId(i)).log().get(LogIndex(idx)).unwrap();
                assert_eq!(e0, ei, "seed {seed}: committed prefix differs at {idx}");
            }
        }
    }
}
