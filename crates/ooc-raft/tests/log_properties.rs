//! Property-based tests of the replicated log — the operations behind
//! the paper's Log Matching property.

use ooc_raft::{DecideAndStop, LogEntry, LogIndex, RaftLog, Term};
use proptest::prelude::*;

fn entry_strategy() -> impl Strategy<Value = LogEntry> {
    (1u64..6, 0u64..8).prop_map(|(term, v)| LogEntry {
        term: Term(term),
        command: DecideAndStop(v),
    })
}

fn log_strategy() -> impl Strategy<Value = RaftLog> {
    proptest::collection::vec(entry_strategy(), 0..12).prop_map(|mut entries| {
        // Terms in a real log are non-decreasing; sort to respect that.
        entries.sort_by_key(|e| e.term);
        let mut log = RaftLog::new();
        for e in entries {
            log.push(e);
        }
        log
    })
}

proptest! {
    /// `install` is idempotent: re-installing the same batch changes
    /// nothing.
    #[test]
    fn install_is_idempotent(log in log_strategy(), batch in proptest::collection::vec(entry_strategy(), 0..6)) {
        let mut a = log.clone();
        let prev = a.last_index();
        a.install(prev, &batch);
        let once = a.clone();
        a.install(prev, &batch);
        prop_assert_eq!(a, once);
    }

    /// After `install(prev, batch)`, the log contains exactly `batch`
    /// at positions `prev+1 ..= prev+len`.
    #[test]
    fn install_places_batch(log in log_strategy(), batch in proptest::collection::vec(entry_strategy(), 1..6)) {
        let mut a = log.clone();
        let prev = a.last_index();
        let last = a.install(prev, &batch);
        prop_assert_eq!(last, LogIndex(prev.0 + batch.len() as u64));
        for (k, e) in batch.iter().enumerate() {
            prop_assert_eq!(a.get(LogIndex(prev.0 + 1 + k as u64)), Some(e));
        }
    }

    /// Install never touches the prefix before `prev`.
    #[test]
    fn install_preserves_prefix(log in log_strategy(), batch in proptest::collection::vec(entry_strategy(), 0..6), cut in 0usize..12) {
        let mut a = log.clone();
        let prev = LogIndex((cut as u64).min(a.last_index().0));
        let before: Vec<_> = (1..=prev.0).map(|i| *a.get(LogIndex(i)).unwrap()).collect();
        a.install(prev, &batch);
        for (k, e) in before.iter().enumerate() {
            prop_assert_eq!(a.get(LogIndex(k as u64 + 1)), Some(e));
        }
    }

    /// A conflicting entry truncates everything after it (the paper's
    /// "delete conflicting ones, if deleted delete all entries that
    /// follow as well").
    #[test]
    fn conflict_truncates_suffix(base in log_strategy(), v in 0u64..8) {
        prop_assume!(base.len() >= 2);
        let mut a = base.clone();
        // Overwrite index 1 with a higher term than anything present.
        let hi = Term(base.entries().iter().map(|e| e.term.0).max().unwrap_or(0) + 1);
        let conflict = LogEntry { term: hi, command: DecideAndStop(v) };
        let last = a.install(LogIndex::ZERO, &[conflict]);
        prop_assert_eq!(last, LogIndex(1));
        prop_assert_eq!(a.len(), 1, "suffix after the conflict must be gone");
        prop_assert_eq!(a.get(LogIndex(1)), Some(&conflict));
    }

    /// `matches` agrees with `term_at`, including the index-0 sentinel.
    #[test]
    fn matches_consistent_with_term_at(log in log_strategy(), idx in 0u64..14, term in 0u64..7) {
        let m = log.matches(LogIndex(idx), Term(term));
        let t = log.term_at(LogIndex(idx));
        prop_assert_eq!(m, t == Some(Term(term)));
    }

    /// `suffix` returns exactly the tail, capped.
    #[test]
    fn suffix_is_the_tail(log in log_strategy(), from in 1u64..14, cap in 0usize..6) {
        let s = log.suffix(LogIndex(from), cap);
        prop_assert!(s.len() <= cap);
        for (k, e) in s.iter().enumerate() {
            prop_assert_eq!(log.get(LogIndex(from + k as u64)), Some(e));
        }
        // Cap-respecting completeness: if fewer than `cap` returned, the
        // log must really end there.
        if s.len() < cap {
            prop_assert!(log.get(LogIndex(from + s.len() as u64)).is_none());
        }
    }

    /// The log-matching property itself: if two logs agree on (index,
    /// term) at some position after arbitrary installs from a common
    /// "leader" sequence, they agree on the whole prefix. We model the
    /// leader as a fixed entry sequence and two followers that install
    /// different (prefix-consistent) cuts of it.
    #[test]
    fn log_matching_after_leader_installs(
        leader in proptest::collection::vec(entry_strategy(), 1..10),
        cut_a in 0usize..10,
        cut_b in 0usize..10,
    ) {
        let mut leader_sorted = leader.clone();
        leader_sorted.sort_by_key(|e| e.term);
        let cut_a = cut_a.min(leader_sorted.len());
        let cut_b = cut_b.min(leader_sorted.len());
        let mut a = RaftLog::new();
        a.install(LogIndex::ZERO, &leader_sorted[..cut_a]);
        let mut b = RaftLog::new();
        b.install(LogIndex::ZERO, &leader_sorted[..cut_b]);
        let common = a.len().min(b.len()) as u64;
        for i in 1..=common {
            let (ea, eb) = (a.get(LogIndex(i)).unwrap(), b.get(LogIndex(i)).unwrap());
            if ea.term == eb.term {
                // Same origin sequence ⇒ entire prefix identical.
                for k in 1..=i {
                    prop_assert_eq!(a.get(LogIndex(k)), b.get(LogIndex(k)));
                }
            }
        }
    }
}
