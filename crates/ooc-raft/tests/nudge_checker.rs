//! Checker-pipeline coverage for the decentralized-Raft reconciliator.
//!
//! [`TimerNudge`] replaces Ben-Or's coin with Raft's randomized timers
//! (paper §4.3): every vacillator broadcasts `(priority, value)`, and when
//! its own timer fires it follows the highest-priority nudge heard so far.
//! In the common case — timers long enough that everyone hears everyone —
//! all vacillators leave with the *same* valid value, which is what makes
//! the next round converge. That common case is exactly an
//! agreement + validity + termination claim, so it is checked with the §2
//! consensus checkers over a hand-driven exchange; the degraded case (a
//! vacillator that heard nobody) is checked against round validity.

use ooc_core::checker::{
    check_consensus, check_termination, RoundEntry, RoundOutcomes,
};
use ooc_core::confidence::{Confidence, VacOutcome};
use ooc_core::objects::ReconciliatorObject;
use ooc_core::testkit::LoopbackNet;
use ooc_raft::decentralized::{Nudge, TimerNudge};
use ooc_simnet::ProcessId;

/// Runs one reconciliation among `sigmas.len()` vacillators: everyone
/// begins, every nudge is delivered to every peer, then each timer fires.
fn reconcile(sigmas: &[bool]) -> Vec<Option<bool>> {
    let n = sigmas.len();
    let mut objects: Vec<TimerNudge> = (0..n).map(|_| TimerNudge::new()).collect();
    let mut nets: Vec<LoopbackNet<Nudge>> =
        (0..n).map(|i| LoopbackNet::new(i, n, 100 + i as u64)).collect();
    for (i, obj) in objects.iter_mut().enumerate() {
        assert!(
            obj.begin(Confidence::Vacillate, sigmas[i], &mut nets[i]).is_none(),
            "the nudge waits for its timer"
        );
        assert_eq!(nets[i].sent.len(), n, "nudge broadcast reaches everyone");
        assert_eq!(nets[i].timers.len(), 1, "one election timeout armed");
    }
    for sender in 0..n {
        while let Some((to, msg)) = nets[sender].sent.pop_front() {
            let j = to.index();
            if j != sender {
                assert!(objects[j].on_message(ProcessId(sender), msg, &mut nets[j]).is_none());
            }
        }
    }
    objects
        .iter_mut()
        .enumerate()
        .map(|(i, obj)| {
            let timer = nets[i].timers[0].0;
            obj.on_timer(timer, &mut nets[i])
        })
        .collect()
}

#[test]
fn full_exchange_reaches_agreement_on_a_valid_value() {
    let sigmas = [true, false, true, false, true];
    let decisions = reconcile(&sigmas);
    let everyone: Vec<ProcessId> = (0..sigmas.len()).map(ProcessId).collect();
    assert!(
        check_termination(&everyone, &decisions).is_empty(),
        "every timer fires: {decisions:?}"
    );
    assert!(
        check_consensus(&sigmas, &decisions).is_empty(),
        "all vacillators follow the same highest-priority nudge: {decisions:?}"
    );
}

#[test]
fn unanimous_vacillators_keep_their_value() {
    // Every nudge carries `true`, so whichever priority wins the outcome
    // is forced — the reconciliator cannot invent a value.
    let decisions = reconcile(&[true, true, true]);
    assert_eq!(decisions, vec![Some(true); 3]);
    assert!(check_consensus(&[true, true, true], &decisions).is_empty());
}

#[test]
fn isolated_vacillator_falls_back_to_sigma_and_stays_valid() {
    // A vacillator that hears no nudges before its timeout must return its
    // own sigma (termination cannot wait on a quorum — only a subset of
    // the network vacillates). That fallback keeps round validity.
    let mut rec = TimerNudge::new();
    let mut net = LoopbackNet::<Nudge>::new(0, 4, 7);
    assert!(rec.begin(Confidence::Vacillate, true, &mut net).is_none());
    let timer = net.timers[0].0;
    let value = rec.on_timer(timer, &mut net).expect("timer completes the object");
    let round = RoundOutcomes {
        round: 1,
        entries: vec![RoundEntry {
            process: ProcessId(0),
            input: true,
            outcome: VacOutcome::vacillate(value),
        }],
        extra_inputs: Vec::new(),
    };
    assert!(round.check_validity().is_empty(), "{:?}", round.check_validity());
    assert!(value, "nobody outbid it, so sigma survives");
}
