//! Per-node Raft state — paper **Figure 2**, field for field.

use crate::log::RaftLog;
use crate::types::{LogIndex, Term};
use ooc_simnet::ProcessId;
use serde::{Deserialize, Serialize};

/// `State` — one of follower, candidate or leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Role {
    /// Passive replica; fields `NextIndex`/`MatchIndex` do not apply.
    #[default]
    Follower,
    /// Campaigning for leadership of `CurrentTerm`.
    Candidate,
    /// Leader of `CurrentTerm`.
    Leader,
}

/// State that survives crashes. [`RaftNode`](crate::RaftNode) writes it
/// to the simulator's stable storage through the
/// [`durable`](crate::durable) codecs on every mutation and rebuilds it
/// from whatever survived on restart; how much survives is the
/// [`StoragePolicy`](ooc_simnet::StoragePolicy)'s call.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PersistentState {
    /// `CurrentTerm`.
    pub current_term: Term,
    /// `VotedFor` — candidate voted for in the current term.
    pub voted_for: Option<ProcessId>,
    /// `Log[]` — indexed list of commands and their terms.
    pub log: RaftLog,
}

/// State lost on a crash.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolatileState {
    /// `CommitIndex` — all commands up to and including it may be applied.
    pub commit_index: LogIndex,
    /// `LastApplied` — last command applied to the state machine.
    pub last_applied: LogIndex,
    /// `State`.
    pub role: Role,
}

/// Leader-only bookkeeping (paper: "applies only while leader", rebuilt at
/// every election).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaderState {
    /// `NextIndex[]` — next log index to send to each processor.
    /// Initialized after election to the leader's last log entry + 1.
    pub next_index: Vec<LogIndex>,
    /// `MatchIndex[]` — highest log index known replicated on each
    /// processor. Initialized to 0.
    pub match_index: Vec<LogIndex>,
}

impl LeaderState {
    /// Fresh leader state for an `n`-processor cluster whose leader's log
    /// ends at `last`.
    pub fn new(n: usize, last: LogIndex) -> Self {
        LeaderState {
            next_index: vec![last.next(); n],
            match_index: vec![LogIndex::ZERO; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_state_initialization_matches_figure_two() {
        let ls = LeaderState::new(3, LogIndex(4));
        assert_eq!(ls.next_index, vec![LogIndex(5); 3]);
        assert_eq!(ls.match_index, vec![LogIndex::ZERO; 3]);
    }

    #[test]
    fn defaults_are_follower_at_term_zero() {
        let p = PersistentState::default();
        let v = VolatileState::default();
        assert_eq!(p.current_term, Term::ZERO);
        assert_eq!(p.voted_for, None);
        assert_eq!(v.role, Role::Follower);
        assert_eq!(v.commit_index, LogIndex::ZERO);
    }
}
