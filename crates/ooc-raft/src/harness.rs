//! Seeded experiment runners for Raft — shared by the integration tests
//! and the `ooc-bench` tables (T1, T6).

use crate::durable::DurabilityChecker;
use crate::events::RaftEvent;
use crate::message::RaftMsg;
use crate::node::{RaftConfig, RaftNode};
use crate::types::{LogIndex, Term};
use crate::vac_view;
use ooc_core::checker::{check_consensus, Violation, ViolationKind};
use ooc_simnet::{
    Adversary, FanoutKind, FaultPlan, NetworkConfig, ProcessId, RunLimit, RunOutcome, Sim,
    SimTime, StorageFaultPlan,
};
use std::collections::BTreeMap;

/// Parameters of a Raft cluster experiment.
#[derive(Debug, Clone)]
pub struct RaftClusterConfig {
    /// Cluster size.
    pub n: usize,
    /// Node timing knobs.
    pub raft: RaftConfig,
    /// Network behaviour.
    pub network: NetworkConfig,
    /// Crash/restart schedule.
    pub faults: FaultPlan,
    /// Per-node stable-storage crash policies.
    pub storage: StorageFaultPlan,
    /// Simulated-time budget.
    pub max_time: SimTime,
    /// Bounds engine trace capture to a ring of the most recent events
    /// (`None` = unbounded). Campaign sweeps set a small capacity since
    /// they never read happy-path traces; failures replay unbounded.
    pub trace_capacity: Option<usize>,
    /// Broadcast fan-out strategy of the engine. [`FanoutKind::Batched`]
    /// (the default) plans whole broadcasts in one pass; the
    /// per-recipient kind is kept as the A/B oracle. Byte-identical
    /// outcomes either way.
    pub fanout: FanoutKind,
}

impl RaftClusterConfig {
    /// A default reliable-network cluster of `n` nodes.
    pub fn new(n: usize) -> Self {
        RaftClusterConfig {
            n,
            raft: RaftConfig::default(),
            network: NetworkConfig::reliable(5),
            faults: FaultPlan::default(),
            storage: StorageFaultPlan::default(),
            max_time: SimTime::from_ticks(1_000_000),
            trace_capacity: None,
            fanout: FanoutKind::default(),
        }
    }

    /// Replaces the Raft timing configuration.
    pub fn with_raft(mut self, raft: RaftConfig) -> Self {
        self.raft = raft;
        self
    }

    /// Replaces the network configuration.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Replaces the storage-fault plan.
    pub fn with_storage(mut self, storage: StorageFaultPlan) -> Self {
        self.storage = storage;
        self
    }

    /// Bounds engine trace capture to a ring of the most recent
    /// `capacity` events. Observability-only: stats, metrics and
    /// decisions are byte-identical to an unbounded run.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects the engine's broadcast fan-out strategy. Observability of
    /// the knob is nil by contract: batched and per-recipient runs are
    /// byte-identical, only wall time differs.
    pub fn with_fanout(mut self, fanout: FanoutKind) -> Self {
        self.fanout = fanout;
        self
    }
}

/// Everything measured from one Raft execution.
#[derive(Debug)]
pub struct RaftRun {
    /// The engine-level outcome.
    pub outcome: RunOutcome<u64>,
    /// Per-node event streams.
    pub events: Vec<Vec<RaftEvent>>,
    /// Property violations (must be empty).
    pub violations: Vec<Violation>,
    /// Simulated time when the first leader emerged.
    pub first_leader_at: Option<SimTime>,
    /// The term of the first elected leader.
    pub first_leader_term: Option<Term>,
    /// Highest term reached by any node.
    pub max_term: Term,
    /// Total elections started across the cluster (reconciliator
    /// invocations, Algorithm 11).
    pub elections: usize,
}

impl RaftRun {
    /// Simulated time from start to the last decision.
    pub fn consensus_latency(&self) -> Option<SimTime> {
        self.outcome.last_decision_time()
    }
}

/// Runs a Raft cluster where node `i` proposes `inputs[i]`, then checks:
/// consensus agreement + validity, **Election Safety** (≤ 1 leader per
/// term), **Log Matching** over final logs, **Leader Completeness**
/// (committed entries appear in later leaders' logs), **State Machine
/// Safety** (applied index/value pairs agree), the paper's VAC
/// coherence laws over the Algorithm-10 records, and the
/// [`DurabilityChecker`]'s no-double-vote contract.
///
/// # Panics
/// Panics if `inputs.len() != cfg.n`.
pub fn run_raft(cfg: &RaftClusterConfig, inputs: &[u64], seed: u64) -> RaftRun {
    run_raft_with(cfg, inputs, seed, None)
}

/// Like [`run_raft`] but with a custom message-scheduling adversary —
/// the hook the campaign engine uses for targeted liveness attacks
/// (e.g. isolating each new leader just after election).
pub fn run_raft_with(
    cfg: &RaftClusterConfig,
    inputs: &[u64],
    seed: u64,
    adversary: Option<Box<dyn Adversary<RaftMsg>>>,
) -> RaftRun {
    assert_eq!(inputs.len(), cfg.n, "one input per node");
    let mut builder = Sim::builder(cfg.network.clone())
        .seed(seed)
        .fanout(cfg.fanout)
        .faults(cfg.faults.clone())
        .storage(cfg.storage.clone())
        .processes(inputs.iter().map(|&v| RaftNode::new(v, cfg.raft)));
    if let Some(adv) = adversary {
        builder = builder.adversary(adv);
    }
    if let Some(cap) = cfg.trace_capacity {
        builder = builder.trace_capacity(cap);
    }
    let mut sim = builder.build();
    let limit = RunLimit {
        max_time: cfg.max_time,
        ..RunLimit::default()
    };
    let outcome = sim.run(limit);

    let events: Vec<Vec<RaftEvent>> = (0..cfg.n)
        .map(|i| sim.process(ProcessId(i)).events().to_vec())
        .collect();
    let mut violations = check_consensus(inputs, &outcome.decisions);

    // Election Safety: at most one leader per term.
    let mut leaders: BTreeMap<Term, Vec<ProcessId>> = BTreeMap::new();
    for (i, evs) in events.iter().enumerate() {
        for e in evs {
            if let RaftEvent::BecameLeader { term } = e {
                leaders.entry(*term).or_default().push(ProcessId(i));
            }
        }
    }
    for (term, who) in &leaders {
        if who.len() > 1 {
            violations.push(Violation {
                kind: ViolationKind::Agreement,
                round: Some(term.0),
                detail: format!("election safety: {term} had leaders {who:?}"),
            });
        }
    }

    // Log Matching: same (index, term) ⇒ identical prefixes.
    for i in 0..cfg.n {
        for j in (i + 1)..cfg.n {
            let a = sim.process(ProcessId(i)).log();
            let b = sim.process(ProcessId(j)).log();
            let common = a.len().min(b.len()) as u64;
            for idx in (1..=common).rev() {
                let (ia, ib) = (
                    a.get(LogIndex(idx)).unwrap(),
                    b.get(LogIndex(idx)).unwrap(),
                );
                if ia.term == ib.term {
                    // Everything up to idx must match.
                    for k in 1..=idx {
                        let (ka, kb) =
                            (a.get(LogIndex(k)).unwrap(), b.get(LogIndex(k)).unwrap());
                        if ka != kb {
                            violations.push(Violation {
                                kind: ViolationKind::Agreement,
                                round: None,
                                detail: format!(
                                    "log matching: p{i}/p{j} agree at #{idx} but differ at #{k}"
                                ),
                            });
                        }
                    }
                    break;
                }
            }
        }
    }

    // State Machine Safety: applied (index, value) pairs agree.
    let mut applied: BTreeMap<LogIndex, (ProcessId, u64)> = BTreeMap::new();
    for (i, evs) in events.iter().enumerate() {
        for e in evs {
            if let RaftEvent::Applied { index, value } = e {
                match applied.get(index) {
                    None => {
                        applied.insert(*index, (ProcessId(i), *value));
                    }
                    Some((p0, v0)) if v0 != value => {
                        violations.push(Violation {
                            kind: ViolationKind::Agreement,
                            round: None,
                            detail: format!(
                                "state machine safety: {p0} applied {v0} at {index} but p{i} applied {value}"
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
    }

    // Leader Completeness: an entry committed in term T is in the log of
    // every leader of a term > T (checked against final logs; a later
    // leader that crashed before we sampled still held it while leading,
    // and persistent logs survive crashes here).
    let mut commits: Vec<(Term, LogIndex, u64)> = Vec::new();
    for evs in &events {
        for e in evs {
            if let RaftEvent::Committed {
                term,
                index,
                value,
                ..
            } = e
            {
                commits.push((*term, *index, *value));
            }
        }
    }
    for (term, who) in &leaders {
        for leader in who {
            let log = sim.process(*leader).log();
            for &(ct, idx, v) in &commits {
                if ct < *term {
                    match log.get(idx) {
                        Some(entry) if entry.command.0 == v => {}
                        _ => violations.push(Violation {
                            kind: ViolationKind::Agreement,
                            round: Some(term.0),
                            detail: format!(
                                "leader completeness: {leader} leads {term} without entry {idx}={v} committed in {ct}"
                            ),
                        }),
                    }
                }
            }
        }
    }

    // Paper Algorithm 10 coherence over the recorded VAC transitions.
    let outcomes: Vec<(ProcessId, BTreeMap<Term, ooc_core::VacOutcome<u64>>)> = events
        .iter()
        .enumerate()
        .map(|(i, evs)| (ProcessId(i), vac_view::per_term_outcomes(evs)))
        .collect();
    violations.extend(vac_view::check_vac_coherence(&outcomes));
    violations.extend(vac_view::check_commit_agreement(&outcomes));

    // Durability: no node granted its vote to two candidates in one term
    // (possible only when a lossy StoragePolicy erased VotedFor).
    violations.extend(DurabilityChecker::check(&events));

    // Election latency metrics, from per-node instrumentation.
    let first_leader_at = (0..cfg.n)
        .filter_map(|i| sim.process(ProcessId(i)).first_led_at())
        .min();
    let first_leader_term = events
        .iter()
        .flat_map(|evs| {
            evs.iter().filter_map(|e| match e {
                RaftEvent::BecameLeader { term } => Some(*term),
                _ => None,
            })
        })
        .min();
    let max_term = (0..cfg.n)
        .map(|i| sim.process(ProcessId(i)).current_term())
        .max()
        .unwrap_or(Term::ZERO);
    let elections = events
        .iter()
        .map(|evs| vac_view::reconciliator_invocations(evs))
        .sum();

    RaftRun {
        outcome,
        events,
        violations,
        first_leader_at,
        first_leader_term,
        max_term,
        elections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_cluster_is_clean_across_seeds() {
        let cfg = RaftClusterConfig::new(5);
        for seed in 0..10 {
            let run = run_raft(&cfg, &[1, 2, 3, 4, 5], seed);
            assert!(run.outcome.all_decided(), "seed {seed}");
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            assert!(run.elections >= 1);
        }
    }

    #[test]
    fn lossy_network_still_safe() {
        let cfg = RaftClusterConfig::new(5).with_network(NetworkConfig::lossy(1, 10, 0.1));
        for seed in 0..5 {
            let run = run_raft(&cfg, &[9, 9, 9, 9, 9], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            if run.outcome.decided_count() > 0 {
                assert_eq!(run.outcome.decided_value(), Some(9), "validity");
            }
        }
    }

    #[test]
    fn minority_crash_cluster_is_clean() {
        let cfg = RaftClusterConfig::new(5).with_faults(
            FaultPlan::new().crash_tail(5, 2, SimTime::from_ticks(200)),
        );
        for seed in 0..5 {
            let run = run_raft(&cfg, &[1, 2, 3, 4, 5], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            for i in 0..3 {
                assert!(run.outcome.decisions[i].is_some(), "seed {seed}: p{i}");
            }
        }
    }

    #[test]
    fn partition_heals_and_decides() {
        use ooc_simnet::PartitionWindow;
        let mut network = NetworkConfig::reliable(5);
        network.partitions = vec![PartitionWindow {
            from: SimTime::ZERO,
            until: SimTime::from_ticks(2_000),
            groups: vec![
                vec![ProcessId(0), ProcessId(1)],
                vec![ProcessId(2), ProcessId(3), ProcessId(4)],
            ],
        }];
        let cfg = RaftClusterConfig::new(5).with_network(network);
        for seed in 0..5 {
            let run = run_raft(&cfg, &[1, 2, 3, 4, 5], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            assert!(run.outcome.all_decided(), "seed {seed}: heal ⇒ decide");
            // The majority side must have decided during the partition on
            // one of its own values.
            let v = run.outcome.decided_value().unwrap();
            assert!([3, 4, 5].contains(&v), "seed {seed}: majority value, got {v}");
        }
    }

    #[test]
    fn explicit_sync_always_plan_matches_default_run() {
        use ooc_simnet::StoragePolicy;
        let base = RaftClusterConfig::new(3).with_faults(
            FaultPlan::new()
                .crash_at(ProcessId(2), SimTime::from_ticks(400))
                .restart_at(ProcessId(2), SimTime::from_ticks(1200)),
        );
        let explicit = base
            .clone()
            .with_storage(StorageFaultPlan::uniform(StoragePolicy::SyncAlways));
        for seed in 0..3 {
            let a = run_raft(&base, &[1, 2, 3], seed);
            let b = run_raft(&explicit, &[1, 2, 3], seed);
            assert_eq!(a.outcome.decisions, b.outcome.decisions, "seed {seed}");
            assert_eq!(a.events, b.events, "seed {seed}");
            assert!(a.violations.is_empty(), "seed {seed}: {:?}", a.violations);
        }
    }

    #[test]
    #[should_panic(expected = "one input per node")]
    fn input_arity_checked() {
        let cfg = RaftClusterConfig::new(3);
        let _ = run_raft(&cfg, &[1], 0);
    }
}
