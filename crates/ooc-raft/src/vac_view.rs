//! The VAC view of Raft (paper Algorithms 10–11) and its checkers.
//!
//! §4.3 maps each Raft **term** to a template round and classifies every
//! node's experience of the term:
//!
//! * **vacillate** — saw no evidence a leader was chosen;
//! * **adopt** — won the election, or accepted a first-kind
//!   `AppendEntries` (entries, no commit movement): "all other processors
//!   which received such a message received it with the same value";
//! * **commit** — moved the commit index (second-kind `AppendEntries`, or
//!   the leader's own majority): consensus has been reached.
//!
//! [`RaftNode`](crate::RaftNode) records these transitions as
//! [`RaftEvent::VacTransition`]s; this module folds them into per-term
//! outcomes and checks the two coherence laws.
//!
//! ### A scope note the paper makes in passing
//!
//! Lemma 7's proof covers "processors which have not failed during the
//! term". A node that *times out* of term `T` (its reconciliator fires)
//! behaves, for `T`'s coherence accounting, like a processor that failed
//! during the term: it may sit at vacillate while the leader commits.
//! The checkers below therefore verify:
//!
//! * **value coherence** — all adopt/commit records of one term carry one
//!   value (this is unconditional);
//! * **commit coherence** — if some node committed in term `T`, every
//!   *adopt-or-commit* record of `T` carries the committed value;
//! * **convergence is *not* checked** for leader-based Raft — the paper
//!   itself concedes it "does not hold as is" (§4.3) and offers the
//!   [`decentralized`](crate::decentralized) variant instead, where we do
//!   check it.

use crate::events::RaftEvent;
use crate::types::Term;
use ooc_core::checker::{Violation, ViolationKind};
use ooc_core::{Confidence, VacOutcome};
use ooc_simnet::ProcessId;
use std::collections::BTreeMap;

/// One node's final VAC outcome for each term it participated in.
///
/// Within a term a node's confidence only ever increases (vacillate →
/// adopt → commit), so the fold keeps the highest.
pub fn per_term_outcomes(events: &[RaftEvent]) -> BTreeMap<Term, VacOutcome<u64>> {
    let mut map: BTreeMap<Term, VacOutcome<u64>> = BTreeMap::new();
    for e in events {
        if let RaftEvent::VacTransition {
            term,
            confidence,
            value,
        } = e
        {
            let entry = map.entry(*term).or_insert(VacOutcome {
                confidence: *confidence,
                value: *value,
            });
            if *confidence >= entry.confidence {
                *entry = VacOutcome {
                    confidence: *confidence,
                    value: *value,
                };
            }
        }
    }
    map
}

/// Number of reconciliator invocations (Algorithm 11 = election-timer
/// expiries) in the event stream.
pub fn reconciliator_invocations(events: &[RaftEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, RaftEvent::ElectionStarted { .. }))
        .count()
}

/// Checks the VAC coherence laws over all nodes' per-term outcomes.
pub fn check_vac_coherence(
    outcomes: &[(ProcessId, BTreeMap<Term, VacOutcome<u64>>)],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut terms: BTreeMap<Term, Vec<(ProcessId, VacOutcome<u64>)>> = BTreeMap::new();
    for (pid, map) in outcomes {
        for (term, out) in map {
            terms.entry(*term).or_default().push((*pid, *out));
        }
    }
    for (term, entries) in terms {
        let committed: Vec<&(ProcessId, VacOutcome<u64>)> = entries
            .iter()
            .filter(|(_, o)| o.confidence == Confidence::Commit)
            .collect();
        let adopted_or_committed: Vec<&(ProcessId, VacOutcome<u64>)> = entries
            .iter()
            .filter(|(_, o)| o.confidence >= Confidence::Adopt)
            .collect();
        // Value coherence among adopt/commit records (both laws' shared
        // core: first-kind AppendEntries of one term carry one value).
        if let Some((p0, o0)) = adopted_or_committed.first() {
            for (p, o) in &adopted_or_committed {
                if o.value != o0.value {
                    violations.push(Violation {
                        kind: if committed.is_empty() {
                            ViolationKind::CoherenceVacillateAdopt
                        } else {
                            ViolationKind::CoherenceAdoptCommit
                        },
                        round: Some(term.0),
                        detail: format!(
                            "{p0} held ({}, {}) but {p} held ({}, {}) in {term}",
                            o0.confidence, o0.value, o.confidence, o.value
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Checks that all committed values across the whole run agree — the
/// consensus-level consequence of Leader Completeness + State Machine
/// Safety that the paper's Lemma 6 leans on.
pub fn check_commit_agreement(
    outcomes: &[(ProcessId, BTreeMap<Term, VacOutcome<u64>>)],
) -> Vec<Violation> {
    let mut commits: Vec<(ProcessId, Term, u64)> = Vec::new();
    for (pid, map) in outcomes {
        for (term, out) in map {
            if out.confidence == Confidence::Commit {
                commits.push((*pid, *term, out.value));
            }
        }
    }
    let mut violations = Vec::new();
    if let Some(&(p0, t0, v0)) = commits.first() {
        for &(p, t, v) in &commits[1..] {
            if v != v0 {
                violations.push(Violation {
                    kind: ViolationKind::Agreement,
                    round: None,
                    detail: format!(
                        "{p0} committed {v0} in {t0} but {p} committed {v} in {t}"
                    ),
                });
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vt(term: u64, confidence: Confidence, value: u64) -> RaftEvent {
        RaftEvent::VacTransition {
            term: Term(term),
            confidence,
            value,
        }
    }

    #[test]
    fn fold_keeps_highest_confidence() {
        let events = vec![
            vt(1, Confidence::Vacillate, 5),
            vt(1, Confidence::Adopt, 7),
            vt(1, Confidence::Commit, 7),
            vt(2, Confidence::Vacillate, 7),
        ];
        let map = per_term_outcomes(&events);
        assert_eq!(map[&Term(1)], VacOutcome::commit(7));
        assert_eq!(map[&Term(2)], VacOutcome::vacillate(7));
    }

    #[test]
    fn coherent_terms_pass() {
        let a = per_term_outcomes(&[vt(1, Confidence::Commit, 7)]);
        let b = per_term_outcomes(&[vt(1, Confidence::Adopt, 7)]);
        let c = per_term_outcomes(&[vt(1, Confidence::Vacillate, 3)]);
        let v = check_vac_coherence(&[
            (ProcessId(0), a),
            (ProcessId(1), b),
            (ProcessId(2), c),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn conflicting_adopts_flagged() {
        let a = per_term_outcomes(&[vt(1, Confidence::Adopt, 7)]);
        let b = per_term_outcomes(&[vt(1, Confidence::Adopt, 8)]);
        let v = check_vac_coherence(&[(ProcessId(0), a), (ProcessId(1), b)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::CoherenceVacillateAdopt);
    }

    #[test]
    fn adopt_conflicting_with_commit_flagged() {
        let a = per_term_outcomes(&[vt(2, Confidence::Commit, 7)]);
        let b = per_term_outcomes(&[vt(2, Confidence::Adopt, 8)]);
        let v = check_vac_coherence(&[(ProcessId(0), a), (ProcessId(1), b)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::CoherenceAdoptCommit);
    }

    #[test]
    fn cross_term_commit_disagreement_flagged() {
        let a = per_term_outcomes(&[vt(1, Confidence::Commit, 7)]);
        let b = per_term_outcomes(&[vt(3, Confidence::Commit, 9)]);
        let v = check_commit_agreement(&[(ProcessId(0), a), (ProcessId(1), b)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Agreement);
    }

    #[test]
    fn reconciliator_count() {
        let events = vec![
            RaftEvent::ElectionStarted { term: Term(1) },
            vt(1, Confidence::Vacillate, 0),
            RaftEvent::ElectionStarted { term: Term(2) },
        ];
        assert_eq!(reconciliator_invocations(&events), 2);
    }
}
