//! The Raft wire messages — paper **Figure 1**, field for field.
//!
//! One pragmatic addition over the figure: `AckAppendEntries` carries the
//! `match_index` the follower's log reached. The paper's leader responses
//! (Algorithm 8) say "update NextIndex\[i\] and MatchIndex\[i\]", which
//! requires knowing *which* prefix the ack confirms; real implementations
//! either correlate request/response pairs or put the index in the ack.
//! We do the latter.

use crate::types::{LogEntry, LogIndex, Term};
use ooc_simnet::ProcessId;
use serde::{Deserialize, Serialize};

/// `RequestVote[term, candidateId, lastLogIndex, lastLogTerm]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestVote {
    /// The candidate's term.
    pub term: Term,
    /// The candidate asking for the vote.
    pub candidate_id: ProcessId,
    /// Index of the candidate's last log entry.
    pub last_log_index: LogIndex,
    /// Term of the candidate's last log entry.
    pub last_log_term: Term,
}

/// `ack_RequestVote[term, voteGranted]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckRequestVote {
    /// The responder's current term.
    pub term: Term,
    /// Whether the vote was granted.
    pub vote_granted: bool,
}

/// `AppendEntries[term, leaderId, prevLogIndex, prevLogTerm, D&S(v),
/// leaderCommit]`.
///
/// The paper's "first kind" carries entries; the "second kind" carries
/// none and only moves the commit index (§4.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppendEntries {
    /// The leader's term.
    pub term: Term,
    /// The leader's id.
    pub leader_id: ProcessId,
    /// Index of the entry preceding the new ones.
    pub prev_log_index: LogIndex,
    /// Term of that entry.
    pub prev_log_term: Term,
    /// The entries to append (empty for heartbeats / commit bumps).
    pub entries: Vec<LogEntry>,
    /// The leader's commit index.
    pub leader_commit: LogIndex,
}

impl AppendEntries {
    /// Whether this is the paper's "second kind": no entries, pure
    /// commit-index/heartbeat traffic.
    pub fn is_commit_kind(&self) -> bool {
        self.entries.is_empty()
    }
}

/// `ack_AppendEntries[term, success]` (+ the confirmed `match_index`, see
/// the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckAppendEntries {
    /// The responder's current term.
    pub term: Term,
    /// Whether the append was accepted.
    pub success: bool,
    /// Highest log index the follower's log matches the leader's up to
    /// (meaningful when `success`).
    pub match_index: LogIndex,
}

/// The Raft message union used on the simulated network.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaftMsg {
    /// A vote solicitation.
    RequestVote(RequestVote),
    /// A vote reply.
    AckRequestVote(AckRequestVote),
    /// Log replication / heartbeat / commit-bump.
    AppendEntries(AppendEntries),
    /// A replication reply.
    AckAppendEntries(AckAppendEntries),
}

impl RaftMsg {
    /// The term the message was sent in.
    pub fn term(&self) -> Term {
        match self {
            RaftMsg::RequestVote(m) => m.term,
            RaftMsg::AckRequestVote(m) => m.term,
            RaftMsg::AppendEntries(m) => m.term,
            RaftMsg::AckAppendEntries(m) => m.term,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecideAndStop;

    #[test]
    fn commit_kind_detection() {
        let base = AppendEntries {
            term: Term(1),
            leader_id: ProcessId(0),
            prev_log_index: LogIndex(0),
            prev_log_term: Term(0),
            entries: vec![],
            leader_commit: LogIndex(0),
        };
        assert!(base.is_commit_kind());
        let with_entries = AppendEntries {
            entries: vec![LogEntry {
                term: Term(1),
                command: DecideAndStop(4),
            }],
            ..base
        };
        assert!(!with_entries.is_commit_kind());
    }

    #[test]
    fn term_extraction_covers_all_variants() {
        let rv = RaftMsg::RequestVote(RequestVote {
            term: Term(3),
            candidate_id: ProcessId(1),
            last_log_index: LogIndex(0),
            last_log_term: Term(0),
        });
        assert_eq!(rv.term(), Term(3));
        let ack = RaftMsg::AckRequestVote(AckRequestVote {
            term: Term(4),
            vote_granted: true,
        });
        assert_eq!(ack.term(), Term(4));
        let aa = RaftMsg::AckAppendEntries(AckAppendEntries {
            term: Term(5),
            success: false,
            match_index: LogIndex(0),
        });
        assert_eq!(aa.term(), Term(5));
    }
}
