//! # ooc-raft
//!
//! A complete Raft implementation (Ongaro & Ousterhout '14) built as the
//! substrate for paper §4.3, which uses Raft as **single-shot consensus**
//! via the `D&S(v)` (*decide-and-stop*) command, and decomposes it into a
//! vacillate-adopt-commit object plus a timer reconciliator.
//!
//! What's here:
//!
//! * [`RaftNode`] — the full protocol: randomized election timers, terms,
//!   `RequestVote`/`AppendEntries` exactly as the paper's **Figure 1**
//!   ([`message`]), node state exactly as **Figure 2** ([`state`]), log
//!   replication with `NextIndex`/`MatchIndex` backtracking, commit-index
//!   advancement, crash/restart with persistent state — Algorithms 7–9.
//! * [`durable`] — the on-"disk" encoding of that persistent state over
//!   the simulator's [`StableStore`](ooc_simnet::StableStore), WAL-style
//!   recovery that tolerates torn final records, and the
//!   [`DurabilityChecker`] that flags double votes when a lossy
//!   [`StoragePolicy`](ooc_simnet::StoragePolicy) erases `VotedFor`.
//! * [`vac_view`] — the decomposition: every node records its per-term
//!   `(X, σ)` transitions per **Algorithm 10** (vacillate on election,
//!   adopt on first-kind `AppendEntries` / on winning an election, commit
//!   on commit-index movement) and its reconciliator invocations per
//!   **Algorithm 11** (timer expiry, term bump). The module checks the
//!   VAC laws over those records.
//! * [`decentralized`] — the leaderless variant the paper sketches at the
//!   end of §4.3 ("everyone broadcasts the command they want logged…"),
//!   which the paper observes collapses into Ben-Or with a different
//!   reconciliator. We pair Ben-Or's VAC with a *timer-flavored*
//!   [`decentralized::TimerNudge`] reconciliator and get a convergent,
//!   leaderless Raft-alike.
//! * [`harness`] — experiment runners: consensus latency, election
//!   latency vs. timeout spread (the timing property, T6), and checkers
//!   for Election Safety, Log Matching, Leader Completeness and State
//!   Machine Safety over recorded runs.
//!
//! ## Quick start
//!
//! ```
//! use ooc_raft::harness::{run_raft, RaftClusterConfig};
//!
//! let cfg = RaftClusterConfig::new(3);
//! let run = run_raft(&cfg, &[10, 20, 30], 7);
//! assert!(run.outcome.agreement());
//! assert!(run.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decentralized;
pub mod durable;
pub mod events;
pub mod harness;
pub mod log;
pub mod message;
pub mod node;
pub mod state;
pub mod types;
pub mod vac_view;

pub use durable::DurabilityChecker;
pub use events::RaftEvent;
pub use harness::{run_raft, run_raft_with, RaftClusterConfig, RaftRun};
pub use log::RaftLog;
pub use message::{AckAppendEntries, AckRequestVote, AppendEntries, RaftMsg, RequestVote};
pub use node::{RaftConfig, RaftNode};
pub use state::{LeaderState, PersistentState, Role, VolatileState};
pub use types::{DecideAndStop, LogEntry, LogIndex, Term};
