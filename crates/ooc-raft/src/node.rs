//! The Raft node — paper Algorithms 7 (consensus protocol), 8 (leader
//! responses) and 9 (across-state responses), as an event-driven process
//! on the asynchronous engine.
//!
//! Consensus reduction (§4.3): the log carries only `D&S(v)` commands.
//! A node that becomes leader of an empty log proposes its own input; the
//! state machine decides the value of the first applied entry and ignores
//! everything after it. Terms play the role of template rounds; the
//! randomized election timer is the reconciliator (Algorithm 11).

// Raft tolerates a crash-stop minority: every quorum below is a strict
// majority, so two quorums always intersect in a live node. Declared for
// ooc-lint's quorum-arithmetic check (contrast 3t < n in ooc-phase-king).
// ooc-lint::resilience(2 * t < n)

use crate::durable;
use crate::events::RaftEvent;
use crate::message::{AckAppendEntries, AckRequestVote, AppendEntries, RaftMsg, RequestVote};
use crate::state::{LeaderState, PersistentState, Role, VolatileState};
use crate::types::{DecideAndStop, LogEntry, LogIndex, Term};
use ooc_core::Confidence;
use ooc_simnet::{Context, Process, ProcessId, SimDuration, TimerId};
use std::collections::BTreeSet;

/// Timing knobs. All values are simulator ticks; the paper's *timing
/// property* requires `broadcast time ≪ election timeout ≪ MTBF`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaftConfig {
    /// Election timeout drawn uniformly from this inclusive range.
    pub election_timeout: (u64, u64),
    /// Leader heartbeat period.
    pub heartbeat_interval: u64,
    /// Cap on entries per AppendEntries (catch-up batching).
    pub max_batch: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout: (150, 300),
            heartbeat_interval: 50,
            max_batch: 16,
        }
    }
}

impl RaftConfig {
    /// Draws a fresh randomized election timeout.
    fn sample_timeout(&self, rng: &mut ooc_simnet::SplitMix64) -> SimDuration {
        let (lo, hi) = self.election_timeout;
        SimDuration::from_ticks(rng.range_inclusive(lo.max(1), hi.max(lo.max(1))))
    }
}

type Ctx<'a, 'b> = Context<'b, RaftMsg, u64>;

/// A Raft processor proposing `input` through the `D&S` reduction.
///
/// Persistence: every mutation of [`PersistentState`] is written through
/// the [`durable`] codecs to the process's simulated stable storage, but
/// the node never issues an explicit
/// [`sync_storage`](ooc_simnet::Context::sync_storage) — it models a
/// deployment that trusts the OS to flush. Under the default
/// [`SyncAlways`](ooc_simnet::StoragePolicy::SyncAlways) policy that
/// trust is justified and restarts recover full state; under a lossy
/// policy the `VotedFor` record can vanish in a crash, re-enabling the
/// double-vote that breaks Election Safety (see
/// [`DurabilityChecker`](crate::DurabilityChecker)).
#[derive(Debug)]
pub struct RaftNode {
    config: RaftConfig,
    input: u64,
    /// Extra commands this node proposes while leading (one per
    /// heartbeat), for multi-entry replication workloads. The `D&S`
    /// state machine ignores everything after the first entry, but the
    /// log must still replicate them with full Raft guarantees.
    workload: Vec<u64>,
    persistent: PersistentState,
    volatile: VolatileState,
    leader: LeaderState,
    votes: BTreeSet<ProcessId>,
    election_timer: Option<TimerId>,
    heartbeat_timer: Option<TimerId>,
    decided: Option<u64>,
    /// Simulated instant this node first won an election.
    first_led_at: Option<ooc_simnet::SimTime>,
    events: Vec<RaftEvent>,
}

impl RaftNode {
    /// Creates a node proposing `input`.
    pub fn new(input: u64, config: RaftConfig) -> Self {
        RaftNode {
            config,
            input,
            workload: Vec::new(),
            persistent: PersistentState::default(),
            volatile: VolatileState::default(),
            leader: LeaderState::default(),
            votes: BTreeSet::new(),
            election_timer: None,
            heartbeat_timer: None,
            decided: None,
            first_led_at: None,
            events: Vec::new(),
        }
    }

    /// Adds a stream of extra commands this node will append to the log
    /// while it is leader (one per heartbeat), to exercise multi-entry
    /// replication. The consensus decision is unaffected (`D&S`
    /// semantics: only the first log entry decides).
    pub fn with_workload(mut self, commands: Vec<u64>) -> Self {
        // Proposed in push order.
        self.workload = commands.into_iter().rev().collect();
        self
    }

    /// Commands not yet proposed from the workload.
    pub fn workload_remaining(&self) -> usize {
        self.workload.len()
    }

    /// The node's current term.
    pub fn current_term(&self) -> Term {
        self.persistent.current_term
    }

    /// The node's current role.
    pub fn role(&self) -> Role {
        self.volatile.role
    }

    /// The node's log.
    pub fn log(&self) -> &crate::log::RaftLog {
        &self.persistent.log
    }

    /// The node's commit index.
    pub fn commit_index(&self) -> LogIndex {
        self.volatile.commit_index
    }

    /// The decided value, if the state machine applied `D&S`.
    pub fn decision(&self) -> Option<u64> {
        self.decided
    }

    /// The instrumentation event stream.
    pub fn events(&self) -> &[RaftEvent] {
        &self.events
    }

    /// When this node first became a leader, if ever.
    pub fn first_led_at(&self) -> Option<ooc_simnet::SimTime> {
        self.first_led_at
    }

    /// `log[lastLogIndex].value`, falling back to the node's input while
    /// the log is empty — the `v*` of Algorithms 7 and 10.
    fn last_value(&self) -> u64 {
        self.persistent
            .log
            .get(self.persistent.log.last_index())
            .map(|e| e.command.0)
            .unwrap_or(self.input)
    }

    fn record_vac(&mut self, confidence: Confidence) {
        self.events.push(RaftEvent::VacTransition {
            term: self.persistent.current_term,
            confidence,
            value: self.last_value(),
        });
    }

    fn reset_election_timer(&mut self, ctx: &mut Ctx<'_, '_>) {
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
        let d = self.config.sample_timeout(ctx.rng());
        self.election_timer = Some(ctx.set_timer(d));
    }

    fn freeze_election_timer(&mut self, ctx: &mut Ctx<'_, '_>) {
        // Algorithm 10: "Freeze timer T" once leadership is won.
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
    }

    /// Steps down to follower because a higher term was observed.
    fn step_down(&mut self, term: Term, ctx: &mut Ctx<'_, '_>) {
        self.persistent.current_term = term;
        self.persistent.voted_for = None;
        durable::persist_hardstate(ctx, &self.persistent);
        if self.volatile.role != Role::Follower {
            self.events.push(RaftEvent::SteppedDown { term });
        }
        self.volatile.role = Role::Follower;
        self.votes.clear();
        if let Some(t) = self.heartbeat_timer.take() {
            ctx.cancel_timer(t);
        }
        self.reset_election_timer(ctx);
    }

    /// Algorithm 11 (the reconciliator) + the tail of Algorithm 9:
    /// "if Timer T runs out: initialize T randomly, increment term and
    /// start algorithm 7".
    fn start_election(&mut self, ctx: &mut Ctx<'_, '_>) {
        self.persistent.current_term = self.persistent.current_term.next();
        self.persistent.voted_for = Some(ctx.me());
        durable::persist_hardstate(ctx, &self.persistent);
        self.volatile.role = Role::Candidate;
        self.votes.clear();
        self.votes.insert(ctx.me());
        self.events.push(RaftEvent::ElectionStarted {
            term: self.persistent.current_term,
        });
        // A candidacy casts a VotedFor=self ballot; record it like any
        // other grant so the `DurabilityChecker` can compare it against
        // ballots the node cast before a crash.
        self.events.push(RaftEvent::VoteGranted {
            term: self.persistent.current_term,
            candidate: ctx.me(),
        });
        self.record_vac(Confidence::Vacillate);
        self.reset_election_timer(ctx);
        let msg = RaftMsg::RequestVote(RequestVote {
            term: self.persistent.current_term,
            candidate_id: ctx.me(),
            last_log_index: self.persistent.log.last_index(),
            last_log_term: self.persistent.log.last_term(),
        });
        ctx.broadcast_others(msg);
        if ctx.n() == 1 {
            // Degenerate single-node cluster: immediate leadership.
            self.become_leader(ctx);
        }
    }

    fn become_leader(&mut self, ctx: &mut Ctx<'_, '_>) {
        self.volatile.role = Role::Leader;
        if self.first_led_at.is_none() {
            self.first_led_at = Some(ctx.now());
        }
        self.leader = LeaderState::new(ctx.n(), self.persistent.log.last_index());
        self.events.push(RaftEvent::BecameLeader {
            term: self.persistent.current_term,
        });
        self.freeze_election_timer(ctx);
        // Consensus reduction: the new leader proposes v* ← log[last]
        // (its own input while the log is empty — Algorithm 7). A leader
        // whose log ends in an *older* term must re-propose v* in its own
        // term: Raft's commit rule only fires on current-term entries, so
        // without a fresh entry a leader elected over deposed leaders'
        // stale entries would heartbeat forever and never commit (the
        // no-op entry of Raft §5.4.2, carrying v* so the VAC view's
        // committed value is stable across terms).
        if self.persistent.log.last_term() != self.persistent.current_term {
            let v_star = self.last_value();
            self.persistent.log.push(LogEntry {
                term: self.persistent.current_term,
                command: DecideAndStop(v_star),
            });
            durable::persist_log(ctx, &self.persistent);
        }
        let me = ctx.me().index();
        self.leader.match_index[me] = self.persistent.log.last_index();
        self.leader.next_index[me] = self.persistent.log.last_index().next();
        self.record_vac(Confidence::Adopt);
        self.replicate_all(ctx);
        self.arm_heartbeat(ctx);
        self.try_advance_commit(ctx);
    }

    fn arm_heartbeat(&mut self, ctx: &mut Ctx<'_, '_>) {
        let d = SimDuration::from_ticks(self.config.heartbeat_interval.max(1));
        self.heartbeat_timer = Some(ctx.set_timer(d));
    }

    fn append_for(&self, peer: ProcessId) -> AppendEntries {
        let next = self.leader.next_index[peer.index()];
        let prev = next.prev();
        AppendEntries {
            term: self.persistent.current_term,
            leader_id: ProcessId(usize::MAX), // patched by caller (needs ctx)
            prev_log_index: prev,
            prev_log_term: self.persistent.log.term_at(prev).unwrap_or(Term::ZERO),
            entries: self.persistent.log.suffix(next, self.config.max_batch),
            leader_commit: self.volatile.commit_index,
        }
    }

    fn send_append(&mut self, peer: ProcessId, ctx: &mut Ctx<'_, '_>) {
        let mut ae = self.append_for(peer);
        ae.leader_id = ctx.me();
        ctx.send(peer, RaftMsg::AppendEntries(ae));
    }

    fn replicate_all(&mut self, ctx: &mut Ctx<'_, '_>) {
        for i in 0..ctx.n() {
            if i != ctx.me().index() {
                self.send_append(ProcessId(i), ctx);
            }
        }
    }

    /// Algorithm 8's commit rule: find `N > commitIndex` replicated on a
    /// majority with `log[N].term = currentTerm`.
    fn try_advance_commit(&mut self, ctx: &mut Ctx<'_, '_>) {
        if self.volatile.role != Role::Leader {
            return;
        }
        let n = ctx.n();
        let mut advanced = false;
        let mut candidate = self.volatile.commit_index.next();
        while candidate <= self.persistent.log.last_index() {
            let replicas = self
                .leader
                .match_index
                .iter()
                .filter(|&&m| m >= candidate)
                .count();
            if replicas * 2 > n
                && self.persistent.log.term_at(candidate) == Some(self.persistent.current_term)
            {
                self.volatile.commit_index = candidate;
                advanced = true;
            }
            candidate = candidate.next();
        }
        if advanced {
            let idx = self.volatile.commit_index;
            // ooc-lint::allow(protocol/panic, "commit_index never exceeds log length")
            let entry = *self.persistent.log.get(idx).expect("committed entry");
            self.events.push(RaftEvent::Committed {
                term: self.persistent.current_term,
                index: idx,
                entry_term: entry.term,
                value: entry.command.0,
            });
            self.record_vac(Confidence::Commit);
            self.apply_committed(ctx);
            // The "second kind" broadcast: no entries, new commit index.
            self.replicate_all(ctx);
        }
    }

    /// Applies newly committed commands. `D&S` semantics: the first
    /// applied command decides; later commands are ignored by the state
    /// machine (but `lastApplied` still advances).
    fn apply_committed(&mut self, ctx: &mut Ctx<'_, '_>) {
        while self.volatile.last_applied < self.volatile.commit_index {
            self.volatile.last_applied = self.volatile.last_applied.next();
            let idx = self.volatile.last_applied;
            // ooc-lint::allow(protocol/panic, "last_applied never exceeds commit_index")
            let entry = *self.persistent.log.get(idx).expect("applied entry");
            self.events.push(RaftEvent::Applied {
                index: idx,
                value: entry.command.0,
            });
            if self.decided.is_none() {
                self.decided = Some(entry.command.0);
                ctx.decide(entry.command.0);
            }
        }
    }

    fn on_request_vote(&mut self, from: ProcessId, rv: RequestVote, ctx: &mut Ctx<'_, '_>) {
        if rv.term > self.persistent.current_term {
            self.step_down(rv.term, ctx);
        }
        let up_to_date = (rv.last_log_term, rv.last_log_index)
            >= (self.persistent.log.last_term(), self.persistent.log.last_index());
        let grant = rv.term == self.persistent.current_term
            && self
                .persistent
                .voted_for
                .is_none_or(|c| c == rv.candidate_id)
            && up_to_date;
        if grant {
            self.persistent.voted_for = Some(rv.candidate_id);
            durable::persist_hardstate(ctx, &self.persistent);
            self.events.push(RaftEvent::VoteGranted {
                term: self.persistent.current_term,
                candidate: rv.candidate_id,
            });
            self.reset_election_timer(ctx);
        }
        ctx.send(
            from,
            RaftMsg::AckRequestVote(AckRequestVote {
                term: self.persistent.current_term,
                vote_granted: grant,
            }),
        );
    }

    fn on_ack_request_vote(&mut self, from: ProcessId, ack: AckRequestVote, ctx: &mut Ctx<'_, '_>) {
        if ack.term > self.persistent.current_term {
            self.step_down(ack.term, ctx);
            return;
        }
        if self.volatile.role != Role::Candidate
            || ack.term != self.persistent.current_term
            || !ack.vote_granted
        {
            return;
        }
        self.votes.insert(from);
        if self.votes.len() * 2 > ctx.n() {
            self.become_leader(ctx);
        }
    }

    fn on_append_entries(&mut self, from: ProcessId, ae: AppendEntries, ctx: &mut Ctx<'_, '_>) {
        if ae.term > self.persistent.current_term {
            self.step_down(ae.term, ctx);
        }
        if ae.term < self.persistent.current_term {
            ctx.send(
                from,
                RaftMsg::AckAppendEntries(AckAppendEntries {
                    term: self.persistent.current_term,
                    success: false,
                    match_index: LogIndex::ZERO,
                }),
            );
            return;
        }
        // Same-term leader: recognize authority.
        if self.volatile.role != Role::Follower {
            self.volatile.role = Role::Follower;
            self.votes.clear();
            if let Some(t) = self.heartbeat_timer.take() {
                ctx.cancel_timer(t);
            }
        }
        self.reset_election_timer(ctx);
        if !self
            .persistent
            .log
            .matches(ae.prev_log_index, ae.prev_log_term)
        {
            ctx.send(
                from,
                RaftMsg::AckAppendEntries(AckAppendEntries {
                    term: self.persistent.current_term,
                    success: false,
                    match_index: LogIndex::ZERO,
                }),
            );
            return;
        }
        let had_entries = !ae.entries.is_empty();
        let last_new = self.persistent.log.install(ae.prev_log_index, &ae.entries);
        if had_entries {
            durable::persist_log(ctx, &self.persistent);
            // §4.3 amendment 1: accepting a first-kind AppendEntries sets
            // (X, v) ← (adopt, log[last].value).
            self.record_vac(Confidence::Adopt);
        }
        // Algorithm 9: commitIndex ← min(leaderCommit, index of last new
        // entry). Strictly `last_new` — entries beyond what this append
        // confirmed might be a stale suffix that conflicts with the
        // leader's log.
        let target = ae.leader_commit.min(last_new);
        if target > self.volatile.commit_index {
            self.volatile.commit_index = target;
            {
                let idx = self.volatile.commit_index;
                // ooc-lint::allow(protocol/panic, "commit_index never exceeds log length")
                let entry = *self.persistent.log.get(idx).expect("committed entry");
                self.events.push(RaftEvent::Committed {
                    term: self.persistent.current_term,
                    index: idx,
                    entry_term: entry.term,
                    value: entry.command.0,
                });
                // §4.3 amendment 2: accepting a second-kind AppendEntries
                // sets (X, v) ← (commit, log[last].value).
                self.record_vac(Confidence::Commit);
                self.apply_committed(ctx);
            }
        }
        ctx.send(
            from,
            RaftMsg::AckAppendEntries(AckAppendEntries {
                term: self.persistent.current_term,
                success: true,
                match_index: last_new.max(ae.prev_log_index),
            }),
        );
    }

    fn on_ack_append_entries(
        &mut self,
        from: ProcessId,
        ack: AckAppendEntries,
        ctx: &mut Ctx<'_, '_>,
    ) {
        if ack.term > self.persistent.current_term {
            // Algorithm 8: on a false ack with a higher term, revert.
            self.step_down(ack.term, ctx);
            return;
        }
        if self.volatile.role != Role::Leader || ack.term != self.persistent.current_term {
            return;
        }
        let i = from.index();
        if ack.success {
            if ack.match_index > self.leader.match_index[i] {
                self.leader.match_index[i] = ack.match_index;
            }
            self.leader.next_index[i] = self.leader.match_index[i].next();
            self.try_advance_commit(ctx);
            // Keep pushing if the follower is still behind.
            if self.leader.next_index[i] <= self.persistent.log.last_index() {
                self.send_append(from, ctx);
            }
        } else {
            // Algorithm 8: decrement NextIndex[i] and resend.
            let next = &mut self.leader.next_index[i];
            *next = LogIndex(next.0.saturating_sub(1).max(1));
            self.send_append(from, ctx);
        }
    }
}

impl Process for RaftNode {
    type Msg = RaftMsg;
    type Output = u64;

    fn on_start(&mut self, ctx: &mut Ctx<'_, '_>) {
        self.reset_election_timer(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, '_>, from: ProcessId, msg: RaftMsg) {
        match msg {
            RaftMsg::RequestVote(rv) => self.on_request_vote(from, rv, ctx),
            RaftMsg::AckRequestVote(ack) => self.on_ack_request_vote(from, ack, ctx),
            RaftMsg::AppendEntries(ae) => self.on_append_entries(from, ae, ctx),
            RaftMsg::AckAppendEntries(ack) => self.on_ack_append_entries(from, ack, ctx),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, '_>, timer: TimerId) {
        if Some(timer) == self.election_timer {
            self.election_timer = None;
            if self.volatile.role != Role::Leader {
                self.start_election(ctx);
            }
        } else if Some(timer) == self.heartbeat_timer {
            self.heartbeat_timer = None;
            if self.volatile.role == Role::Leader {
                if let Some(cmd) = self.workload.pop() {
                    let idx = self.persistent.log.push(LogEntry {
                        term: self.persistent.current_term,
                        command: DecideAndStop(cmd),
                    });
                    durable::persist_log(ctx, &self.persistent);
                    let me = ctx.me().index();
                    self.leader.match_index[me] = idx;
                    self.leader.next_index[me] = idx.next();
                }
                self.replicate_all(ctx);
                self.arm_heartbeat(ctx);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, '_>) {
        // Figure 2's split, taken literally: persistent state is whatever
        // stable storage still holds (under SyncAlways that is everything
        // ever persisted; under a lossy policy possibly much less — the
        // node may even come back with a forgotten vote). Volatile state
        // is rebuilt from defaults and pending timers died with the crash.
        self.persistent = durable::recover(ctx.storage());
        self.volatile = VolatileState::default();
        self.leader = LeaderState::default();
        self.votes.clear();
        self.election_timer = None;
        self.heartbeat_timer = None;
        self.reset_election_timer(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::{FaultPlan, NetworkConfig, RunLimit, Sim, SimTime, StopReason};

    fn cluster(inputs: &[u64], seed: u64) -> Sim<RaftNode> {
        Sim::builder(NetworkConfig::reliable(5))
            .seed(seed)
            .processes(inputs.iter().map(|&v| RaftNode::new(v, RaftConfig::default())))
            .build()
    }

    #[test]
    fn three_nodes_reach_consensus() {
        for seed in 0..10 {
            let mut sim = cluster(&[10, 20, 30], seed);
            let out = sim.run(RunLimit::default());
            assert_eq!(out.reason, StopReason::AllDecided, "seed {seed}");
            assert!(out.agreement(), "seed {seed}");
            let v = out.decided_value().unwrap();
            assert!([10, 20, 30].contains(&v), "validity, seed {seed}");
        }
    }

    #[test]
    fn five_nodes_reach_consensus() {
        for seed in 0..5 {
            let mut sim = cluster(&[1, 2, 3, 4, 5], seed);
            let out = sim.run(RunLimit::default());
            assert!(out.all_decided(), "seed {seed}");
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    fn single_node_decides_own_value() {
        let mut sim = cluster(&[7], 1);
        let out = sim.run(RunLimit::default());
        assert_eq!(out.decided_value(), Some(7));
    }

    #[test]
    fn at_most_one_leader_per_term() {
        for seed in 0..10 {
            let mut sim = cluster(&[1, 2, 3, 4, 5], seed);
            let _ = sim.run(RunLimit::default());
            let mut leaders: std::collections::BTreeMap<Term, Vec<usize>> = Default::default();
            for i in 0..5 {
                for e in sim.process(ProcessId(i)).events() {
                    if let RaftEvent::BecameLeader { term } = e {
                        leaders.entry(*term).or_default().push(i);
                    }
                }
            }
            for (term, who) in leaders {
                assert_eq!(who.len(), 1, "seed {seed}: term {term} had leaders {who:?}");
            }
        }
    }

    #[test]
    fn survives_minority_crashes() {
        for seed in 0..5 {
            let mut sim = Sim::builder(NetworkConfig::reliable(5))
                .seed(seed)
                .processes((0..5).map(|i| RaftNode::new(i as u64, RaftConfig::default())))
                .faults(FaultPlan::new().crash_tail(5, 2, SimTime::from_ticks(100)))
                .build();
            let out = sim.run(RunLimit::default());
            for i in 0..3 {
                assert!(out.decisions[i].is_some(), "seed {seed}: p{i} undecided");
            }
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    fn leader_crash_triggers_reelection() {
        // Let a leader emerge, then kill it; the rest must still decide.
        for seed in 0..5 {
            let mut sim = Sim::builder(NetworkConfig::reliable(5))
                .seed(seed)
                .processes((0..3).map(|i| RaftNode::new(i as u64, RaftConfig::default())))
                .build();
            // Run until the first decision (a leader must exist by then).
            let first = sim.run(RunLimit::until_decisions(1));
            assert!(first.decided_count() >= 1, "seed {seed}");
            let leader = (0..3)
                .find(|&i| sim.process(ProcessId(i)).role() == Role::Leader)
                .expect("a leader exists");
            // The remaining two nodes must also decide (they may already
            // have); agreement must hold throughout.
            let out = sim.run(RunLimit::default());
            assert!(out.agreement(), "seed {seed}");
            let _ = leader;
        }
    }

    #[test]
    fn restart_preserves_log_and_decision_safety() {
        for seed in 0..5 {
            let mut sim = Sim::builder(NetworkConfig::reliable(5))
                .seed(seed)
                .processes((0..3).map(|i| RaftNode::new(i as u64 + 1, RaftConfig::default())))
                .faults(
                    FaultPlan::new()
                        .crash_at(ProcessId(2), SimTime::from_ticks(400))
                        .restart_at(ProcessId(2), SimTime::from_ticks(1200)),
                )
                .build();
            let out = sim.run(RunLimit::default());
            assert!(out.agreement(), "seed {seed}: {:?}", out.decisions);
            assert!(out.all_decided(), "seed {seed}: restarted node catches up");
        }
    }

    #[test]
    fn logs_converge_to_single_committed_prefix() {
        let mut sim = cluster(&[4, 5, 6], 3);
        let out = sim.run(RunLimit::default());
        let v = out.decided_value().unwrap();
        for i in 0..3 {
            let node = sim.process(ProcessId(i));
            assert_eq!(node.log().get(LogIndex(1)).unwrap().command.0, v);
        }
    }

    #[test]
    fn decision_is_first_log_entry() {
        for seed in 0..5 {
            let mut sim = cluster(&[9, 8, 7], seed);
            let out = sim.run(RunLimit::default());
            let v = out.decided_value().unwrap();
            for i in 0..3 {
                let node = sim.process(ProcessId(i));
                if node.decision().is_some() {
                    assert_eq!(node.decision(), Some(v));
                    assert_eq!(node.log().get(LogIndex(1)).unwrap().command.0, v);
                }
            }
        }
    }
}
