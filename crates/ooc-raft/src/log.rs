//! The replicated log, with the operations the Log Matching property
//! relies on.

use crate::types::{LogEntry, LogIndex, Term};
use serde::{Deserialize, Serialize};

/// An indexed list of [`LogEntry`]s, 1-based as in the paper
/// ("indexed continuously from 1, i.e., 1, 2, 3, …").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaftLog {
    entries: Vec<LogEntry>,
}

impl RaftLog {
    /// An empty log.
    pub fn new() -> Self {
        RaftLog::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the last entry ([`LogIndex::ZERO`] when empty).
    pub fn last_index(&self) -> LogIndex {
        LogIndex(self.entries.len() as u64)
    }

    /// Term of the last entry ([`Term::ZERO`] when empty).
    pub fn last_term(&self) -> Term {
        self.entries.last().map(|e| e.term).unwrap_or(Term::ZERO)
    }

    /// The entry at a 1-based index.
    pub fn get(&self, index: LogIndex) -> Option<&LogEntry> {
        if index == LogIndex::ZERO {
            return None;
        }
        self.entries.get(index.0 as usize - 1)
    }

    /// Term of the entry at `index`; [`Term::ZERO`] for index 0, `None`
    /// beyond the end.
    pub fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == LogIndex::ZERO {
            return Some(Term::ZERO);
        }
        self.get(index).map(|e| e.term)
    }

    /// Whether this log contains an entry matching `(index, term)` — the
    /// consistency check of AppendEntries.
    pub fn matches(&self, index: LogIndex, term: Term) -> bool {
        self.term_at(index) == Some(term)
    }

    /// Appends one entry, returning its index.
    pub fn push(&mut self, entry: LogEntry) -> LogIndex {
        self.entries.push(entry);
        self.last_index()
    }

    /// Entries from `from` (1-based, inclusive) to the end, capped at
    /// `max` entries.
    pub fn suffix(&self, from: LogIndex, max: usize) -> Vec<LogEntry> {
        if from == LogIndex::ZERO {
            return Vec::new();
        }
        let start = (from.0 as usize - 1).min(self.entries.len());
        let end = (start + max).min(self.entries.len());
        self.entries[start..end].to_vec()
    }

    /// Installs `entries` starting right after `prev`: skips duplicates,
    /// deletes conflicting suffixes ("append new entries, delete
    /// conflicting ones, if deleted delete all entries that follow as
    /// well" — paper Algorithm 9). Returns the index of the last entry
    /// covered by this append.
    pub fn install(&mut self, prev: LogIndex, entries: &[LogEntry]) -> LogIndex {
        let mut index = prev;
        for entry in entries {
            index = index.next();
            match self.term_at(index) {
                Some(t) if t == entry.term => {
                    // Already have it (duplicate delivery); keep going.
                }
                Some(_) => {
                    // Conflict: truncate from here and append.
                    self.entries.truncate(index.0 as usize - 1);
                    self.entries.push(*entry);
                }
                None => {
                    self.entries.push(*entry);
                }
            }
        }
        index
    }

    /// All entries, for whole-log inspections.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DecideAndStop;

    fn e(term: u64, v: u64) -> LogEntry {
        LogEntry {
            term: Term(term),
            command: DecideAndStop(v),
        }
    }

    #[test]
    fn empty_log_boundaries() {
        let log = RaftLog::new();
        assert!(log.is_empty());
        assert_eq!(log.last_index(), LogIndex::ZERO);
        assert_eq!(log.last_term(), Term::ZERO);
        assert_eq!(log.term_at(LogIndex::ZERO), Some(Term::ZERO));
        assert!(log.matches(LogIndex::ZERO, Term::ZERO));
        assert!(!log.matches(LogIndex(1), Term(1)));
    }

    #[test]
    fn push_and_get_are_one_based() {
        let mut log = RaftLog::new();
        assert_eq!(log.push(e(1, 10)), LogIndex(1));
        assert_eq!(log.push(e(1, 20)), LogIndex(2));
        assert_eq!(log.get(LogIndex(1)).unwrap().command.0, 10);
        assert_eq!(log.get(LogIndex(2)).unwrap().command.0, 20);
        assert!(log.get(LogIndex(3)).is_none());
    }

    #[test]
    fn suffix_respects_bounds_and_cap() {
        let mut log = RaftLog::new();
        for i in 0..5 {
            log.push(e(1, i));
        }
        assert_eq!(log.suffix(LogIndex(2), 2).len(), 2);
        assert_eq!(log.suffix(LogIndex(2), 100).len(), 4);
        assert_eq!(log.suffix(LogIndex(9), 10).len(), 0);
        assert_eq!(log.suffix(LogIndex::ZERO, 10).len(), 0);
    }

    #[test]
    fn install_appends_fresh_entries() {
        let mut log = RaftLog::new();
        let last = log.install(LogIndex::ZERO, &[e(1, 1), e(1, 2)]);
        assert_eq!(last, LogIndex(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn install_skips_duplicates() {
        let mut log = RaftLog::new();
        log.push(e(1, 1));
        log.push(e(1, 2));
        let last = log.install(LogIndex::ZERO, &[e(1, 1), e(1, 2)]);
        assert_eq!(last, LogIndex(2));
        assert_eq!(log.len(), 2, "no duplication");
    }

    #[test]
    fn install_truncates_conflicts_and_suffix() {
        let mut log = RaftLog::new();
        log.push(e(1, 1));
        log.push(e(1, 2));
        log.push(e(1, 3));
        // New leader overwrites index 2 with a term-2 entry.
        let last = log.install(LogIndex(1), &[e(2, 9)]);
        assert_eq!(last, LogIndex(2));
        assert_eq!(log.len(), 2, "conflicting suffix removed");
        assert_eq!(log.get(LogIndex(2)).unwrap().term, Term(2));
        assert_eq!(log.get(LogIndex(1)).unwrap().term, Term(1), "prefix kept");
    }

    #[test]
    fn matches_checks_index_and_term() {
        let mut log = RaftLog::new();
        log.push(e(3, 1));
        assert!(log.matches(LogIndex(1), Term(3)));
        assert!(!log.matches(LogIndex(1), Term(2)));
        assert!(!log.matches(LogIndex(2), Term(3)));
    }
}
