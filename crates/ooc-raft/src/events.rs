//! Instrumentation events emitted by [`RaftNode`](crate::RaftNode).
//!
//! The harness-level checkers (election safety, leader completeness,
//! state-machine safety, and the paper's VAC coherence laws) are all
//! predicates over these per-node event streams.

use crate::types::{LogIndex, Term};
use ooc_core::Confidence;
use ooc_simnet::ProcessId;
use serde::{Deserialize, Serialize};

/// One observable step of a node's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaftEvent {
    /// The node converted to candidate and started an election —
    /// in the paper's decomposition, this *is* the reconciliator
    /// invocation (Algorithm 11: reset timer, update term).
    ElectionStarted {
        /// The new term.
        term: Term,
    },
    /// The node won an election.
    BecameLeader {
        /// The led term.
        term: Term,
    },
    /// The node stepped down after seeing a higher term.
    SteppedDown {
        /// The newer term observed.
        term: Term,
    },
    /// The node granted its vote — the observable write of `VotedFor`.
    ///
    /// The [`DurabilityChecker`](crate::DurabilityChecker) folds these
    /// per node: two grants to *different* candidates in one term mean
    /// the `VotedFor` record did not survive a crash.
    VoteGranted {
        /// The term the vote belongs to.
        term: Term,
        /// The candidate the vote went to.
        candidate: ProcessId,
    },
    /// The node's commit index advanced.
    Committed {
        /// The node's current term when the commit advanced.
        term: Term,
        /// The new commit index.
        index: LogIndex,
        /// Term of the entry at that index.
        entry_term: Term,
        /// Value of the entry at that index.
        value: u64,
    },
    /// The state machine applied an entry.
    Applied {
        /// The applied index.
        index: LogIndex,
        /// The applied value.
        value: u64,
    },
    /// The node's VAC view for a term changed (paper Algorithm 10 and the
    /// two follower-side amendments of §4.3).
    VacTransition {
        /// The term (= template round).
        term: Term,
        /// The new confidence.
        confidence: Confidence,
        /// The accompanying value (`log[lastLogIndex].value`).
        value: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let a = RaftEvent::BecameLeader { term: Term(1) };
        let b = RaftEvent::BecameLeader { term: Term(1) };
        assert_eq!(a, b);
    }
}
