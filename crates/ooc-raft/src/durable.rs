//! Durable encoding of Raft's persistent state, and the checker that
//! watches what happens when durability is taken away.
//!
//! Raft's safety argument leans on two facts surviving a crash: the
//! `(CurrentTerm, VotedFor)` pair (Election Safety — at most one vote per
//! term) and the log (Leader Completeness). This module maps
//! [`PersistentState`] onto the simulator's [`StableStore`] as two keys:
//!
//! * `"hardstate"` — a fixed 17-byte record: `CurrentTerm` (u64 LE),
//!   a has-vote flag (u8), and the voted-for process id (u64 LE).
//! * `"log"` — a full snapshot of the log, 16 bytes per entry
//!   (entry term u64 LE, command value u64 LE).
//!
//! Records are append-only; [`recover`] replays the store like a WAL,
//! taking the **latest decodable** record per key. A torn record (cut
//! short by [`StoragePolicy::TornLastWrite`](ooc_simnet::StoragePolicy))
//! fails its length check and recovery falls back to the previous intact
//! snapshot — exactly what a checksummed on-disk format would do.
//!
//! [`DurabilityChecker`] is the observability half: it folds per-node
//! [`RaftEvent::VoteGranted`] streams and flags any node that granted its
//! vote to two different candidates in one term — the double-vote that
//! lost `VotedFor` records make possible and that breaks Election Safety.

use crate::events::RaftEvent;
use crate::log::RaftLog;
use crate::state::PersistentState;
use crate::types::{DecideAndStop, LogEntry, Term};
use ooc_core::checker::{Violation, ViolationKind};
use ooc_simnet::{Context, ProcessId, StableStore};
use std::collections::{BTreeMap, BTreeSet};

/// Storage key holding the `(CurrentTerm, VotedFor)` pair.
pub const HARDSTATE_KEY: &str = "hardstate";

/// Storage key holding the log snapshot.
pub const LOG_KEY: &str = "log";

/// Byte length of an encoded hardstate record.
const HARDSTATE_LEN: usize = 17;

/// Byte length of one encoded log entry.
const ENTRY_LEN: usize = 16;

/// Encodes `(CurrentTerm, VotedFor)` into a fixed 17-byte record.
pub fn encode_hardstate(term: Term, voted_for: Option<ProcessId>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HARDSTATE_LEN);
    out.extend_from_slice(&term.0.to_le_bytes());
    match voted_for {
        Some(p) => {
            out.push(1);
            out.extend_from_slice(&(p.index() as u64).to_le_bytes());
        }
        None => {
            out.push(0);
            out.extend_from_slice(&0u64.to_le_bytes());
        }
    }
    out
}

/// Decodes a hardstate record; `None` when the record is torn or malformed
/// (any length other than exactly 17 bytes).
pub fn decode_hardstate(bytes: &[u8]) -> Option<(Term, Option<ProcessId>)> {
    if bytes.len() != HARDSTATE_LEN {
        return None;
    }
    let term = Term(u64::from_le_bytes(bytes[0..8].try_into().ok()?));
    let voted_for = match bytes[8] {
        0 => None,
        _ => Some(ProcessId(u64::from_le_bytes(bytes[9..17].try_into().ok()?) as usize)),
    };
    Some((term, voted_for))
}

/// Encodes a full log snapshot, 16 bytes per entry.
pub fn encode_log(log: &RaftLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(log.len() * ENTRY_LEN);
    for entry in log.entries() {
        out.extend_from_slice(&entry.term.0.to_le_bytes());
        out.extend_from_slice(&entry.command.0.to_le_bytes());
    }
    out
}

/// Decodes a log snapshot. A torn tail (trailing bytes short of a full
/// 16-byte entry) is dropped, mirroring how a real implementation discards
/// a half-written record that fails its checksum.
pub fn decode_log(bytes: &[u8]) -> RaftLog {
    let mut log = RaftLog::new();
    for chunk in bytes.chunks_exact(ENTRY_LEN) {
        let term = Term(u64::from_le_bytes(chunk[0..8].try_into().unwrap()));
        let command = DecideAndStop(u64::from_le_bytes(chunk[8..16].try_into().unwrap()));
        log.push(LogEntry { term, command });
    }
    log
}

/// Writes the `(CurrentTerm, VotedFor)` pair through the context's
/// stable storage.
pub fn persist_hardstate<M: Clone, O>(ctx: &mut Context<'_, M, O>, state: &PersistentState) {
    ctx.persist(
        HARDSTATE_KEY,
        encode_hardstate(state.current_term, state.voted_for),
    );
}

/// Writes a full log snapshot through the context's stable storage.
pub fn persist_log<M: Clone, O>(ctx: &mut Context<'_, M, O>, state: &PersistentState) {
    ctx.persist(LOG_KEY, encode_log(&state.log));
}

/// Rebuilds [`PersistentState`] from whatever survived in `store`.
///
/// Walks the record stream newest-first and takes the first *decodable*
/// record for each key, so a torn final write falls back to the previous
/// snapshot and a fully emptied store ([`StoragePolicy::Amnesia`](ooc_simnet::StoragePolicy::Amnesia))
/// yields the pristine default — a node that remembers nothing.
pub fn recover(store: &StableStore) -> PersistentState {
    let mut state = PersistentState::default();
    let mut have_hardstate = false;
    let mut have_log = false;
    for record in store.records().iter().rev() {
        match record.key.as_str() {
            HARDSTATE_KEY if !have_hardstate => {
                if let Some((term, voted_for)) = decode_hardstate(&record.value) {
                    state.current_term = term;
                    state.voted_for = voted_for;
                    have_hardstate = true;
                }
            }
            LOG_KEY if !have_log => {
                // A snapshot record always decodes (a torn tail just
                // shortens it), but only a *non-torn* record is trusted
                // wholesale; a torn one still yields its intact prefix.
                state.log = decode_log(&record.value);
                have_log = true;
            }
            _ => {}
        }
        if have_hardstate && have_log {
            break;
        }
    }
    state
}

/// Checks the **durability contract**: no node grants its vote to two
/// different candidates in the same term.
///
/// A node that persists `VotedFor` before answering a `RequestVote` can
/// never do this, however it crashes; a node whose vote record was lost
/// ([`StoragePolicy::Amnesia`](ooc_simnet::StoragePolicy::Amnesia) /
/// [`StoragePolicy::LoseUnsynced`](ooc_simnet::StoragePolicy::LoseUnsynced)
/// without a sync) will happily re-grant after a restart — the classic
/// double-vote that lets two leaders win one term. This checker flags the
/// double-vote itself, one causal step before Election Safety notices the
/// two leaders.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityChecker;

impl DurabilityChecker {
    /// Scans per-node event streams (`events[i]` belongs to process `i`)
    /// and returns one violation per `(node, term)` that granted votes to
    /// more than one candidate.
    pub fn check(events: &[Vec<RaftEvent>]) -> Vec<Violation> {
        let mut violations = Vec::new();
        for (i, node_events) in events.iter().enumerate() {
            let mut granted: BTreeMap<Term, BTreeSet<ProcessId>> = BTreeMap::new();
            for ev in node_events {
                if let RaftEvent::VoteGranted { term, candidate } = ev {
                    granted.entry(*term).or_default().insert(*candidate);
                }
            }
            for (term, candidates) in granted {
                if candidates.len() > 1 {
                    violations.push(Violation {
                        kind: ViolationKind::Agreement,
                        round: Some(term.0),
                        detail: format!(
                            "durability: p{i} granted {term} votes to {candidates:?} \
                             (VotedFor record did not survive a crash)"
                        ),
                    });
                }
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::StoragePolicy;

    fn e(term: u64, v: u64) -> LogEntry {
        LogEntry {
            term: Term(term),
            command: DecideAndStop(v),
        }
    }

    #[test]
    fn hardstate_round_trips() {
        for (term, vote) in [
            (Term(0), None),
            (Term(3), Some(ProcessId(0))),
            (Term(u64::MAX), Some(ProcessId(7))),
        ] {
            let bytes = encode_hardstate(term, vote);
            assert_eq!(bytes.len(), 17);
            assert_eq!(decode_hardstate(&bytes), Some((term, vote)));
        }
    }

    #[test]
    fn torn_hardstate_is_rejected() {
        let bytes = encode_hardstate(Term(5), Some(ProcessId(2)));
        for cut in 0..bytes.len() {
            assert_eq!(decode_hardstate(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(decode_hardstate(&long), None);
    }

    #[test]
    fn log_round_trips() {
        let mut log = RaftLog::new();
        log.push(e(1, 10));
        log.push(e(2, 20));
        let decoded = decode_log(&encode_log(&log));
        assert_eq!(decoded, log);
        assert!(decode_log(&encode_log(&RaftLog::new())).is_empty());
    }

    #[test]
    fn torn_log_tail_is_dropped() {
        let mut log = RaftLog::new();
        log.push(e(1, 10));
        log.push(e(1, 20));
        let bytes = encode_log(&log);
        // Tear the second entry in half: only the first survives.
        let decoded = decode_log(&bytes[..24]);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded.get(crate::types::LogIndex(1)).unwrap().command.0, 10);
    }

    fn store_with(policy: StoragePolicy, records: &[(&str, Vec<u8>)]) -> StableStore {
        let mut store = StableStore::new(policy);
        for (key, value) in records {
            store.append(key.to_string(), value.clone());
        }
        store
    }

    #[test]
    fn recover_takes_latest_record_per_key() {
        let store = store_with(
            StoragePolicy::SyncAlways,
            &[
                ("hardstate", encode_hardstate(Term(1), Some(ProcessId(0)))),
                ("log", encode_log(&RaftLog::new())),
                ("hardstate", encode_hardstate(Term(2), Some(ProcessId(1)))),
            ],
        );
        let state = recover(&store);
        assert_eq!(state.current_term, Term(2));
        assert_eq!(state.voted_for, Some(ProcessId(1)));
        assert!(state.log.is_empty());
    }

    #[test]
    fn recover_falls_back_past_a_torn_record() {
        let good = encode_hardstate(Term(3), Some(ProcessId(2)));
        let torn = encode_hardstate(Term(4), Some(ProcessId(0)));
        let store = store_with(
            StoragePolicy::SyncAlways,
            &[("hardstate", good), ("hardstate", torn[..8].to_vec())],
        );
        let state = recover(&store);
        assert_eq!(state.current_term, Term(3), "torn record skipped");
        assert_eq!(state.voted_for, Some(ProcessId(2)));
    }

    #[test]
    fn recover_from_empty_store_is_pristine() {
        let store = StableStore::new(StoragePolicy::Amnesia);
        assert_eq!(recover(&store), PersistentState::default());
    }

    #[test]
    fn durability_checker_flags_double_votes() {
        let clean = vec![
            vec![RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(1) }],
            vec![
                RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(1) },
                RaftEvent::VoteGranted { term: Term(2), candidate: ProcessId(0) },
            ],
        ];
        assert!(DurabilityChecker::check(&clean).is_empty());

        let dirty = vec![vec![
            RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(1) },
            RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(2) },
        ]];
        let violations = DurabilityChecker::check(&dirty);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::Agreement);
        assert_eq!(violations[0].round, Some(1));
        assert!(violations[0].detail.contains("p0 granted T1"));
    }

    #[test]
    fn duplicate_grants_to_same_candidate_are_fine() {
        // Re-delivered RequestVote from the same candidate re-grants; that
        // is correct Raft behavior, not a durability failure.
        let events = vec![vec![
            RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(1) },
            RaftEvent::VoteGranted { term: Term(1), candidate: ProcessId(1) },
        ]];
        assert!(DurabilityChecker::check(&events).is_empty());
    }
}
