//! Core Raft value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Raft term (the paper maps terms to template rounds, §4.3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Term(pub u64);

impl Term {
    /// The pre-election term.
    pub const ZERO: Term = Term(0);

    /// The next term.
    pub fn next(self) -> Term {
        Term(self.0 + 1)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A 1-based log index; `LogIndex(0)` means "before the first entry".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LogIndex(pub u64);

impl LogIndex {
    /// The sentinel before the first entry.
    pub const ZERO: LogIndex = LogIndex(0);

    /// The next index.
    pub fn next(self) -> LogIndex {
        LogIndex(self.0 + 1)
    }

    /// The previous index, saturating at [`LogIndex::ZERO`].
    pub fn prev(self) -> LogIndex {
        LogIndex(self.0.saturating_sub(1))
    }
}

impl fmt::Display for LogIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The single command of the paper's consensus reduction (§4.3):
/// `D&S(v)` — *decide-and-stop-applying-to-state-machine*.
///
/// Applying it makes the state machine decide `v` and ignore every later
/// command, so each processor decides the value of the **first** entry in
/// its log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecideAndStop(pub u64);

impl fmt::Display for DecideAndStop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D&S({})", self.0)
    }
}

/// One log entry: a command plus the term in which the leader received it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LogEntry {
    /// The term the entry was created in.
    pub term: Term,
    /// The replicated command.
    pub command: DecideAndStop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_ordering_and_next() {
        assert!(Term(1) < Term(2));
        assert_eq!(Term(1).next(), Term(2));
    }

    #[test]
    fn index_arithmetic_saturates() {
        assert_eq!(LogIndex(0).prev(), LogIndex(0));
        assert_eq!(LogIndex(3).prev(), LogIndex(2));
        assert_eq!(LogIndex(3).next(), LogIndex(4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term(3).to_string(), "T3");
        assert_eq!(LogIndex(2).to_string(), "#2");
        assert_eq!(DecideAndStop(7).to_string(), "D&S(7)");
    }
}
