//! The decentralized, leaderless Raft variant sketched at the end of
//! paper §4.3.
//!
//! > "…instead of electing a leader and having him in charge of logging
//! > commands, everyone broadcasts the command they want logged and once
//! > someone sees a majority it sends out a commit-to-that-command
//! > message. This would result in convergence… Interestingly enough,
//! > this change results in an algorithm that highly resembles Ben-Or's.
//! > The only difference is … the reconciliators implemented are
//! > different."
//!
//! We take the paper at its word: the agreement detector is exactly
//! Ben-Or's VAC (`ooc_ben_or::BenOrVac` — broadcast the command, majority
//! ⇒ ratify/commit-request, `> t` commit-requests ⇒ commit), and only the
//! reconciliator changes. Raft shakes stalemates with *randomized timers*
//! — whoever times out first re-proposes and the others follow. The
//! message-passing equivalent is [`TimerNudge`]: every vacillating
//! processor draws a random priority (its "timer duration"), broadcasts
//! `(priority, value)`, and everyone adopts the value of the
//! highest-priority nudge it collects. When the same processor wins
//! everywhere (the common case), the next round converges — giving the
//! required eventual weak agreement with probability 1.

use ooc_ben_or::{BenOrVac, CoinFlip};
use ooc_core::confidence::Confidence;
use ooc_core::objects::{ObjectNet, ReconciliatorObject};
use ooc_core::template::{Template, TemplateConfig, TemplateMsg};
use ooc_simnet::ProcessId;

/// One reconciliator message: `(priority, value)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nudge {
    /// The sender's random priority (its simulated timer draw).
    pub priority: u64,
    /// The value the sender wants to push.
    pub value: bool,
}

/// The timer-flavored reconciliator.
///
/// On `begin` it broadcasts a `(priority, value)` nudge and arms a
/// randomized timer (its "election timeout"). Nudges from other
/// vacillators are collected as they arrive; when the timer fires the
/// highest-priority nudge seen so far wins. Because only a *subset* of
/// the network vacillates in any round, no quorum can be awaited — the
/// timer is what guarantees termination, exactly as in Raft, where "it is
/// not the returned value that causes the wanted behaviour but rather the
/// timing of processors entering the reconciliator" (§4.3).
#[derive(Debug)]
pub struct TimerNudge {
    /// Timer window `(lo, hi)` in ticks; should comfortably exceed the
    /// network delay so concurrent vacillators hear each other (the
    /// paper's timing property).
    window: (u64, u64),
    sigma: bool,
    best: Option<Nudge>,
    timer: Option<ooc_simnet::TimerId>,
}

impl TimerNudge {
    /// Creates the reconciliator with the default 30–90-tick window.
    pub fn new() -> Self {
        TimerNudge::with_window(30, 90)
    }

    /// Creates the reconciliator with an explicit timer window.
    pub fn with_window(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi && lo > 0, "window must be positive and ordered");
        TimerNudge {
            window: (lo, hi),
            sigma: false,
            best: None,
            timer: None,
        }
    }

    fn consider(&mut self, nudge: Nudge) {
        let better = match self.best {
            None => true,
            Some(b) => (nudge.priority, nudge.value) > (b.priority, b.value),
        };
        if better {
            self.best = Some(nudge);
        }
    }
}

impl Default for TimerNudge {
    fn default() -> Self {
        TimerNudge::new()
    }
}

impl ReconciliatorObject for TimerNudge {
    type Value = bool;
    type Msg = Nudge;

    fn begin(
        &mut self,
        _confidence: Confidence,
        sigma: bool,
        net: &mut dyn ObjectNet<Nudge>,
    ) -> Option<bool> {
        self.sigma = sigma;
        let priority = net.rng().next_u64();
        let nudge = Nudge {
            priority,
            value: sigma,
        };
        self.consider(nudge);
        net.broadcast(nudge);
        let (lo, hi) = self.window;
        let wait = net.rng().range_inclusive(lo, hi);
        self.timer = Some(net.set_timer(ooc_simnet::SimDuration::from_ticks(wait)));
        None
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: Nudge,
        _net: &mut dyn ObjectNet<Nudge>,
    ) -> Option<bool> {
        self.consider(msg);
        None
    }

    fn on_timer(
        &mut self,
        timer: ooc_simnet::TimerId,
        _net: &mut dyn ObjectNet<Nudge>,
    ) -> Option<bool> {
        if Some(timer) != self.timer {
            return None;
        }
        Some(self.best.map(|b| b.value).unwrap_or(self.sigma))
    }
}

/// The decentralized-Raft consensus process: Ben-Or's VAC + [`TimerNudge`].
pub type DecentralizedRaft = Template<BenOrVac, TimerNudge>;

/// Its wire type.
pub type DecentralizedWire = TemplateMsg<ooc_ben_or::BenOrMsg, Nudge>;

/// Builds a decentralized-Raft processor.
///
/// # Panics
/// Panics unless `t < n/2`.
pub fn decentralized_raft(input: bool, n: usize, t: usize) -> DecentralizedRaft {
    Template::vac(
        input,
        move |_m| BenOrVac::new(n, t),
        move |_m| TimerNudge::new(),
        TemplateConfig::default(),
    )
}

/// The coin-flip twin (plain Ben-Or) with identical configuration — the
/// ablation baseline for comparing the two reconciliators.
pub fn coin_flip_twin(input: bool, n: usize, t: usize) -> Template<BenOrVac, CoinFlip> {
    Template::vac(
        input,
        move |_m| BenOrVac::new(n, t),
        |_m| CoinFlip::new(),
        TemplateConfig::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::{NetworkConfig, ProcessId, RunLimit, Sim};

    fn run(inputs: &[bool], t: usize, seed: u64) -> ooc_simnet::RunOutcome<bool> {
        let n = inputs.len();
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| decentralized_raft(v, n, t)))
            .build();
        sim.run(RunLimit::default())
    }

    #[test]
    fn decides_and_agrees() {
        for seed in 0..20 {
            let out = run(&[true, false, true, false, true], 2, seed);
            assert!(out.all_decided(), "seed {seed}");
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    fn convergence_holds_as_the_paper_claims() {
        // The paper's §4.3 point: the decentralized variant satisfies
        // convergence (unanimous inputs commit in round one).
        for seed in 0..10 {
            let n = 5;
            let mut sim = Sim::builder(NetworkConfig::default())
                .seed(seed)
                .processes((0..n).map(|_| decentralized_raft(true, n, 2)))
                .build();
            let out = sim.run(RunLimit::default());
            assert_eq!(out.decided_value(), Some(true));
            for i in 0..n {
                let h = sim.process(ProcessId(i)).history();
                assert!(h[0].outcome.is_commit(), "seed {seed}: round-1 commit");
            }
        }
    }

    #[test]
    fn nudge_tracks_highest_priority_and_times_out() {
        use ooc_core::testkit::LoopbackNet;
        let mut rec = TimerNudge::new();
        let mut net = LoopbackNet::<Nudge>::new(0, 3, 5);
        assert!(rec
            .begin(ooc_core::Confidence::Vacillate, false, &mut net)
            .is_none());
        assert_eq!(net.sent.len(), 3, "nudge broadcast");
        assert_eq!(net.timers.len(), 1, "timer armed");
        let timer = net.timers[0].0;
        rec.on_message(
            ProcessId(1),
            Nudge {
                priority: u64::MAX,
                value: true,
            },
            &mut net,
        );
        assert_eq!(rec.on_timer(timer, &mut net), Some(true));
    }

    #[test]
    fn stale_timer_is_ignored() {
        use ooc_core::testkit::LoopbackNet;
        let mut rec = TimerNudge::new();
        let mut net = LoopbackNet::<Nudge>::new(0, 3, 5);
        rec.begin(ooc_core::Confidence::Vacillate, true, &mut net);
        assert_eq!(rec.on_timer(ooc_simnet::TimerId(999), &mut net), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn window_is_validated() {
        let _ = TimerNudge::with_window(0, 10);
    }
}
