//! Ablation for a design choice called out in DESIGN.md: why the
//! template defaults to `halt_after_decide = false`.
//!
//! Algorithm 1 literally says `decide σ` then halt. In a quorum-based
//! protocol a halted processor is indistinguishable from a crashed one,
//! so early deciders eat into the crash budget `t`: if deciders + real
//! crashes exceed `t`, the laggards' `n − t` waits can starve. This test
//! demonstrates the starvation with the literal rule and shows the
//! keep-participating default is immune, on identical seeds.

use ooc_ben_or::vac::BenOrVac;
use ooc_ben_or::CoinFlip;
use ooc_core::template::{Template, TemplateConfig};
use ooc_simnet::{
    FaultPlan, NetworkConfig, RunLimit, Sim, SimTime, StopReason,
};

fn run_with(halt_after_decide: bool, seed: u64) -> (bool, StopReason) {
    let n = 5;
    let t = 2;
    // Two real crashes use up the whole budget; any early decider who
    // halts then pushes the live-sender count below n − t = 3.
    let inputs = [true, false, true, false, true];
    let mut sim = Sim::builder(NetworkConfig::default())
        .seed(seed)
        .faults(FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(35)))
        .processes(inputs.iter().map(|&v| -> Template<BenOrVac, CoinFlip> {
            Template::vac(
                v,
                move |_m| BenOrVac::new(n, t),
                |_m| CoinFlip::new(),
                TemplateConfig {
                    halt_after_decide,
                    max_rounds: Some(400),
                },
            )
        }))
        .build();
    let limit = RunLimit {
        max_time: SimTime::from_ticks(300_000),
        ..RunLimit::default()
    };
    let out = sim.run(limit);
    let live_all_decided = (0..3).all(|i| out.decisions[i].is_some());
    (live_all_decided, out.reason)
}

#[test]
fn literal_halt_rule_can_starve_laggards() {
    // Find at least one seed where halting early deciders leaves some
    // live processor waiting forever (run ends by time/quiescence with
    // undecided live processors), while the keep-participating rule
    // finishes every live processor on the very same seed.
    let mut starved = 0;
    let mut checked = 0;
    for seed in 0..60 {
        let (halt_ok, halt_reason) = run_with(true, seed);
        let (keep_ok, _) = run_with(false, seed);
        assert!(keep_ok, "seed {seed}: keep-participating must always finish");
        checked += 1;
        if !halt_ok {
            assert_ne!(
                halt_reason,
                StopReason::AllDecided,
                "seed {seed}: inconsistent outcome"
            );
            starved += 1;
        }
    }
    assert!(
        starved > 0,
        "expected the literal halt rule to starve at least one of {checked} runs"
    );
    println!("literal halt rule starved {starved}/{checked} runs; keep-participating: 0");
}

#[test]
fn halting_is_safe_when_crashes_stay_under_budget() {
    // With zero real crashes the decider-as-crash effect stays within
    // t = 2 only if at most 2 processors halt before the rest finish —
    // NOT guaranteed in general. But whenever the run does finish, the
    // decisions must still agree: halting can hurt liveness, never
    // safety.
    for seed in 0..40 {
        let n = 5;
        let inputs = [true, false, true, false, true];
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| -> Template<BenOrVac, CoinFlip> {
                Template::vac(
                    v,
                    move |_m| BenOrVac::new(n, 2),
                    |_m| CoinFlip::new(),
                    TemplateConfig {
                        halt_after_decide: true,
                        max_rounds: Some(400),
                    },
                )
            }))
            .build();
        let limit = RunLimit {
            max_time: SimTime::from_ticks(300_000),
            ..RunLimit::default()
        };
        let out = sim.run(limit);
        assert!(out.agreement(), "seed {seed}: halting must never break safety");
    }
}
