//! The classic, hand-rolled Ben-Or protocol — the *baseline* the
//! decomposition is measured against (experiment T7).
//!
//! Functionally identical to [`crate::BenOrProcess`] (same exchanges, same
//! thresholds, same coin) but written as one flat state machine with its
//! own round-tagged wire format, the way the protocol is usually
//! presented. Differences in rounds/messages/latency against the
//! template-composed version quantify the cost of the object abstraction.

use crate::msg::BenOrMsg;
use ooc_simnet::{Context, Process, ProcessId, TimerId};
use std::collections::BTreeMap;

/// Wire format: a Ben-Or message tagged with its round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonolithicMsg {
    /// The protocol round this message belongs to.
    pub round: u64,
    /// The report/ratify payload.
    pub payload: BenOrMsg,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Reports,
    Ratifies,
}

/// Classic Ben-Or consensus over binary values, tolerating `t < n/2`
/// crash faults in an asynchronous network.
#[derive(Debug)]
pub struct MonolithicBenOr {
    n: usize,
    t: usize,
    v: bool,
    round: u64,
    stage: Stage,
    reports: [usize; 2],
    reports_seen: usize,
    ratifies: [usize; 2],
    ratifies_seen: usize,
    buffer: BTreeMap<u64, Vec<BenOrMsg>>,
    decided: Option<bool>,
    rounds_executed: u64,
    max_rounds: u64,
}

impl MonolithicBenOr {
    /// Creates a processor with the given input.
    ///
    /// # Panics
    /// Panics unless `t < n/2`.
    pub fn new(input: bool, n: usize, t: usize) -> Self {
        assert!(2 * t < n, "Ben-Or requires t < n/2 (got n={n}, t={t})");
        MonolithicBenOr {
            n,
            t,
            v: input,
            round: 0,
            stage: Stage::Reports,
            reports: [0, 0],
            reports_seen: 0,
            ratifies: [0, 0],
            ratifies_seen: 0,
            buffer: BTreeMap::new(),
            decided: None,
            rounds_executed: 0,
            max_rounds: 10_000,
        }
    }

    /// The round this processor is currently executing.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The decided value, if any.
    pub fn decision(&self) -> Option<bool> {
        self.decided
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn start_round(&mut self, ctx: &mut Context<'_, MonolithicMsg, bool>) {
        self.round += 1;
        self.rounds_executed += 1;
        if self.rounds_executed > self.max_rounds {
            ctx.halt();
            return;
        }
        self.stage = Stage::Reports;
        self.reports = [0, 0];
        self.reports_seen = 0;
        self.ratifies = [0, 0];
        self.ratifies_seen = 0;
        let stale: Vec<u64> = self.buffer.range(..self.round).map(|(&r, _)| r).collect();
        for r in stale {
            self.buffer.remove(&r);
        }
        ctx.broadcast(MonolithicMsg {
            round: self.round,
            payload: BenOrMsg::Report { value: self.v },
        });
        // Replay any messages of this round that arrived early.
        let r = self.round;
        if let Some(msgs) = self.buffer.remove(&r) {
            for payload in msgs {
                if self.round != r {
                    break; // a replay completed the round
                }
                self.handle_current(payload, ctx);
            }
        }
    }

    fn handle_current(&mut self, payload: BenOrMsg, ctx: &mut Context<'_, MonolithicMsg, bool>) {
        match (payload, self.stage) {
            (BenOrMsg::Report { value }, Stage::Reports) => {
                self.reports[value as usize] += 1;
                self.reports_seen += 1;
                if self.reports_seen == self.quorum() {
                    self.stage = Stage::Ratifies;
                    let majority = (0..=1).find(|&b| self.reports[b] * 2 > self.n);
                    ctx.broadcast(MonolithicMsg {
                        round: self.round,
                        payload: BenOrMsg::Ratify {
                            value: majority.map(|b| b == 1),
                        },
                    });
                    // Replay ratify messages that overtook our report
                    // quorum (parked under the current round below).
                    let r = self.round;
                    if let Some(parked) = self.buffer.remove(&r) {
                        for payload in parked {
                            if self.round != r {
                                break; // a replay completed the round
                            }
                            self.handle_current(payload, ctx);
                        }
                    }
                }
            }
            (BenOrMsg::Ratify { value }, Stage::Reports) => {
                // A ratify overtook our report quorum; park it for replay.
                self.buffer
                    .entry(self.round)
                    .or_default()
                    .push(BenOrMsg::Ratify { value });
            }
            (BenOrMsg::Ratify { value }, Stage::Ratifies) => {
                self.ratifies_seen += 1;
                if let Some(v) = value {
                    self.ratifies[v as usize] += 1;
                }
                if self.ratifies_seen == self.quorum() {
                    self.end_round(ctx);
                }
            }
            (BenOrMsg::Report { .. }, Stage::Ratifies) => {} // late report
        }
    }

    fn end_round(&mut self, ctx: &mut Context<'_, MonolithicMsg, bool>) {
        let (value, count) = if self.ratifies[1] >= self.ratifies[0] {
            (true, self.ratifies[1])
        } else {
            (false, self.ratifies[0])
        };
        if count > self.t {
            self.v = value;
            if self.decided.is_none() {
                self.decided = Some(value);
                ctx.decide(value);
            }
        } else if count >= 1 {
            self.v = value;
        } else {
            self.v = ctx.rng().coin() == 1;
        }
        self.start_round(ctx);
    }
}

impl Process for MonolithicBenOr {
    type Msg = MonolithicMsg;
    type Output = bool;

    fn on_start(&mut self, ctx: &mut Context<'_, MonolithicMsg, bool>) {
        self.start_round(ctx);
    }

    fn on_message(
        &mut self,
        ctx: &mut Context<'_, MonolithicMsg, bool>,
        _from: ProcessId,
        msg: MonolithicMsg,
    ) {
        if msg.round > self.round {
            self.buffer.entry(msg.round).or_default().push(msg.payload);
        } else if msg.round == self.round {
            self.handle_current(msg.payload, ctx);
        }
        // Past rounds: already served their quorum; drop.
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, MonolithicMsg, bool>, _timer: TimerId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::{FaultPlan, NetworkConfig, RunLimit, Sim, SimTime};

    fn run(inputs: &[bool], t: usize, seed: u64) -> ooc_simnet::RunOutcome<bool> {
        let n = inputs.len();
        let mut sim = Sim::builder(NetworkConfig::default())
            .seed(seed)
            .processes(inputs.iter().map(|&v| MonolithicBenOr::new(v, n, t)))
            .build();
        sim.run(RunLimit::default())
    }

    #[test]
    fn unanimous_inputs_decide_fast() {
        for seed in 0..20 {
            let out = run(&[true; 5], 2, seed);
            assert!(out.all_decided());
            assert_eq!(out.decided_value(), Some(true), "validity on unanimity");
        }
    }

    #[test]
    fn mixed_inputs_agree() {
        for seed in 0..20 {
            let out = run(&[true, false, true, false, true], 2, seed);
            assert!(out.all_decided(), "seed {seed}");
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    fn survives_t_crashes() {
        let n = 7;
        let t = 3;
        for seed in 0..10 {
            let inputs = [true, false, true, false, true, false, true];
            let mut sim = Sim::builder(NetworkConfig::default())
                .seed(seed)
                .processes(inputs.iter().map(|&v| MonolithicBenOr::new(v, n, t)))
                .faults(FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(15)))
                .build();
            let out = sim.run(RunLimit::default());
            for i in 0..(n - t) {
                assert!(out.decisions[i].is_some(), "seed {seed}: p{i} undecided");
            }
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "t < n/2")]
    fn resilience_bound_enforced() {
        let _ = MonolithicBenOr::new(true, 4, 2);
    }
}
