//! Ben-Or's vacillate-adopt-commit object (paper Algorithm 5).
//!
//! ```text
//! VAC(v, m):
//!   send ⟨1, v⟩ to all
//!   wait for n − t ⟨1, ∗⟩ messages
//!   if received more than n/2 ⟨1, v⟩ messages for some v:
//!       send ⟨2, v, ratify⟩ to all
//!   else:
//!       send ⟨2, ?⟩ to all
//!   wait for n − t ⟨2, ∗⟩ messages
//!   if received more than t ⟨2, v, ratify⟩:  return (commit, v)
//!   else if received a ⟨2, v, ratify⟩:       return (adopt, v)
//!   else:                                    return (vacillate, v)
//! ```
//!
//! Correctness (paper Lemma 5): two ratify messages can never carry
//! different values (each needs a `> n/2` majority of reports), which gives
//! both coherence laws; `t < n/2` gives termination; unanimity gives
//! convergence.

use crate::msg::BenOrMsg;
use ooc_core::confidence::VacOutcome;
use ooc_core::objects::{ObjectNet, VacObject};
use ooc_simnet::ProcessId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for `n − t` reports.
    Reports,
    /// Waiting for `n − t` ratify messages.
    Ratifies,
    /// Outcome produced.
    Done,
}

/// One round's VAC object for Ben-Or. Construct a fresh instance per round
/// via [`BenOrVac::new`].
#[derive(Debug, Clone)]
pub struct BenOrVac {
    n: usize,
    t: usize,
    input: bool,
    stage: Stage,
    /// Report tallies: `[count of false, count of true]`.
    reports: [usize; 2],
    reports_seen: usize,
    /// Ratify tallies: `[count of false, count of true]`, `?` not counted.
    ratifies: [usize; 2],
    ratifies_seen: usize,
    /// Ratify messages that overtook this processor's report quorum.
    early_ratifies: Vec<Option<bool>>,
    /// Ratify count needed to commit; the paper's rule is `count > t`,
    /// i.e. `t + 1`. Only [`BenOrVac::with_commit_threshold`] changes it.
    commit_threshold: usize,
}

impl BenOrVac {
    /// Creates the object for a network of `n` processors tolerating `t`
    /// crash faults.
    ///
    /// # Panics
    /// Panics unless `t < n/2` (the protocol's resilience bound: with
    /// `t ≥ n/2` two disjoint quorums of `n − t` need not intersect in a
    /// majority and the wait conditions may deadlock or contradict).
    pub fn new(n: usize, t: usize) -> Self {
        assert!(2 * t < n, "Ben-Or requires t < n/2 (got n={n}, t={t})");
        BenOrVac {
            n,
            t,
            input: false,
            stage: Stage::Reports,
            reports: [0, 0],
            reports_seen: 0,
            ratifies: [0, 0],
            ratifies_seen: 0,
            early_ratifies: Vec::new(),
            commit_threshold: t + 1,
        }
    }

    /// Test-only: like [`BenOrVac::new`] but with an explicit commit
    /// threshold instead of the paper's `t + 1`.
    ///
    /// Passing `t` plants the classic off-by-one (committing on exactly
    /// `t` ratifies, which a disjoint quorum may never see) — the fault
    /// the campaign engine's sabotage suite must be able to catch. Never
    /// use this outside deliberate fault-planting experiments.
    #[doc(hidden)]
    pub fn with_commit_threshold(n: usize, t: usize, commit_threshold: usize) -> Self {
        let mut vac = BenOrVac::new(n, t);
        vac.commit_threshold = commit_threshold;
        vac
    }

    fn quorum(&self) -> usize {
        self.n - self.t
    }

    fn note_ratify(&mut self, value: Option<bool>) -> Option<VacOutcome<bool>> {
        self.ratifies_seen += 1;
        if let Some(v) = value {
            self.ratifies[v as usize] += 1;
        }
        if self.ratifies_seen < self.quorum() {
            return None;
        }
        self.stage = Stage::Done;
        // All real ratifies carry the same value when the protocol's
        // senders are honest; tally both slots and take the larger so a
        // malformed execution still yields a deterministic outcome.
        let (value, count) = if self.ratifies[1] >= self.ratifies[0] {
            (true, self.ratifies[1])
        } else {
            (false, self.ratifies[0])
        };
        Some(if count >= self.commit_threshold {
            VacOutcome::commit(value)
        } else if count >= 1 {
            VacOutcome::adopt(value)
        } else {
            VacOutcome::vacillate(self.input)
        })
    }

    fn finish_reports(&mut self, net: &mut dyn ObjectNet<BenOrMsg>) -> Option<VacOutcome<bool>> {
        self.stage = Stage::Ratifies;
        let majority = (0..=1).find(|&b| self.reports[b] * 2 > self.n);
        let ratify = BenOrMsg::Ratify {
            value: majority.map(|b| b == 1),
        };
        net.broadcast(ratify);
        // Replay ratify messages that arrived before our report quorum.
        let early = std::mem::take(&mut self.early_ratifies);
        for value in early {
            if self.stage != Stage::Ratifies {
                break;
            }
            if let Some(out) = self.note_ratify(value) {
                return Some(out);
            }
        }
        None
    }
}

impl VacObject for BenOrVac {
    type Value = bool;
    type Msg = BenOrMsg;

    fn begin(
        &mut self,
        input: bool,
        net: &mut dyn ObjectNet<BenOrMsg>,
    ) -> Option<VacOutcome<bool>> {
        self.input = input;
        net.broadcast(BenOrMsg::Report { value: input });
        None
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: BenOrMsg,
        net: &mut dyn ObjectNet<BenOrMsg>,
    ) -> Option<VacOutcome<bool>> {
        match (msg, self.stage) {
            (BenOrMsg::Report { value }, Stage::Reports) => {
                self.reports[value as usize] += 1;
                self.reports_seen += 1;
                if self.reports_seen == self.quorum() {
                    return self.finish_reports(net);
                }
                None
            }
            (BenOrMsg::Ratify { value }, Stage::Reports) => {
                // A faster processor finished its report quorum already.
                self.early_ratifies.push(value);
                None
            }
            (BenOrMsg::Ratify { value }, Stage::Ratifies) => self.note_ratify(value),
            // Late reports after our quorum, or anything after completion,
            // carry no further obligation.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::confidence::Confidence;
    use ooc_core::testkit::LoopbackNet;

    fn net() -> LoopbackNet<BenOrMsg> {
        LoopbackNet::new(0, 5, 1)
    }

    fn feed_reports(vac: &mut BenOrVac, net: &mut LoopbackNet<BenOrMsg>, values: &[bool]) {
        for (i, &v) in values.iter().enumerate() {
            let out = vac.on_message(ProcessId(i), BenOrMsg::Report { value: v }, net);
            assert!(out.is_none(), "reports alone cannot complete the object");
        }
    }

    fn feed_ratifies(
        vac: &mut BenOrVac,
        net: &mut LoopbackNet<BenOrMsg>,
        values: &[Option<bool>],
    ) -> Option<VacOutcome<bool>> {
        let mut out = None;
        for (i, &v) in values.iter().enumerate() {
            out = vac.on_message(ProcessId(i), BenOrMsg::Ratify { value: v }, net);
        }
        out
    }

    #[test]
    #[should_panic(expected = "t < n/2")]
    fn resilience_bound_enforced() {
        let _ = BenOrVac::new(4, 2);
    }

    #[test]
    fn begin_broadcasts_report() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        assert!(vac.begin(true, &mut n).is_none());
        assert_eq!(n.sent.len(), 5);
        assert!(n
            .sent
            .iter()
            .all(|(_, m)| *m == BenOrMsg::Report { value: true }));
    }

    #[test]
    fn majority_reports_trigger_real_ratify() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        n.sent.clear();
        feed_reports(&mut vac, &mut n, &[true, true, true]); // 3 > 5/2
        assert_eq!(n.sent.len(), 5);
        assert!(n
            .sent
            .iter()
            .all(|(_, m)| *m == BenOrMsg::Ratify { value: Some(true) }));
    }

    #[test]
    fn split_reports_trigger_question_mark() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        n.sent.clear();
        feed_reports(&mut vac, &mut n, &[true, false, true]); // 2 ≤ 5/2
        assert!(n
            .sent
            .iter()
            .all(|(_, m)| *m == BenOrMsg::Ratify { value: None }));
    }

    #[test]
    fn more_than_t_ratifies_commit() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        feed_reports(&mut vac, &mut n, &[true, true, true]);
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), Some(true), Some(true)]);
        assert_eq!(out, Some(VacOutcome::commit(true)));
    }

    #[test]
    fn some_but_few_ratifies_adopt() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(false, &mut n);
        feed_reports(&mut vac, &mut n, &[true, false, false]);
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), None, None]);
        assert_eq!(out, Some(VacOutcome::adopt(true)));
    }

    #[test]
    fn no_ratifies_vacillate_with_own_value() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(false, &mut n);
        feed_reports(&mut vac, &mut n, &[true, false, true]);
        let out = feed_ratifies(&mut vac, &mut n, &[None, None, None]);
        assert_eq!(out, Some(VacOutcome::vacillate(false)));
    }

    #[test]
    fn early_ratifies_are_replayed() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        // Two ratifies overtake the report quorum.
        assert!(vac
            .on_message(ProcessId(3), BenOrMsg::Ratify { value: Some(true) }, &mut n)
            .is_none());
        assert!(vac
            .on_message(ProcessId(4), BenOrMsg::Ratify { value: Some(true) }, &mut n)
            .is_none());
        feed_reports(&mut vac, &mut n, &[true, true, true]);
        // One more ratify completes the quorum of 3: 3 > t = 2 ⇒ commit.
        let out = vac.on_message(ProcessId(0), BenOrMsg::Ratify { value: Some(true) }, &mut n);
        assert_eq!(out, Some(VacOutcome::commit(true)));
    }

    #[test]
    fn late_reports_are_ignored() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        feed_reports(&mut vac, &mut n, &[true, true, true]);
        // A 4th report after the quorum must not disturb the ratify stage.
        assert!(vac
            .on_message(ProcessId(4), BenOrMsg::Report { value: false }, &mut n)
            .is_none());
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), Some(true), Some(true)]);
        assert_eq!(out.map(|o| o.confidence), Some(Confidence::Commit));
    }

    #[test]
    fn exactly_t_ratifies_only_adopt() {
        let mut vac = BenOrVac::new(5, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        feed_reports(&mut vac, &mut n, &[true, true, true]);
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), Some(true), None]);
        // 2 ratifies = t ⇒ not enough to commit.
        assert_eq!(out, Some(VacOutcome::adopt(true)));
    }

    #[test]
    fn sabotaged_threshold_commits_on_exactly_t_ratifies() {
        // The planted off-by-one: threshold t instead of t+1 turns the
        // "exactly t ratifies ⇒ adopt" case into an unsafe commit.
        let mut vac = BenOrVac::with_commit_threshold(5, 2, 2);
        let mut n = net();
        vac.begin(true, &mut n);
        feed_reports(&mut vac, &mut n, &[true, true, true]);
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), Some(true), None]);
        assert_eq!(out, Some(VacOutcome::commit(true)));
    }

    #[test]
    fn messages_after_done_are_ignored() {
        let mut vac = BenOrVac::new(3, 1);
        let mut n = LoopbackNet::new(0, 3, 1);
        vac.begin(true, &mut n);
        feed_reports(&mut vac, &mut n, &[true, true]);
        let out = feed_ratifies(&mut vac, &mut n, &[Some(true), Some(true)]);
        assert!(out.unwrap().is_commit());
        assert!(vac
            .on_message(ProcessId(2), BenOrMsg::Ratify { value: Some(false) }, &mut n)
            .is_none());
    }
}
