//! Ben-Or's two message kinds (paper Algorithm 5).

use serde::{Deserialize, Serialize};

/// Messages of one VAC round of Ben-Or.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenOrMsg {
    /// First exchange, the paper's `⟨1, v⟩`: report your preference.
    Report {
        /// The sender's current preference.
        value: bool,
    },
    /// Second exchange: the paper's `⟨2, v, ratify⟩` (when the sender saw a
    /// `> n/2` majority for `v` among reports) or `⟨2, ?⟩` (when it did
    /// not, encoded as `None`).
    Ratify {
        /// `Some(v)` to ratify `v`; `None` for the `⟨2, ?⟩` non-vote.
        value: Option<bool>,
    },
}

impl BenOrMsg {
    /// Whether this is a ratify message carrying a value.
    pub fn is_real_ratify(&self) -> bool {
        matches!(self, BenOrMsg::Ratify { value: Some(_) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_ratify_detection() {
        assert!(BenOrMsg::Ratify { value: Some(true) }.is_real_ratify());
        assert!(!BenOrMsg::Ratify { value: None }.is_real_ratify());
        assert!(!BenOrMsg::Report { value: true }.is_real_ratify());
    }
}
