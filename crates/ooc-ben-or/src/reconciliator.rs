//! Ben-Or's reconciliator (paper Algorithm 6): `return CoinFlip()`.
//!
//! This is the paper's punchline for §4.2: under the VAC decomposition the
//! shaker carries **no machinery at all** — no validity enforcement, no
//! communication — because only vacillating processors consult it and the
//! VAC's coherence laws protect any value already adopted elsewhere.
//! (Lemma 4: any value has non-zero probability, so eventually enough
//! processors flip the same side and the VAC observes agreement.)

use ooc_core::confidence::Confidence;
use ooc_core::objects::{NoMsg, ObjectNet, ReconciliatorObject};
use ooc_simnet::ProcessId;

/// The coin-flip reconciliator. Stateless; one instance per round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoinFlip;

impl CoinFlip {
    /// Creates the reconciliator.
    pub fn new() -> Self {
        CoinFlip
    }
}

impl ReconciliatorObject for CoinFlip {
    type Value = bool;
    type Msg = NoMsg;

    fn begin(
        &mut self,
        _confidence: Confidence,
        _sigma: bool,
        net: &mut dyn ObjectNet<NoMsg>,
    ) -> Option<bool> {
        Some(net.rng().coin() == 1)
    }

    fn on_message(
        &mut self,
        _from: ProcessId,
        msg: NoMsg,
        _net: &mut dyn ObjectNet<NoMsg>,
    ) -> Option<bool> {
        match msg {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::testkit::LoopbackNet;

    #[test]
    fn completes_immediately_without_sending() {
        let mut rec = CoinFlip::new();
        let mut net = LoopbackNet::<NoMsg>::new(0, 5, 7);
        let out = rec.begin(Confidence::Vacillate, true, &mut net);
        assert!(out.is_some());
        assert!(net.sent.is_empty());
    }

    #[test]
    fn both_sides_occur() {
        let mut rec = CoinFlip::new();
        let mut net = LoopbackNet::<NoMsg>::new(0, 5, 7);
        let mut seen = [false, false];
        for _ in 0..100 {
            let v = rec.begin(Confidence::Vacillate, true, &mut net).unwrap();
            seen[v as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn deterministic_given_rng_stream() {
        let flips = |seed: u64| -> Vec<bool> {
            let mut rec = CoinFlip::new();
            let mut net = LoopbackNet::<NoMsg>::new(0, 5, seed);
            (0..32)
                .map(|_| rec.begin(Confidence::Vacillate, false, &mut net).unwrap())
                .collect()
        };
        assert_eq!(flips(3), flips(3));
        assert_ne!(flips(3), flips(4));
    }
}
