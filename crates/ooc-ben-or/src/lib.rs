//! # ooc-ben-or
//!
//! Ben-Or's randomized asynchronous consensus (1983), decomposed per
//! paper §4.2 into:
//!
//! * [`BenOrVac`] — the vacillate-adopt-commit object of Algorithm 5:
//!   two message exchanges (*report*, then *ratify*) over an asynchronous
//!   network with `t < n/2` crash faults. A processor that sees more than
//!   `t` ratify messages **commits**; at least one, **adopts**; none,
//!   **vacillates**.
//! * [`CoinFlip`] — the reconciliator of Algorithm 6: `return CoinFlip()`.
//!   The paper's headline simplification: once the detector is a VAC, the
//!   shaker needs no validity machinery at all.
//! * [`BenOrProcess`] — the two composed through the generic template
//!   (`ooc_core::Template`, paper Algorithm 1).
//! * [`MonolithicBenOr`] — the classic hand-rolled protocol, used as the
//!   baseline when measuring what the decomposition costs.
//! * [`harness`] — seeded experiment runners used by the test-suite and
//!   the `ooc-bench` tables (T3, T4, T5, T7).
//!
//! Consensus here is **binary** (`bool`), as in Ben-Or's original paper.
//!
//! ## Quick start
//!
//! ```
//! use ooc_ben_or::harness::{run_decomposed, BenOrConfig};
//!
//! let cfg = BenOrConfig::new(5, 2); // n = 5, t = 2
//! let run = run_decomposed(&cfg, &[true, false, true, false, true], 42);
//! assert!(run.outcome.all_decided());
//! assert!(run.violations.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod monolithic;
pub mod msg;
pub mod reconciliator;
pub mod vac;

pub use harness::{
    balanced_inputs, run_decomposed, run_decomposed_gray, run_decomposed_with, split_adversary,
    BenOrConfig, BenOrRun, GrayOptions,
};
pub use monolithic::{MonolithicBenOr, MonolithicMsg};
pub use msg::BenOrMsg;
pub use reconciliator::CoinFlip;
pub use vac::BenOrVac;

/// The decomposed Ben-Or consensus process: Algorithm 1 instantiated with
/// [`BenOrVac`] and [`CoinFlip`].
pub type BenOrProcess = ooc_core::template::Template<BenOrVac, CoinFlip>;

/// The wire message type of [`BenOrProcess`].
pub type BenOrWire = ooc_core::template::TemplateMsg<BenOrMsg, ooc_core::objects::NoMsg>;
