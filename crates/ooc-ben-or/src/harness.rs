//! Seeded experiment runners for Ben-Or — shared by the integration tests,
//! the property tests and the `ooc-bench` tables (T3, T4, T5, T7).

use crate::monolithic::MonolithicBenOr;
use crate::reconciliator::CoinFlip;
use crate::vac::BenOrVac;
use crate::{BenOrProcess, BenOrWire};
use ooc_core::checker::{check_consensus, check_termination, RoundOutcomes, Violation};
use ooc_core::compose::{TwoAcVac, VacAsAc};
use ooc_core::confidence::Confidence;
use ooc_core::template::{RoundRecord, Template, TemplateConfig};
use ooc_simnet::{
    Adversary, ClockModel, Decision, FanoutKind, FaultPlan, FnAdversary, NetworkConfig, ProcessId,
    ReliabilityPolicy, RunLimit, RunOutcome, Sim, SimDuration, StateAdversary, StorageFaultPlan,
};

/// Parameters of a Ben-Or experiment.
#[derive(Debug, Clone)]
pub struct BenOrConfig {
    /// Network size.
    pub n: usize,
    /// Crash-fault tolerance (`t < n/2`).
    pub t: usize,
    /// Network behaviour.
    pub network: NetworkConfig,
    /// Crash schedule.
    pub faults: FaultPlan,
    /// Safety valve on template rounds.
    pub max_rounds: u64,
    /// Engine-level run limit (simulated time / event ceilings). The
    /// campaign engine tightens this so adversarial stalls surface as
    /// bounded runs instead of hanging the sweep.
    pub run_limit: RunLimit,
    /// Test-only sabotage: overrides the VAC commit threshold (the
    /// paper's rule is `t + 1`). See [`BenOrVac::with_commit_threshold`].
    pub commit_threshold: Option<usize>,
    /// Bounds engine trace capture to a ring of the most recent events
    /// (`None` = unbounded, keep everything). Campaign sweeps that never
    /// read happy-path traces set a small capacity; a failure is then
    /// replayed from its seed artifact with the default unbounded capture.
    pub trace_capacity: Option<usize>,
    /// Broadcast fan-out strategy of the engine. [`FanoutKind::Batched`]
    /// (the default) plans whole broadcasts in one pass; the
    /// per-recipient kind is kept as the A/B oracle. Byte-identical
    /// outcomes either way.
    pub fanout: FanoutKind,
    /// Reliable-delivery policy of the engine. `Off` (the default)
    /// reproduces the historical fire-and-forget network byte-for-byte;
    /// [`ReliabilityPolicy::Retransmit`] arms ack/dedup with seeded
    /// exponential-backoff retransmission.
    pub reliability: ReliabilityPolicy,
}

impl BenOrConfig {
    /// A default configuration for `n` processors tolerating `t` crashes.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(2 * t < n, "Ben-Or requires t < n/2 (got n={n}, t={t})");
        BenOrConfig {
            n,
            t,
            network: NetworkConfig::default(),
            faults: FaultPlan::default(),
            max_rounds: 10_000,
            run_limit: RunLimit::default(),
            commit_threshold: None,
            trace_capacity: None,
            fanout: FanoutKind::default(),
            reliability: ReliabilityPolicy::default(),
        }
    }

    /// Replaces the engine-level run limit.
    pub fn with_run_limit(mut self, limit: RunLimit) -> Self {
        self.run_limit = limit;
        self
    }

    /// Caps template rounds (a processor whose VAC reaches the cap stops
    /// making progress, which the checkers then report as a stall).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Test-only: plants a sabotaged VAC commit threshold so campaign
    /// tests can prove the checker pipeline catches an unsafe protocol.
    #[doc(hidden)]
    pub fn with_sabotaged_commit_threshold(mut self, threshold: usize) -> Self {
        self.commit_threshold = Some(threshold);
        self
    }

    /// Replaces the network configuration.
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = network;
        self
    }

    /// Replaces the fault plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Bounds engine trace capture to a ring of the most recent
    /// `capacity` events. Observability-only: stats, metrics and
    /// decisions are byte-identical to an unbounded run.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Selects the engine's broadcast fan-out strategy. Observability of
    /// the knob is nil by contract: batched and per-recipient runs are
    /// byte-identical, only wall time differs.
    pub fn with_fanout(mut self, fanout: FanoutKind) -> Self {
        self.fanout = fanout;
        self
    }

    /// Arms (or disarms) the engine's reliable-delivery layer. With
    /// [`ReliabilityPolicy::Retransmit`] every unicast is buffered,
    /// acked, deduplicated, and retransmitted on a seeded
    /// exponential-backoff schedule until acknowledged or retired.
    /// `Off` is the A/B oracle: byte-identical to the historical
    /// fire-and-forget engine.
    pub fn with_reliability(mut self, reliability: ReliabilityPolicy) -> Self {
        self.reliability = reliability;
        self
    }

    /// Processes that are never crashed by the fault plan (and therefore
    /// must terminate).
    pub fn must_decide(&self) -> Vec<ProcessId> {
        (0..self.n)
            .map(ProcessId)
            .filter(|p| !self.faults.crashes().iter().any(|&(q, _)| q == *p))
            .collect()
    }
}

/// Everything measured from one decomposed Ben-Or execution.
#[derive(Debug)]
pub struct BenOrRun {
    /// The engine-level outcome (decisions, stats, trace).
    pub outcome: RunOutcome<bool>,
    /// Per-process template histories.
    pub histories: Vec<Vec<RoundRecord<bool>>>,
    /// Property violations found by the checkers (must be empty).
    pub violations: Vec<Violation>,
    /// Highest round any processor completed.
    pub max_round: u64,
    /// Tally of `[vacillate, adopt, commit]` outcomes over all
    /// (processor, round) pairs — experiment T4's distribution.
    pub confidence_counts: [u64; 3],
    /// Number of (processor, round) adopt outcomes whose value differs
    /// from the final decision — exactly the states the paper's §5
    /// argument says an AC-based decomposition would wrongly commit (T5).
    pub adopt_divergences: u64,
}

impl BenOrRun {
    /// Rounds needed until the *last* processor decided (the usual
    /// latency metric for randomized consensus).
    pub fn rounds_to_decide(&self) -> Option<u64> {
        self.histories
            .iter()
            .zip(self.outcome.decisions.iter())
            .filter(|(_, d)| d.is_some())
            .map(|(h, _)| {
                h.iter()
                    .find(|r| r.outcome.confidence == Confidence::Commit)
                    .map(|r| r.round)
                    .unwrap_or(u64::MAX)
            })
            .max()
    }
}

fn analyze(
    cfg: &BenOrConfig,
    inputs: &[bool],
    outcome: RunOutcome<bool>,
    histories: Vec<Vec<RoundRecord<bool>>>,
    open_rounds: Vec<(u64, bool)>,
) -> BenOrRun {
    let mut violations = Vec::new();
    let max_round = histories
        .iter()
        .flat_map(|h| h.iter().map(|r| r.round))
        .max()
        .unwrap_or(0);
    let handles: Vec<(ProcessId, &[RoundRecord<bool>])> = histories
        .iter()
        .enumerate()
        .map(|(i, h)| (ProcessId(i), h.as_slice()))
        .collect();
    let mut confidence_counts = [0u64; 3];
    let mut adopt_divergences = 0u64;
    let final_value = outcome.decided_value();
    for round in 1..=max_round {
        // Processors that invoked `round` but never completed it (crashed
        // or still waiting) still count as invokers for validity and
        // convergence.
        let extra = open_rounds
            .iter()
            .zip(&histories)
            .filter(|((r, _), h)| *r == round && h.iter().all(|rec| rec.round != round))
            .map(|((_, v), _)| *v);
        let ro = RoundOutcomes::from_histories(round, &handles).with_extra_inputs(extra);
        violations.extend(ro.check_vac());
        for e in &ro.entries {
            confidence_counts[e.outcome.confidence as usize] += 1;
            if e.outcome.confidence == Confidence::Adopt {
                if let Some(f) = final_value {
                    if e.outcome.value != f {
                        adopt_divergences += 1;
                    }
                }
            }
        }
    }
    violations.extend(check_consensus(inputs, &outcome.decisions));
    violations.extend(check_termination(&cfg.must_decide(), &outcome.decisions));
    BenOrRun {
        outcome,
        histories,
        violations,
        max_round,
        confidence_counts,
        adopt_divergences,
    }
}

fn template_config(cfg: &BenOrConfig) -> TemplateConfig {
    TemplateConfig {
        halt_after_decide: false,
        max_rounds: Some(cfg.max_rounds),
    }
}

/// Runs the decomposed protocol (template + [`BenOrVac`] + [`CoinFlip`],
/// paper Algorithms 1, 5, 6) and checks every paper property on the way
/// out.
///
/// # Panics
/// Panics if `inputs.len() != cfg.n`, or if `cfg.faults` schedules
/// restarts — Ben-Or is analyzed under **crash-stop**, and a restarted
/// process would silently resume with its full pre-crash state (see
/// [`FaultPlan::assert_crash_stop`]).
pub fn run_decomposed(cfg: &BenOrConfig, inputs: &[bool], seed: u64) -> BenOrRun {
    run_decomposed_with(cfg, inputs, seed, None)
}

/// Like [`run_decomposed`] but with a custom message-scheduling adversary.
pub fn run_decomposed_with(
    cfg: &BenOrConfig,
    inputs: &[bool],
    seed: u64,
    adversary: Option<Box<dyn Adversary<BenOrWire>>>,
) -> BenOrRun {
    run_decomposed_gray(
        cfg,
        inputs,
        seed,
        GrayOptions {
            adversary,
            ..GrayOptions::default()
        },
    )
}

/// Gray-failure knobs for [`run_decomposed_gray`]: at most one adversary
/// (message-adaptive *or* state-adaptive), per-process clock drift, and
/// slow-disk injection.
#[derive(Default)]
pub struct GrayOptions {
    /// A message-scheduling adversary (sees payloads, not state).
    pub adversary: Option<Box<dyn Adversary<BenOrWire>>>,
    /// A state-adaptive adversary (sees live protocol observables).
    pub state_adversary: Option<Box<dyn StateAdversary<BenOrWire>>>,
    /// Per-process timer-rate model (default: every clock nominal).
    pub clocks: ClockModel,
    /// Storage fault policy, including `sync()` latency injection.
    pub storage: StorageFaultPlan,
}

/// Like [`run_decomposed`] but under the full gray-failure model: drifting
/// clocks, slow disks, and optionally a state-adaptive adversary with a
/// read-only view of live votes, rounds, and decisions.
pub fn run_decomposed_gray(
    cfg: &BenOrConfig,
    inputs: &[bool],
    seed: u64,
    opts: GrayOptions,
) -> BenOrRun {
    assert_eq!(inputs.len(), cfg.n, "one input per processor");
    cfg.faults.assert_crash_stop("Ben-Or");
    let (n, t) = (cfg.n, cfg.t);
    let threshold = cfg.commit_threshold.unwrap_or(t + 1);
    let mut builder = Sim::builder(cfg.network.clone())
        .seed(seed)
        .fanout(cfg.fanout)
        .reliability(cfg.reliability)
        .faults(cfg.faults.clone())
        .clocks(opts.clocks)
        .storage(opts.storage)
        .processes(inputs.iter().map(|&v| -> BenOrProcess {
            Template::vac(
                v,
                move |_m| BenOrVac::with_commit_threshold(n, t, threshold),
                |_m| CoinFlip::new(),
                template_config(cfg),
            )
        }));
    if let Some(adv) = opts.adversary {
        builder = builder.adversary(adv);
    }
    if let Some(adv) = opts.state_adversary {
        builder = builder.state_adversary(adv);
    }
    if let Some(cap) = cfg.trace_capacity {
        builder = builder.trace_capacity(cap);
    }
    let mut sim = builder.build();
    let outcome = sim.run(cfg.run_limit);
    let histories: Vec<_> = (0..cfg.n)
        .map(|i| sim.process(ProcessId(i)).history().to_vec())
        .collect();
    let open_rounds: Vec<(u64, bool)> = (0..cfg.n)
        .map(|i| {
            let p = sim.process(ProcessId(i));
            (p.round(), *p.preference())
        })
        .collect();
    analyze(cfg, inputs, outcome, histories, open_rounds)
}

/// The §5 composition: the same consensus but with the VAC built from two
/// adopt-commit objects ([`TwoAcVac`] over [`VacAsAc`]`<`[`BenOrVac`]`>`),
/// i.e. four message exchanges per round instead of two. Used by T7 to
/// price the composition.
pub fn run_composed(cfg: &BenOrConfig, inputs: &[bool], seed: u64) -> BenOrRun {
    assert_eq!(inputs.len(), cfg.n, "one input per processor");
    cfg.faults.assert_crash_stop("Ben-Or");
    let (n, t) = (cfg.n, cfg.t);
    type ComposedVac = TwoAcVac<VacAsAc<BenOrVac>>;
    let mut sim = Sim::builder(cfg.network.clone())
        .seed(seed)
        .fanout(cfg.fanout)
        .reliability(cfg.reliability)
        .faults(cfg.faults.clone())
        .processes(inputs.iter().map(|&v| -> Template<ComposedVac, CoinFlip> {
            Template::vac(
                v,
                move |_m| {
                    TwoAcVac::new(
                        VacAsAc(BenOrVac::new(n, t)),
                        VacAsAc(BenOrVac::new(n, t)),
                    )
                },
                |_m| CoinFlip::new(),
                template_config(cfg),
            )
        }))
        .build();
    let outcome = sim.run(RunLimit::default());
    let histories: Vec<_> = (0..cfg.n)
        .map(|i| sim.process(ProcessId(i)).history().to_vec())
        .collect();
    let open_rounds: Vec<(u64, bool)> = (0..cfg.n)
        .map(|i| {
            let p = sim.process(ProcessId(i));
            (p.round(), *p.preference())
        })
        .collect();
    analyze(cfg, inputs, outcome, histories, open_rounds)
}

/// Runs the monolithic baseline; returns the engine outcome plus the
/// highest round any processor reached.
pub fn run_monolithic(cfg: &BenOrConfig, inputs: &[bool], seed: u64) -> (RunOutcome<bool>, u64) {
    assert_eq!(inputs.len(), cfg.n, "one input per processor");
    cfg.faults.assert_crash_stop("Ben-Or");
    let mut sim = Sim::builder(cfg.network.clone())
        .seed(seed)
        .fanout(cfg.fanout)
        .reliability(cfg.reliability)
        .faults(cfg.faults.clone())
        .processes(
            inputs
                .iter()
                .map(|&v| MonolithicBenOr::new(v, cfg.n, cfg.t)),
        )
        .build();
    let outcome = sim.run(RunLimit::default());
    let max_round = (0..cfg.n)
        .map(|i| sim.process(ProcessId(i)).round())
        .max()
        .unwrap_or(0);
    (outcome, max_round)
}

/// A split-vote adversary: messages within each half of the network are
/// fast, messages across halves are slow. With a half-and-half input split
/// this is the classic attempt to keep Ben-Or's votes balanced; the
/// coin-flip reconciliator must still break through (Lemma 4 / T3).
pub fn split_adversary<M: 'static>(
    n: usize,
    fast: (u64, u64),
    slow: (u64, u64),
) -> Box<dyn Adversary<M>> {
    Box::new(FnAdversary::new(move |_at, from, to, _msg: &M, rng| {
        let same_half = (from.index() < n / 2) == (to.index() < n / 2);
        let (lo, hi) = if same_half { fast } else { slow };
        Decision::DeliverAfter(SimDuration::from_ticks(rng.range_inclusive(lo.max(1), hi.max(1))))
    }))
}

/// Alternating `true/false` inputs — the adversarially balanced workload.
pub fn balanced_inputs(n: usize) -> Vec<bool> {
    (0..n).map(|i| i % 2 == 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::SimTime;

    #[test]
    #[should_panic(expected = "crash-stop protocol")]
    fn decomposed_rejects_restart_plans() {
        use ooc_simnet::{FaultPlan, ProcessId};
        let cfg = BenOrConfig::new(5, 2).with_faults(
            FaultPlan::new()
                .crash_at(ProcessId(4), SimTime::from_ticks(10))
                .restart_at(ProcessId(4), SimTime::from_ticks(50)),
        );
        let _ = run_decomposed(&cfg, &balanced_inputs(5), 0);
    }

    #[test]
    #[should_panic(expected = "crash-stop protocol")]
    fn composed_rejects_restart_plans() {
        use ooc_simnet::{FaultPlan, ProcessId};
        let cfg = BenOrConfig::new(5, 2).with_faults(
            FaultPlan::new()
                .crash_at(ProcessId(4), SimTime::from_ticks(10))
                .restart_at(ProcessId(4), SimTime::from_ticks(50)),
        );
        let _ = run_composed(&cfg, &balanced_inputs(5), 0);
    }

    #[test]
    #[should_panic(expected = "crash-stop protocol")]
    fn monolithic_rejects_restart_plans() {
        use ooc_simnet::{FaultPlan, ProcessId};
        let cfg = BenOrConfig::new(5, 2).with_faults(
            FaultPlan::new()
                .crash_at(ProcessId(4), SimTime::from_ticks(10))
                .restart_at(ProcessId(4), SimTime::from_ticks(50)),
        );
        let _ = run_monolithic(&cfg, &balanced_inputs(5), 0);
    }

    #[test]
    fn decomposed_ben_or_is_correct_across_seeds() {
        let cfg = BenOrConfig::new(5, 2);
        for seed in 0..25 {
            let run = run_decomposed(&cfg, &balanced_inputs(5), seed);
            assert!(run.outcome.all_decided(), "seed {seed}");
            assert!(
                run.violations.is_empty(),
                "seed {seed}: {:?}",
                run.violations
            );
        }
    }

    #[test]
    fn unanimous_inputs_commit_in_round_one() {
        let cfg = BenOrConfig::new(5, 2);
        for seed in 0..10 {
            let run = run_decomposed(&cfg, &[true; 5], seed);
            assert_eq!(run.outcome.decided_value(), Some(true));
            assert_eq!(run.rounds_to_decide(), Some(1), "convergence ⇒ round 1");
        }
    }

    #[test]
    fn tolerates_t_crashes() {
        let n = 7;
        let t = 3;
        let cfg = BenOrConfig::new(n, t)
            .with_faults(FaultPlan::new().crash_tail(n, t, SimTime::from_ticks(20)));
        for seed in 0..10 {
            let run = run_decomposed(&cfg, &balanced_inputs(n), seed);
            assert!(
                run.violations.is_empty(),
                "seed {seed}: {:?}",
                run.violations
            );
        }
    }

    #[test]
    fn split_adversary_cannot_block_termination() {
        let n = 6;
        let cfg = BenOrConfig::new(n, 2);
        for seed in 0..5 {
            let run = run_decomposed_with(
                &cfg,
                &balanced_inputs(n),
                seed,
                Some(split_adversary(n, (1, 3), (30, 60))),
            );
            assert!(run.outcome.all_decided(), "seed {seed}");
            assert!(run.violations.is_empty(), "seed {seed}");
        }
    }

    #[test]
    fn composed_vac_is_correct_and_heavier() {
        let cfg = BenOrConfig::new(5, 2);
        let mut composed_msgs = 0;
        let mut native_msgs = 0;
        for seed in 0..10 {
            let c = run_composed(&cfg, &balanced_inputs(5), seed);
            assert!(c.violations.is_empty(), "seed {seed}: {:?}", c.violations);
            let nrun = run_decomposed(&cfg, &balanced_inputs(5), seed);
            composed_msgs += c.outcome.stats.messages_sent;
            native_msgs += nrun.outcome.stats.messages_sent;
        }
        assert!(
            composed_msgs > native_msgs,
            "two ACs must cost more messages than one native VAC"
        );
    }

    #[test]
    fn monolithic_and_decomposed_agree_on_guarantees() {
        let cfg = BenOrConfig::new(5, 2);
        for seed in 0..10 {
            let (out, _) = run_monolithic(&cfg, &balanced_inputs(5), seed);
            assert!(out.all_decided(), "seed {seed}");
            assert!(out.agreement(), "seed {seed}");
        }
    }

    #[test]
    fn confidence_distribution_is_tracked() {
        let cfg = BenOrConfig::new(5, 2);
        let mut totals = [0u64; 3];
        for seed in 0..20 {
            let run = run_decomposed(&cfg, &balanced_inputs(5), seed);
            for (i, c) in run.confidence_counts.iter().enumerate() {
                totals[i] += c;
            }
        }
        // Every run ends with commits, and balanced inputs force some
        // vacillation along the way.
        assert!(totals[Confidence::Commit as usize] > 0);
        assert!(totals[Confidence::Vacillate as usize] > 0);
    }

    #[test]
    #[should_panic(expected = "one input per processor")]
    fn input_arity_is_checked() {
        let cfg = BenOrConfig::new(5, 2);
        let _ = run_decomposed(&cfg, &[true], 0);
    }
}
