//! The wait-free register-based adopt-commit (Gafni '98 style).
//!
//! ```text
//! AC(i, v):
//!   announce[i] ← v
//!   view ← collect(announce)
//!   if every non-⊥ value in view equals v:  flag[i] ← (v, candidate)
//!   else:                                   flag[i] ← (v, plain)
//!   flags ← collect(flag)
//!   if every non-⊥ flag is (v, candidate):  return (commit, v)
//!   else if some flag is (w, candidate):    return (adopt, w)
//!   else:                                   return (adopt, v)
//! ```
//!
//! Why coherence holds: suppose `p` returns `(commit, v)`. Every process
//! `q` writes its flag *before* collecting flags. If `q`'s collect missed
//! `p`'s `(v, candidate)` flag, then `q`'s flag write precedes `p`'s
//! collect — but `p` saw only `(v, candidate)` flags, so `q`'s flag was
//! `(v, candidate)` too and `q` leaves with value `v`. If `q`'s collect
//! did see `p`'s flag, the candidate branch forces `q`'s value to a
//! candidate value; two candidates can't carry different values (the
//! first candidate-writer to finish its announce-collect would have seen
//! the other's conflicting announce). Convergence is immediate: identical
//! inputs make every flag `(v, candidate)`.

use crate::register::Collect;
use ooc_core::confidence::AcOutcome;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Flag<V> {
    value: V,
    candidate: bool,
}

/// A single-use, n-process adopt-commit object in shared memory.
///
/// `propose` is wait-free: two collects, two writes.
#[derive(Debug)]
pub struct RegisterAc<V> {
    announce: Collect<V>,
    flags: Collect<Flag<V>>,
}

impl<V: Clone + PartialEq> RegisterAc<V> {
    /// An adopt-commit for `n` processes.
    pub fn new(n: usize) -> Self {
        RegisterAc {
            announce: Collect::new(n),
            flags: Collect::new(n),
        }
    }

    /// Process `i` proposes `v`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    pub fn propose(&self, i: usize, v: V) -> AcOutcome<V> {
        self.announce.update(i, v.clone());
        let view = self.announce.collect();
        let unanimous = view
            .iter()
            .flatten()
            .all(|w| *w == v);
        self.flags.update(
            i,
            Flag {
                value: v.clone(),
                candidate: unanimous,
            },
        );
        let flags = self.flags.collect();
        let mut all_candidate_v = true;
        let mut some_candidate: Option<V> = None;
        for f in flags.iter().flatten() {
            if f.candidate
                && some_candidate.is_none() {
                    some_candidate = Some(f.value.clone());
                }
            if !(f.candidate && f.value == v) {
                all_candidate_v = false;
            }
        }
        if all_candidate_v {
            // Our own flag is among them, so the set is non-empty.
            AcOutcome::commit(v)
        } else if let Some(w) = some_candidate {
            AcOutcome::adopt(w)
        } else {
            AcOutcome::adopt(v)
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.announce.n()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::checker::{ac_entries, RoundOutcomes};
    use ooc_core::confidence::AcConfidence;
    use ooc_simnet::ProcessId;
    use std::sync::Arc;

    #[test]
    fn solo_proposal_commits() {
        let ac = RegisterAc::new(3);
        assert_eq!(ac.propose(0, 7u64), AcOutcome::commit(7));
    }

    #[test]
    fn sequential_identical_proposals_commit() {
        let ac = RegisterAc::new(3);
        assert_eq!(ac.propose(0, 7u64), AcOutcome::commit(7));
        assert_eq!(ac.propose(1, 7), AcOutcome::commit(7));
        assert_eq!(ac.propose(2, 7), AcOutcome::commit(7));
    }

    #[test]
    fn sequential_conflicting_second_adopts_first() {
        let ac = RegisterAc::new(2);
        assert_eq!(ac.propose(0, 1u64), AcOutcome::commit(1));
        // The second proposer sees the conflict and must leave with 1.
        let out = ac.propose(1, 2);
        assert_eq!(out.value, 1, "coherence with the earlier commit");
        // (Either confidence is allowed by the spec; value is forced.)
    }

    /// Hammer the object with real threads and check the AC laws on every
    /// execution.
    fn hammer(n: usize, inputs: &[u64], iterations: usize) {
        for it in 0..iterations {
            let ac = Arc::new(RegisterAc::new(n));
            let outs: Vec<AcOutcome<u64>> = std::thread::scope(|s| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let ac = Arc::clone(&ac);
                        s.spawn(move || ac.propose(i, v))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let round = RoundOutcomes {
                round: 1,
                entries: ac_entries(
                    outs.iter()
                        .enumerate()
                        .map(|(i, o)| (ProcessId(i), inputs[i], *o)),
                ),
                extra_inputs: Vec::new(),
            };
            let v = round.check_ac();
            assert!(v.is_empty(), "iteration {it}: {v:?} (outs {outs:?})");
        }
    }

    #[test]
    fn concurrent_identical_inputs_all_commit() {
        for _ in 0..100 {
            let ac = Arc::new(RegisterAc::new(4));
            let outs: Vec<AcOutcome<u64>> = std::thread::scope(|s| {
                (0..4)
                    .map(|i| {
                        let ac = Arc::clone(&ac);
                        s.spawn(move || ac.propose(i, 9))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for o in outs {
                assert_eq!(o, AcOutcome::commit(9), "convergence");
            }
        }
    }

    #[test]
    fn concurrent_mixed_inputs_satisfy_coherence() {
        hammer(4, &[0, 1, 0, 1], 200);
    }

    #[test]
    fn concurrent_three_values_satisfy_coherence() {
        hammer(3, &[10, 20, 30], 200);
    }

    #[test]
    fn commit_forces_global_value() {
        // Directly assert the AC coherence clause on raw outcomes.
        for _ in 0..200 {
            let ac = Arc::new(RegisterAc::new(4));
            let outs: Vec<AcOutcome<u64>> = std::thread::scope(|s| {
                [3u64, 3, 8, 8]
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let ac = Arc::clone(&ac);
                        s.spawn(move || ac.propose(i, v))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            if let Some(c) = outs.iter().find(|o| o.confidence == AcConfidence::Commit) {
                for o in &outs {
                    assert_eq!(o.value, c.value, "{outs:?}");
                }
            }
        }
    }
}
