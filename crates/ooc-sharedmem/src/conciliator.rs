//! Aspnes' probabilistic-write conciliator.
//!
//! A single shared register, initially `⊥`. Each invoker alternates
//! between reading the register (returning its value if somebody already
//! wrote) and writing its own value with small probability `p ≈ 1/n`.
//! With constant probability exactly one write lands before anyone's
//! read, and then *every* invoker returns that value — the
//! "probabilistic agreement" the conciliator spec asks for. Validity is
//! immediate (only proposed values are ever written) and termination is
//! bounded by the fallback write.

use crate::register::AtomicRegister;
use ooc_simnet::SplitMix64;

/// A single-use, n-process conciliator in shared memory.
#[derive(Debug)]
pub struct ProbWriteConciliator<V> {
    register: AtomicRegister<V>,
    write_probability: f64,
    max_steps: u32,
}

impl<V: Clone> ProbWriteConciliator<V> {
    /// A conciliator tuned for `n` processes (`p = 1/n`).
    pub fn new(n: usize) -> Self {
        ProbWriteConciliator {
            register: AtomicRegister::new(),
            write_probability: 1.0 / n.max(1) as f64,
            max_steps: (4 * n.max(1)) as u32,
        }
    }

    /// Process proposes `v`; returns the (hopefully common) value.
    ///
    /// Each caller needs its own RNG — determinism across a run is the
    /// caller's concern (thread interleavings are not deterministic
    /// anyway on this substrate).
    pub fn propose(&self, v: V, rng: &mut SplitMix64) -> V {
        for _ in 0..self.max_steps {
            if let Some(w) = self.register.read() {
                return w;
            }
            if rng.chance(self.write_probability) {
                self.register.write(v.clone());
                return v;
            }
        }
        // Fallback: claim the register if still empty, else defer.
        self.register.write_if_empty(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn solo_invoker_gets_own_value() {
        let c = ProbWriteConciliator::new(1);
        let mut rng = SplitMix64::new(1);
        assert_eq!(c.propose(42u64, &mut rng), 42);
    }

    #[test]
    fn returned_values_are_valid() {
        for seed in 0..50 {
            let c = Arc::new(ProbWriteConciliator::new(4));
            let outs: Vec<u64> = std::thread::scope(|s| {
                (0..4u64)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || {
                            let mut rng = SplitMix64::new(seed * 100 + i);
                            c.propose(i * 11, &mut rng)
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for v in outs {
                assert!(v % 11 == 0 && v <= 33, "validity: {v}");
            }
        }
    }

    #[test]
    fn agreement_happens_with_decent_frequency() {
        // The spec only demands probability > 0; empirically the
        // probabilistic write gives much more. Require ≥ 20% here to
        // keep the test robust across schedulers.
        let mut agreements = 0;
        let trials = 200;
        for seed in 0..trials {
            let c = Arc::new(ProbWriteConciliator::new(4));
            let outs: Vec<u64> = std::thread::scope(|s| {
                (0..4u64)
                    .map(|i| {
                        let c = Arc::clone(&c);
                        s.spawn(move || {
                            let mut rng = SplitMix64::new(seed * 991 + i);
                            c.propose(i, &mut rng)
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            if outs.windows(2).all(|w| w[0] == w[1]) {
                agreements += 1;
            }
        }
        assert!(
            agreements * 5 >= trials,
            "only {agreements}/{trials} agreed"
        );
    }

    #[test]
    fn sequential_invocations_chain_to_first_writer() {
        let c = ProbWriteConciliator::new(3);
        let mut rng = SplitMix64::new(7);
        let first = c.propose(5u64, &mut rng);
        let second = c.propose(9, &mut rng);
        assert_eq!(first, 5);
        assert_eq!(second, 5, "later invokers read the landed value");
    }
}
