//! A shared-memory vacillate-adopt-commit, built from two register-based
//! adopt-commits via the paper's §5 construction — and the shared-memory
//! reading of Algorithm 1 on top of it.
//!
//! This closes the matrix: both of the paper's templates run on both
//! substrates (message passing in `ooc-ben-or`/`ooc-phase-king`, shared
//! memory here).

use crate::adopt_commit::RegisterAc;
use ooc_core::confidence::{AcConfidence, Confidence, VacOutcome};
use ooc_simnet::SplitMix64;
use parking_lot::Mutex;
use std::sync::Arc;

/// A single-use, n-process VAC in shared memory: `AC₁ ; AC₂` composed by
/// the §5 table (`commit` iff both commit, `adopt` iff AC₂ commits,
/// `vacillate` otherwise). Wait-free: four collects, four writes.
#[derive(Debug)]
pub struct RegisterVac<V> {
    first: RegisterAc<V>,
    second: RegisterAc<V>,
}

impl<V: Clone + PartialEq> RegisterVac<V> {
    /// A VAC for `n` processes.
    pub fn new(n: usize) -> Self {
        RegisterVac {
            first: RegisterAc::new(n),
            second: RegisterAc::new(n),
        }
    }

    /// Process `i` proposes `v`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    pub fn propose(&self, i: usize, v: V) -> VacOutcome<V> {
        let a = self.first.propose(i, v);
        let b = self.second.propose(i, a.value);
        let confidence = match (a.confidence, b.confidence) {
            (AcConfidence::Commit, AcConfidence::Commit) => Confidence::Commit,
            (_, AcConfidence::Commit) => Confidence::Adopt,
            _ => Confidence::Vacillate,
        };
        VacOutcome {
            confidence,
            value: b.value,
        }
    }
}

struct VacRound {
    vac: RegisterVac<u64>,
}

/// Shared-memory consensus via the paper's **Algorithm 1**: a VAC per
/// round, with the coin-flip reconciliator (vacillate → flip between the
/// current value and a rival seen in the announce phase is not needed —
/// binary values are assumed, exactly as in Ben-Or).
///
/// Values are restricted to `{0, 1}` so the coin-flip reconciliator is
/// valid (any flipped value is some process's possible input under
/// binary consensus).
pub struct VacConsensus {
    n: usize,
    rounds: Mutex<Vec<Arc<VacRound>>>,
    max_rounds: usize,
}

impl std::fmt::Debug for VacConsensus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VacConsensus")
            .field("n", &self.n)
            .field("rounds_created", &self.rounds.lock().len())
            .finish()
    }
}

impl VacConsensus {
    /// A binary consensus object for `n` processes.
    pub fn new(n: usize) -> Self {
        VacConsensus {
            n,
            rounds: Mutex::new(Vec::new()),
            max_rounds: 10_000,
        }
    }

    fn round(&self, m: usize) -> Arc<VacRound> {
        let mut rounds = self.rounds.lock();
        while rounds.len() <= m {
            rounds.push(Arc::new(VacRound {
                vac: RegisterVac::new(self.n),
            }));
        }
        Arc::clone(&rounds[m])
    }

    /// Process `i` proposes bit `v`; returns the decided bit.
    ///
    /// # Panics
    /// Panics if `i ≥ n`, `v > 1`, or the 10 000-round safety valve
    /// trips.
    pub fn propose(&self, i: usize, v: u64, seed: u64) -> u64 {
        assert!(i < self.n, "process id {i} out of range (n = {})", self.n);
        assert!(v <= 1, "binary consensus: input must be 0 or 1");
        let mut rng = SplitMix64::new(seed);
        let mut v = v;
        for m in 0..self.max_rounds {
            let round = self.round(m);
            let outcome = round.vac.propose(i, v);
            match outcome.confidence {
                Confidence::Commit => return outcome.value,
                Confidence::Adopt => v = outcome.value,
                Confidence::Vacillate => v = rng.coin(),
            }
        }
        panic!(
            "shared-memory VAC consensus failed to converge in {} rounds",
            self.max_rounds
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_core::checker::{RoundEntry, RoundOutcomes};
    use ooc_simnet::ProcessId;

    #[test]
    fn solo_propose_commits() {
        let vac = RegisterVac::new(3);
        assert_eq!(vac.propose(0, 7u64), VacOutcome::commit(7));
    }

    #[test]
    fn sequential_conflict_yields_adopt_of_first() {
        let vac = RegisterVac::new(2);
        assert_eq!(vac.propose(0, 1u64), VacOutcome::commit(1));
        let second = vac.propose(1, 2);
        assert_eq!(second.value, 1, "coherence with the earlier commit");
        assert!(second.confidence >= Confidence::Adopt);
    }

    #[test]
    fn concurrent_executions_satisfy_vac_laws() {
        for it in 0..300u64 {
            let n = 3 + (it as usize % 2);
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            let vac = Arc::new(RegisterVac::new(n));
            let outs: Vec<VacOutcome<u64>> = std::thread::scope(|s| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let vac = Arc::clone(&vac);
                        s.spawn(move || vac.propose(i, v))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let round = RoundOutcomes {
                round: it,
                entries: outs
                    .iter()
                    .enumerate()
                    .map(|(i, o)| RoundEntry {
                        process: ProcessId(i),
                        input: inputs[i],
                        outcome: *o,
                    })
                    .collect(),
                extra_inputs: Vec::new(),
            };
            let v = round.check_vac();
            assert!(v.is_empty(), "execution {it}: {v:?} ({outs:?})");
        }
    }

    #[test]
    fn unanimous_threads_commit() {
        for _ in 0..100 {
            let vac = Arc::new(RegisterVac::new(4));
            let outs: Vec<VacOutcome<u64>> = std::thread::scope(|s| {
                (0..4)
                    .map(|i| {
                        let vac = Arc::clone(&vac);
                        s.spawn(move || vac.propose(i, 6))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            for o in outs {
                assert_eq!(o, VacOutcome::commit(6), "convergence");
            }
        }
    }

    #[test]
    fn algorithm1_consensus_in_shared_memory() {
        for seed in 0..80 {
            let n = 2 + (seed as usize % 3);
            let inputs: Vec<u64> = (0..n as u64).map(|i| i % 2).collect();
            let c = Arc::new(VacConsensus::new(n));
            let outs: Vec<u64> = std::thread::scope(|s| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        let c = Arc::clone(&c);
                        s.spawn(move || c.propose(i, v, seed * 131 + i as u64))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let first = outs[0];
            assert!(outs.iter().all(|&v| v == first), "agreement: {outs:?}");
            assert!(first <= 1, "validity (binary)");
            if inputs.iter().all(|&v| v == inputs[0]) {
                assert_eq!(first, inputs[0], "unanimity validity");
            }
        }
    }

    #[test]
    #[should_panic(expected = "binary consensus")]
    fn inputs_must_be_bits() {
        let c = VacConsensus::new(2);
        let _ = c.propose(0, 5, 0);
    }
}
