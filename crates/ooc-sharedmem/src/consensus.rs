//! Shared-memory consensus: the paper's Algorithm 2 loop over
//! [`RegisterAc`] and [`ProbWriteConciliator`].
//!
//! ```text
//! Consensus(v):
//!   m ← 0
//!   loop:
//!     m ← m + 1
//!     (X, σ) ← AC_m(v)
//!     match X:
//!       adopt  → v ← Conciliator_m(X, σ, m)
//!       commit → decide σ
//! ```
//!
//! Round objects are created lazily and shared by all threads; each
//! invocation of round `m` uses the *same* AC/conciliator instances, as
//! the framework requires.

use crate::adopt_commit::RegisterAc;
use crate::conciliator::ProbWriteConciliator;
use ooc_simnet::SplitMix64;
use parking_lot::Mutex;
use std::sync::Arc;

struct Round {
    ac: RegisterAc<u64>,
    conciliator: ProbWriteConciliator<u64>,
}

/// An n-process shared-memory consensus object over `u64` values.
///
/// Thread-safe: call [`SharedConsensus::propose`] once per process id
/// from any thread. See the [crate docs](crate) for an example.
pub struct SharedConsensus {
    n: usize,
    rounds: Mutex<Vec<Arc<Round>>>,
    max_rounds: usize,
}

impl std::fmt::Debug for SharedConsensus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedConsensus")
            .field("n", &self.n)
            .field("rounds_created", &self.rounds.lock().len())
            .finish()
    }
}

impl SharedConsensus {
    /// A consensus object for `n` processes.
    pub fn new(n: usize) -> Self {
        SharedConsensus {
            n,
            rounds: Mutex::new(Vec::new()),
            max_rounds: 10_000,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    fn round(&self, m: usize) -> Arc<Round> {
        let mut rounds = self.rounds.lock();
        while rounds.len() <= m {
            rounds.push(Arc::new(Round {
                ac: RegisterAc::new(self.n),
                conciliator: ProbWriteConciliator::new(self.n),
            }));
        }
        Arc::clone(&rounds[m])
    }

    /// Process `i` proposes `v` with a caller-supplied RNG seed; returns
    /// the decided value.
    ///
    /// # Panics
    /// Panics if `i ≥ n`, or if the round safety valve (10 000) trips —
    /// which would indicate a broken conciliator, since each round agrees
    /// with probability bounded away from zero.
    pub fn propose(&self, i: usize, v: u64, seed: u64) -> u64 {
        assert!(i < self.n, "process id {i} out of range (n = {})", self.n);
        let mut rng = SplitMix64::new(seed);
        let mut v = v;
        for m in 0..self.max_rounds {
            let round = self.round(m);
            let outcome = round.ac.propose(i, v);
            if outcome.is_commit() {
                return outcome.value;
            }
            v = round.conciliator.propose(outcome.value, &mut rng);
        }
        panic!("shared-memory consensus failed to converge in {} rounds", self.max_rounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(n: usize, inputs: &[u64], seed: u64) -> Vec<u64> {
        let c = Arc::new(SharedConsensus::new(n));
        std::thread::scope(|s| {
            inputs
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let c = Arc::clone(&c);
                    s.spawn(move || c.propose(i, v, seed * 7919 + i as u64))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        })
    }

    #[test]
    fn agreement_and_validity_across_many_executions() {
        for seed in 0..100 {
            let inputs = [1u64, 2, 3, 4];
            let outs = run(4, &inputs, seed);
            let first = outs[0];
            assert!(outs.iter().all(|&v| v == first), "agreement: {outs:?}");
            assert!(inputs.contains(&first), "validity: {first}");
        }
    }

    #[test]
    fn unanimous_inputs_decide_that_value() {
        for seed in 0..50 {
            let outs = run(3, &[9, 9, 9], seed);
            assert_eq!(outs, vec![9, 9, 9]);
        }
    }

    #[test]
    fn two_processes_binary() {
        for seed in 0..100 {
            let outs = run(2, &[0, 1], seed);
            assert_eq!(outs[0], outs[1], "agreement");
            assert!(outs[0] <= 1, "validity");
        }
    }

    #[test]
    fn single_process_decides_immediately() {
        let outs = run(1, &[5], 3);
        assert_eq!(outs, vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_bounds_are_checked() {
        let c = SharedConsensus::new(2);
        let _ = c.propose(2, 0, 0);
    }
}
