//! Linearizable registers and collects.

use parking_lot::RwLock;

/// A multi-writer multi-reader atomic register.
///
/// A `parking_lot::RwLock` around a value is linearizable (each read and
/// write is a critical section), which is all the theory asks of an
/// atomic register; the algorithms built on top are what this crate is
/// about.
#[derive(Debug, Default)]
pub struct AtomicRegister<T> {
    cell: RwLock<Option<T>>,
}

impl<T: Clone> AtomicRegister<T> {
    /// A register holding `⊥`.
    pub fn new() -> Self {
        AtomicRegister {
            cell: RwLock::new(None),
        }
    }

    /// Reads the register (`None` = `⊥`).
    pub fn read(&self) -> Option<T> {
        self.cell.read().clone()
    }

    /// Writes the register.
    pub fn write(&self, value: T) {
        *self.cell.write() = Some(value);
    }

    /// Writes only if the register still holds `⊥`; returns the winner's
    /// value either way. (A convenience for conciliator tests; not used
    /// by the register-only algorithms.)
    pub fn write_if_empty(&self, value: T) -> T {
        let mut cell = self.cell.write();
        match &*cell {
            Some(v) => v.clone(),
            None => {
                *cell = Some(value.clone());
                value
            }
        }
    }
}

/// A collect object: one single-writer slot per process, plus a
/// wait-free `collect` that reads all slots one at a time.
#[derive(Debug)]
pub struct Collect<T> {
    slots: Vec<AtomicRegister<T>>,
}

impl<T: Clone> Collect<T> {
    /// A collect over `n` slots, all `⊥`.
    pub fn new(n: usize) -> Self {
        Collect {
            slots: (0..n).map(|_| AtomicRegister::new()).collect(),
        }
    }

    /// Number of slots.
    pub fn n(&self) -> usize {
        self.slots.len()
    }

    /// Writes process `i`'s slot.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn update(&self, i: usize, value: T) {
        self.slots[i].write(value);
    }

    /// Reads every slot (a *collect*, not a snapshot: slots are read one
    /// by one, which is exactly what the register-based AC needs).
    pub fn collect(&self) -> Vec<Option<T>> {
        self.slots.iter().map(|s| s.read()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn register_read_write() {
        let r = AtomicRegister::new();
        assert_eq!(r.read(), None);
        r.write(5u64);
        assert_eq!(r.read(), Some(5));
        r.write(7);
        assert_eq!(r.read(), Some(7));
    }

    #[test]
    fn write_if_empty_keeps_first() {
        let r = AtomicRegister::new();
        assert_eq!(r.write_if_empty(1u64), 1);
        assert_eq!(r.write_if_empty(2), 1);
        assert_eq!(r.read(), Some(1));
    }

    #[test]
    fn collect_sees_updates() {
        let c = Collect::new(3);
        c.update(1, 9u64);
        assert_eq!(c.collect(), vec![None, Some(9), None]);
        assert_eq!(c.n(), 3);
    }

    #[test]
    fn concurrent_writers_leave_some_value() {
        let r = Arc::new(AtomicRegister::new());
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let r = Arc::clone(&r);
                s.spawn(move || r.write(i));
            }
        });
        assert!(r.read().is_some_and(|v| v < 8));
    }

    #[test]
    fn concurrent_write_if_empty_has_single_winner() {
        for _ in 0..50 {
            let r = Arc::new(AtomicRegister::new());
            let results: Vec<u64> = std::thread::scope(|s| {
                (0..4u64)
                    .map(|i| {
                        let r = Arc::clone(&r);
                        s.spawn(move || r.write_if_empty(i))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let winner = r.read().unwrap();
            assert!(results.iter().all(|&v| v == winner), "{results:?}");
        }
    }
}
