//! # ooc-sharedmem
//!
//! The shared-memory substrate of Aspnes' framework ("A modular approach
//! to shared-memory consensus", which the paper builds on as reference
//! \[2\]). The paper's message-passing decompositions have shared-memory
//! ancestors; this crate implements those on their native model:
//!
//! * [`AtomicRegister`] / [`Collect`] — linearizable multi-reader
//!   registers and the one-slot-per-writer collect object.
//! * [`RegisterAc`] — the classic wait-free, register-based adopt-commit
//!   (Gafni '98-style, two announce/flag phases).
//! * [`ProbWriteConciliator`] — Aspnes' probabilistic-write conciliator:
//!   a single shared register written with small probability per step, so
//!   with constant probability exactly one value lands first.
//! * [`SharedConsensus`] — the paper's Algorithm 2 loop
//!   (`AC`; on adopt → conciliator; on commit → decide) over those
//!   objects, runnable from real threads.
//! * [`RegisterVac`] / [`VacConsensus`] — the §5 two-AC VAC construction
//!   on registers, and the paper's Algorithm 1 (VAC + coin-flip
//!   reconciliator) in shared memory.
//!
//! Unlike the simulator crates, executions here are genuinely concurrent
//! (threads + `parking_lot` locks), so tests assert safety on every
//! observed execution rather than replaying a seed.
//!
//! ## Quick start
//!
//! ```
//! use ooc_sharedmem::SharedConsensus;
//! use std::sync::Arc;
//!
//! let consensus = Arc::new(SharedConsensus::new(3));
//! let decisions: Vec<u64> = std::thread::scope(|s| {
//!     (0..3)
//!         .map(|i| {
//!             let c = Arc::clone(&consensus);
//!             s.spawn(move || c.propose(i, (i as u64) * 10, 42 + i as u64))
//!         })
//!         .collect::<Vec<_>>()
//!         .into_iter()
//!         .map(|h| h.join().unwrap())
//!         .collect()
//! });
//! assert!(decisions.windows(2).all(|w| w[0] == w[1]), "agreement");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adopt_commit;
pub mod conciliator;
pub mod consensus;
pub mod register;
pub mod vac;

pub use adopt_commit::RegisterAc;
pub use conciliator::ProbWriteConciliator;
pub use consensus::SharedConsensus;
pub use register::{AtomicRegister, Collect};
pub use vac::{RegisterVac, VacConsensus};
