//! Seeded experiment runners for Phase-King — shared by the integration
//! tests and the `ooc-bench` tables (T1, T2, T7).
//!
//! The Byzantine processors occupy the **first** `t` ids, which is the
//! adversarial placement for the rotating king: the faulty processors get
//! the crown first, so the `≤ t + 1` honest-king bound is actually
//! exercised.

use crate::adaptive::AdaptiveAttacker;
use crate::byzantine::{Attack, ByzantinePhaseKing};
use crate::{phase_king_process, phase_king_process_paper_rule, PhaseKingProcess, PhaseKingWire};
use ooc_core::checker::{RoundOutcomes, Violation, ViolationKind};
use ooc_core::template::RoundRecord;
use ooc_simnet::{ProcessId, SyncContext, SyncProcess, SyncSim};

/// Parameters of a Phase-King experiment.
#[derive(Debug, Clone, Copy)]
pub struct PhaseKingConfig {
    /// Network size (honest + Byzantine).
    pub n: usize,
    /// Fault tolerance the protocol is parameterized with (`3t < n`).
    /// The fault *budget*: Byzantine processors plus mid-run crashes must
    /// stay within it for the checks to be sound.
    pub t: usize,
    /// Number of actually-Byzantine processors, occupying ids
    /// `0..byzantine`. Defaults to `t`; lowered (via
    /// [`PhaseKingConfig::with_byzantine`]) when part of the fault budget
    /// is spent on crash faults instead.
    pub byzantine: usize,
    /// The Byzantine behaviour.
    pub attack: Attack,
    /// Phases before the template gives up.
    pub max_phases: u64,
    /// Use the paper's literal decide-at-commit rule instead of the
    /// classical decide-after-`t+1`-phases rule. **Unsound** against
    /// Byzantine kings — kept so the violation can be demonstrated (see
    /// the `paper_rule_is_unsound_under_byzantine_kings` test).
    pub paper_decision_rule: bool,
}

impl PhaseKingConfig {
    /// A configuration for `n` processors with `t` Byzantine equivocators.
    ///
    /// # Panics
    /// Panics unless `3t < n`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(3 * t < n, "Phase-King requires 3t < n (got n={n}, t={t})");
        PhaseKingConfig {
            n,
            t,
            byzantine: t,
            attack: Attack::Equivocate,
            max_phases: t as u64 + 4,
            paper_decision_rule: false,
        }
    }

    /// Replaces the attack.
    pub fn with_attack(mut self, attack: Attack) -> Self {
        self.attack = attack;
        self
    }

    /// Places only `byzantine ≤ t` actual Byzantine processors, leaving
    /// the rest of the fault budget for crash schedules (see
    /// [`run_phase_king_with_crashes`]).
    ///
    /// # Panics
    /// Panics if `byzantine > t`.
    pub fn with_byzantine(mut self, byzantine: usize) -> Self {
        assert!(
            byzantine <= self.t,
            "byzantine count {byzantine} exceeds fault budget t={}",
            self.t
        );
        self.byzantine = byzantine;
        self
    }

    /// Switches to the paper's decide-at-commit rule (unsound under
    /// Byzantine kings; for demonstrations).
    pub fn with_paper_decision_rule(mut self) -> Self {
        self.paper_decision_rule = true;
        self
    }

    /// API parity with the Ben-Or harness's `with_reliability`:
    /// accepted and ignored. The
    /// lock-step [`SyncSim`] engine delivers every round's messages
    /// exactly once by construction, so acks, retransmission, and
    /// duplicate suppression are all vacuous — there is nothing for a
    /// reliability layer to repair. Harness call sites can therefore be
    /// written uniformly across the two engines.
    pub fn with_reliability(self, _reliability: ooc_simnet::ReliabilityPolicy) -> Self {
        self
    }

    /// Ids of the honest processors (`byzantine..n`).
    pub fn honest_ids(&self) -> Vec<ProcessId> {
        (self.byzantine..self.n).map(ProcessId).collect()
    }
}

/// A node of the mixed network — an enum (rather than boxing) so the
/// harness can still reach the honest processors' histories after the run.
#[derive(Debug)]
pub enum Node {
    /// A correct processor running the decomposed protocol.
    Honest(PhaseKingProcess),
    /// An oblivious Byzantine processor.
    Byzantine(ByzantinePhaseKing),
    /// A coordinated, state-tracking Byzantine processor.
    Byzantine2(AdaptiveAttacker),
}

impl Node {
    /// The honest processor inside, if this node is honest.
    pub fn honest(&self) -> Option<&PhaseKingProcess> {
        match self {
            Node::Honest(p) => Some(p),
            _ => None,
        }
    }
}

impl SyncProcess for Node {
    type Msg = PhaseKingWire;
    type Output = u64;

    fn on_round(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, PhaseKingWire)],
        ctx: &mut SyncContext<'_, PhaseKingWire, u64>,
    ) {
        match self {
            Node::Honest(p) => p.on_round(round, inbox, ctx),
            Node::Byzantine(b) => b.on_round(round, inbox, ctx),
            Node::Byzantine2(b) => b.on_round(round, inbox, ctx),
        }
    }
}

/// Everything measured from one decomposed Phase-King execution.
#[derive(Debug)]
pub struct PhaseKingRun {
    /// Per-process decisions (Byzantine slots always `None`).
    pub decisions: Vec<Option<u64>>,
    /// Round each processor decided in.
    pub decision_rounds: Vec<Option<u64>>,
    /// Honest processors' per-phase records.
    pub honest_histories: Vec<(ProcessId, Vec<RoundRecord<u64>>)>,
    /// Per-honest-processor decision phase (see
    /// `SyncAcConsensus::decision_phase`).
    pub decision_phases: Vec<Option<u64>>,
    /// Property violations (must be empty).
    pub violations: Vec<Violation>,
    /// Network rounds executed.
    pub rounds: u64,
    /// Messages sent (including Byzantine traffic).
    pub messages: u64,
    /// The honest ids of this run.
    pub honest: Vec<ProcessId>,
    /// Honest processors crashed by the schedule (exempt from the
    /// termination check).
    pub crashed: Vec<ProcessId>,
}

impl PhaseKingRun {
    /// Whether every honest processor that survived decided.
    pub fn all_honest_decided(&self) -> bool {
        self.honest
            .iter()
            .filter(|p| !self.crashed.contains(p))
            .all(|p| self.decisions[p.index()].is_some())
    }

    /// Latest phase that fixed any honest processor's decision.
    pub fn phases_to_decide(&self) -> Option<u64> {
        self.decision_phases.iter().copied().max().flatten()
    }

    /// Earliest phase in which an honest processor committed, if any.
    pub fn first_commit_phase(&self) -> Option<u64> {
        self.honest_histories
            .iter()
            .filter_map(|(_, h)| h.iter().find(|r| r.outcome.is_commit()).map(|r| r.round))
            .min()
    }
}

/// Runs the decomposed Phase-King: Byzantine nodes on ids `0..byzantine`,
/// honest nodes with `honest_inputs` (length `n − byzantine`, domain
/// `{0, 1}`) on ids `byzantine..n`. Checks agreement, Byzantine validity
/// (unanimity in ⇒ unanimity out), the `t + 2`-phase decision bound, and
/// the per-phase AC laws over the honest outcomes.
///
/// # Panics
/// Panics if `honest_inputs.len() != n − byzantine` or an input is
/// outside `{0, 1}`.
pub fn run_phase_king(cfg: &PhaseKingConfig, honest_inputs: &[u64], seed: u64) -> PhaseKingRun {
    run_phase_king_with_crashes(cfg, honest_inputs, seed, &[])
}

/// Like [`run_phase_king`] but with a crash schedule: each `(p, round)`
/// silences honest processor `p` from synchronous round `round` on. This
/// is the campaign engine's king-crasher hook — with kings rotating
/// through `ProcessId((phase − 1) % n)` and each phase spanning three
/// sync rounds, a schedule can decapitate each reign as it starts.
///
/// Crash faults draw from the same budget as Byzantine faults: the run
/// asserts `byzantine + |crashed| ≤ t` so every property check stays
/// sound. Crashed processors are exempt from the termination check, and
/// a phase a processor died in contributes its going-in preference as an
/// *extra input* to the convergence law (mirroring the Ben-Or harness's
/// open-round accounting).
///
/// # Panics
/// Panics on non-honest crash ids or a schedule that blows the fault
/// budget.
pub fn run_phase_king_with_crashes(
    cfg: &PhaseKingConfig,
    honest_inputs: &[u64],
    seed: u64,
    crashes: &[(ProcessId, u64)],
) -> PhaseKingRun {
    assert_eq!(
        honest_inputs.len(),
        cfg.n - cfg.byzantine,
        "one input per honest processor"
    );
    assert!(
        honest_inputs.iter().all(|&v| v <= 1),
        "inputs must be binary"
    );
    let mut crashed: Vec<ProcessId> = crashes.iter().map(|&(p, _)| p).collect();
    crashed.sort_unstable();
    crashed.dedup();
    for p in &crashed {
        assert!(
            p.index() >= cfg.byzantine && p.index() < cfg.n,
            "crash schedule names non-honest {p}"
        );
    }
    assert!(
        cfg.byzantine + crashed.len() <= cfg.t,
        "fault budget exceeded: {} Byzantine + {} crashed > t={}",
        cfg.byzantine,
        crashed.len(),
        cfg.t
    );
    let mut procs: Vec<Node> = Vec::with_capacity(cfg.n);
    for _ in 0..cfg.byzantine {
        procs.push(Node::Byzantine(ByzantinePhaseKing::new(cfg.attack)));
    }
    for &v in honest_inputs {
        let p = if cfg.paper_decision_rule {
            phase_king_process_paper_rule(v, cfg.n, cfg.t, cfg.max_phases)
        } else {
            phase_king_process(v, cfg.n, cfg.t, cfg.max_phases)
        };
        procs.push(Node::Honest(p));
    }
    let mut sim = SyncSim::new(procs, seed);
    for &(p, round) in crashes {
        sim.crash_at_round(p, round);
    }
    let honest = cfg.honest_ids();
    sim.track_only(honest.iter().copied());
    let out = sim.run(3 * cfg.max_phases + 3);

    let honest_histories: Vec<(ProcessId, Vec<RoundRecord<u64>>)> = honest
        .iter()
        .map(|&p| {
            let h = sim
                .process(p)
                .honest()
                // ooc-lint::allow(protocol/panic, "iterates honest ids only; honest() is Some for them")
                .expect("honest slot")
                .history()
                .to_vec();
            (p, h)
        })
        .collect();
    let decision_phases: Vec<Option<u64>> = honest
        .iter()
        // ooc-lint::allow(protocol/panic, "iterates honest ids only; honest() is Some for them")
        .map(|&p| sim.process(p).honest().expect("honest slot").decision_phase())
        .collect();

    let mut violations = Vec::new();

    // Agreement + termination among honest processors.
    let honest_decisions: Vec<(ProcessId, Option<u64>)> = honest
        .iter()
        .map(|&p| (p, out.decisions[p.index()]))
        .collect();
    let mut deciders = honest_decisions.iter().filter_map(|(p, d)| d.map(|d| (*p, d)));
    if let Some((p0, d0)) = deciders.next() {
        for (p, d) in deciders {
            if d != d0 {
                violations.push(Violation {
                    kind: ViolationKind::Agreement,
                    round: None,
                    detail: format!("{p0} decided {d0} but {p} decided {d}"),
                });
            }
        }
    }
    for (p, d) in &honest_decisions {
        if d.is_none() && !crashed.contains(p) {
            violations.push(Violation {
                kind: ViolationKind::Termination,
                round: None,
                detail: format!("honest {p} never decided"),
            });
        }
    }

    // Byzantine validity: honest unanimity in ⇒ that value out.
    if let Some(&first) = honest_inputs.first() {
        if honest_inputs.iter().all(|&v| v == first) {
            for (p, d) in &honest_decisions {
                if let Some(d) = d {
                    if *d != first {
                        violations.push(Violation {
                            kind: ViolationKind::DecisionValidity,
                            round: None,
                            detail: format!(
                                "honest unanimity on {first} but {p} decided {d}"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Per-phase AC laws over honest outcomes (paper Lemma 2): convergence
    // and coherence. (Round validity is *not* checked: the protocol's
    // internal "no majority" marker 2 is a legal AC value here, and the
    // Byzantine inputs are unobservable.)
    let handles: Vec<(ProcessId, &[RoundRecord<u64>])> = honest_histories
        .iter()
        .map(|(p, h)| (*p, h.as_slice()))
        .collect();
    let max_phase = honest_histories
        .iter()
        .flat_map(|(_, h)| h.iter().map(|r| r.round))
        .max()
        .unwrap_or(0);
    // A crashed processor's phase-in-flight never completes, but it still
    // *invoked* it — its going-in preference (last completed phase's
    // outcome value, or its initial input) counts as an extra input for
    // the convergence law in the first phase missing from its history.
    let open_inputs: Vec<(u64, u64)> = crashed
        .iter()
        .filter_map(|p| {
            let (_, h) = honest_histories.iter().find(|(q, _)| q == p)?;
            match h.last() {
                Some(rec) => Some((rec.round + 1, rec.outcome.value)),
                None => Some((1, honest_inputs[p.index() - cfg.byzantine])),
            }
        })
        .collect();
    for phase in 1..=max_phase {
        let ro = RoundOutcomes::from_histories(phase, &handles).with_extra_inputs(
            open_inputs
                .iter()
                .filter(|&&(ph, _)| ph == phase)
                .map(|&(_, v)| v),
        );
        violations.extend(ro.check_convergence());
        violations.extend(ro.check_coherence_adopt_commit());
        // AC interface: no vacillate outcomes can exist.
        for e in &ro.entries {
            if e.outcome.confidence == ooc_core::Confidence::Vacillate {
                violations.push(Violation {
                    kind: ViolationKind::CoherenceAdoptCommit,
                    round: Some(phase),
                    detail: format!("{} vacillated out of an adopt-commit", e.process),
                });
            }
        }
    }

    // Decision bound: some king among phases 1..=t+1 is honest and
    // aligns every honest processor; convergence commits everyone one
    // phase later, so every honest processor commits by phase t + 2.
    let bound = cfg.t as u64 + 2;
    for (p, h) in &honest_histories {
        if let Some(rec) = h.iter().find(|r| r.outcome.is_commit()) {
            if rec.round > bound {
                violations.push(Violation {
                    kind: ViolationKind::Termination,
                    round: Some(rec.round),
                    detail: format!("{p} committed after phase bound {bound}"),
                });
            }
        }
    }

    PhaseKingRun {
        decisions: out.decisions,
        decision_rounds: out.decision_rounds,
        honest_histories,
        decision_phases,
        violations,
        rounds: out.rounds,
        messages: out.messages_sent,
        honest,
        crashed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_unanimous_decides_immediately() {
        let cfg = PhaseKingConfig::new(4, 0);
        let run = run_phase_king(&cfg, &[1, 1, 1, 1], 3);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        assert_eq!(run.phases_to_decide(), Some(1));
        // Without Byzantine processors the naive bound is exact.
        for p in &run.honest {
            assert_eq!(run.decisions[p.index()], Some(1));
        }
    }

    #[test]
    fn fault_free_mixed_inputs_agree() {
        let cfg = PhaseKingConfig::new(4, 0);
        for seed in 0..10 {
            let run = run_phase_king(&cfg, &[0, 1, 0, 1], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
        }
    }

    #[test]
    fn equivocators_cannot_break_it() {
        let cfg = PhaseKingConfig::new(7, 2).with_attack(Attack::Equivocate);
        for seed in 0..10 {
            let run = run_phase_king(&cfg, &[0, 1, 0, 1, 0], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            assert!(run.all_honest_decided());
        }
    }

    #[test]
    fn all_attacks_preserve_safety() {
        for attack in [
            Attack::Silent,
            Attack::Fixed(0),
            Attack::Fixed(1),
            Attack::Fixed(2),
            Attack::Equivocate,
            Attack::Random,
        ] {
            let cfg = PhaseKingConfig::new(7, 2).with_attack(attack);
            for seed in 0..5 {
                let run = run_phase_king(&cfg, &[1, 0, 1, 0, 1], seed);
                assert!(
                    run.violations.is_empty(),
                    "{attack:?} seed {seed}: {:?}",
                    run.violations
                );
            }
        }
    }

    #[test]
    fn byzantine_cannot_flip_unanimity() {
        let cfg = PhaseKingConfig::new(10, 3).with_attack(Attack::Fixed(0));
        for seed in 0..5 {
            let run = run_phase_king(&cfg, &[1; 7], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
            for p in &run.honest {
                assert_eq!(run.decisions[p.index()], Some(1), "seed {seed}");
            }
        }
    }

    #[test]
    fn paper_rule_is_unsound_under_byzantine_kings() {
        // Reproduction finding: the paper's decide-at-commit rule
        // (Algorithm 2 read literally) lets a Byzantine king violate the
        // conciliator's validity after an early commit, after which the
        // remaining honest processors can commit — and decide — the
        // other value. At n = 4, t = 1 even the uncoordinated Random
        // attack stumbles into it.
        let cfg = PhaseKingConfig::new(4, 1)
            .with_attack(Attack::Random)
            .with_paper_decision_rule();
        let mut agreement_broken = 0;
        for seed in 0..300 {
            let run = run_phase_king(&cfg, &[0, 1, 0], seed);
            if run
                .violations
                .iter()
                .any(|v| v.kind == ViolationKind::Agreement)
            {
                agreement_broken += 1;
            }
        }
        assert!(
            agreement_broken > 0,
            "expected the decide-at-commit hazard to materialize"
        );
    }

    #[test]
    fn classical_rule_is_sound_where_paper_rule_breaks() {
        // The same sweep with the classical decide-after-t+1-phases rule
        // must be spotless.
        let cfg = PhaseKingConfig::new(4, 1).with_attack(Attack::Random);
        for seed in 0..300 {
            let run = run_phase_king(&cfg, &[0, 1, 0], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
        }
    }

    #[test]
    fn first_commit_is_within_t_plus_two_phases() {
        // The t+2 bound applies to the FIRST commit even under attack.
        let cfg = PhaseKingConfig::new(7, 2).with_attack(Attack::Equivocate);
        for seed in 0..10 {
            let run = run_phase_king(&cfg, &[0, 1, 0, 1, 0], seed);
            let first_commit = run
                .honest_histories
                .iter()
                .filter_map(|(_, h)| h.iter().find(|r| r.outcome.is_commit()).map(|r| r.round))
                .min()
                .expect("someone commits");
            assert!(first_commit <= cfg.t as u64 + 2, "seed {seed}: {first_commit}");
        }
    }

    #[test]
    fn crash_schedule_within_budget_stays_safe() {
        // Fault budget t=2 split as 1 Byzantine + 1 crash: the crashed
        // processor is exempt from termination, everyone else must still
        // agree within the bound.
        let cfg = PhaseKingConfig::new(7, 2).with_byzantine(1);
        for seed in 0..10 {
            for crash_round in 0..9 {
                let run = run_phase_king_with_crashes(
                    &cfg,
                    &[0, 1, 0, 1, 0, 1],
                    seed,
                    &[(ProcessId(3), crash_round)],
                );
                assert!(
                    run.violations.is_empty(),
                    "seed {seed} crash@{crash_round}: {:?}",
                    run.violations
                );
                assert!(run.all_honest_decided(), "seed {seed} crash@{crash_round}");
            }
        }
    }

    #[test]
    fn crashing_each_early_king_stays_safe() {
        // The king-crasher shape: with kings rotating through
        // ProcessId((phase − 1) % n), silence an honest king one round
        // into its reign. Budget t=2, all spent on crashes.
        let cfg = PhaseKingConfig::new(7, 2).with_byzantine(0);
        for seed in 0..5 {
            for victim_phase in 1..=2u64 {
                let king = ProcessId(((victim_phase - 1) % 7) as usize);
                let crash_round = (victim_phase - 1) * 3 + 1;
                let run = run_phase_king_with_crashes(
                    &cfg,
                    &[0, 1, 0, 1, 0, 1, 0],
                    seed,
                    &[(king, crash_round)],
                );
                assert!(
                    run.violations.is_empty(),
                    "seed {seed} phase {victim_phase}: {:?}",
                    run.violations
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "fault budget exceeded")]
    fn crash_schedule_cannot_blow_the_budget() {
        let cfg = PhaseKingConfig::new(7, 2);
        let _ = run_phase_king_with_crashes(
            &cfg,
            &[0, 1, 0, 1, 0],
            0,
            &[(ProcessId(3), 1)],
        );
    }

    #[test]
    #[should_panic(expected = "non-honest")]
    fn crash_schedule_must_name_honest_ids() {
        let cfg = PhaseKingConfig::new(7, 2).with_byzantine(1);
        let _ = run_phase_king_with_crashes(
            &cfg,
            &[0, 1, 0, 1, 0, 1],
            0,
            &[(ProcessId(0), 1)],
        );
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn inputs_must_be_binary() {
        let cfg = PhaseKingConfig::new(4, 0);
        let _ = run_phase_king(&cfg, &[0, 1, 2, 1], 0);
    }

    #[test]
    fn larger_networks_hold_up() {
        let cfg = PhaseKingConfig::new(13, 4).with_attack(Attack::Equivocate);
        let inputs: Vec<u64> = (0..9).map(|i| (i % 2) as u64).collect();
        for seed in 0..3 {
            let run = run_phase_king(&cfg, &inputs, seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
        }
    }
}
