//! Phase-**Queen** — the sister algorithm from the same Berman-Garay-
//! Perry paper the announcement cites as \[4\] — decomposed into the same
//! AC + conciliator shape.
//!
//! Phase-Queen trades resilience for speed: phases are **two** rounds
//! instead of three, at the cost of tolerating only `4t < n` (vs
//! Phase-King's optimal `3t < n`). Its decomposition:
//!
//! * **AC** ([`PhaseQueenAc`], 2 steps): broadcast `v`; let `maj` be the
//!   majority value received with count `cnt`; return
//!   `(commit, maj)` if `cnt > n/2 + t`, else `(adopt, maj)`.
//!   *Coherence*: `cnt > n/2 + t` at one processor means more than `n/2`
//!   *honest* processors sent `maj`, so every processor's majority value
//!   is `maj`. *Convergence*: honest unanimity gives counts `≥ n − t >
//!   n/2 + t` (this is where `4t < n` bites).
//! * **Conciliator** ([`QueenConciliator`], 2 steps): the phase's queen
//!   broadcasts its value; adopters take it.
//!
//! Exactly like Phase-King, the paper-style decide-at-commit rule is
//! Byzantine-unsound here, so [`phase_queen_process`] defaults to the
//! classical decide-after-`t + 1`-phases rule.

use ooc_core::confidence::AcOutcome;
use ooc_core::sync_objects::{SyncObjCtx, SyncObject};
use ooc_core::{SyncAcConsensus, SyncDecisionRule};
use ooc_simnet::ProcessId;
use std::collections::BTreeSet;

/// The queen of phase `m` (1-based), rotating round-robin.
pub fn queen_of_phase(phase: u64, n: usize) -> ProcessId {
    ProcessId(((phase - 1) % n as u64) as usize)
}

/// One phase's adopt-commit: a single universal exchange with the
/// `n/2 + t` threshold.
#[derive(Debug, Clone)]
pub struct PhaseQueenAc {
    n: usize,
    t: usize,
}

impl PhaseQueenAc {
    /// Creates the object for `n` processors, `t` Byzantine.
    ///
    /// # Panics
    /// Panics unless `4t < n`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(4 * t < n, "Phase-Queen requires 4t < n (got n={n}, t={t})");
        PhaseQueenAc { n, t }
    }

    fn tally(inbox: &[(ProcessId, u64)]) -> [usize; 2] {
        let mut counts = [0usize; 2];
        let mut seen = BTreeSet::new();
        for &(from, value) in inbox {
            if value < 2 && seen.insert(from) {
                counts[value as usize] += 1;
            }
        }
        counts
    }
}

impl SyncObject for PhaseQueenAc {
    type Value = u64;
    type Msg = u64;
    type Outcome = AcOutcome<u64>;

    fn steps(&self) -> u64 {
        2
    }

    fn step(
        &mut self,
        k: u64,
        input: &u64,
        inbox: &[(ProcessId, u64)],
        ctx: &mut SyncObjCtx<'_, u64>,
    ) -> Option<AcOutcome<u64>> {
        match k {
            0 => {
                ctx.broadcast((*input).min(1));
                None
            }
            1 => {
                let counts = Self::tally(inbox);
                let maj = u64::from(counts[1] >= counts[0]);
                let cnt = counts[maj as usize];
                Some(if 2 * cnt > self.n + 2 * self.t {
                    // cnt > n/2 + t without integer-division pitfalls.
                    AcOutcome::commit(maj)
                } else {
                    AcOutcome::adopt(maj)
                })
            }
            // ooc-lint::allow(protocol/panic, "SyncObject::STEPS pins PhaseQueenAc to exactly 2 steps")
            _ => unreachable!("PhaseQueenAc has exactly 2 steps"),
        }
    }
}

/// One phase's conciliator: the queen broadcasts, adopters take her value.
#[derive(Debug, Clone)]
pub struct QueenConciliator {
    queen: ProcessId,
}

impl QueenConciliator {
    /// Creates the conciliator for phase `phase` of an `n`-processor
    /// network.
    pub fn new(n: usize, phase: u64) -> Self {
        QueenConciliator {
            queen: queen_of_phase(phase, n),
        }
    }

    /// The queen this instance listens to.
    pub fn queen(&self) -> ProcessId {
        self.queen
    }
}

impl SyncObject for QueenConciliator {
    type Value = u64;
    type Msg = u64;
    type Outcome = u64;

    fn steps(&self) -> u64 {
        2
    }

    fn step(
        &mut self,
        k: u64,
        input: &u64,
        inbox: &[(ProcessId, u64)],
        ctx: &mut SyncObjCtx<'_, u64>,
    ) -> Option<u64> {
        match k {
            0 => {
                if ctx.me() == self.queen {
                    ctx.broadcast((*input).min(1));
                }
                None
            }
            1 => Some(
                inbox
                    .iter()
                    .find(|&&(from, value)| from == self.queen && value <= 1)
                    .map(|&(_, value)| value)
                    .unwrap_or_else(|| (*input).min(1)),
            ),
            // ooc-lint::allow(protocol/panic, "SyncObject::STEPS pins QueenConciliator to exactly 2 steps")
            _ => unreachable!("QueenConciliator has exactly 2 steps"),
        }
    }
}

/// The decomposed Phase-Queen process.
pub type PhaseQueenProcess = SyncAcConsensus<PhaseQueenAc, QueenConciliator>;

/// Builds a decomposed Phase-Queen processor with the classical
/// decide-after-`t + 1`-phases rule.
///
/// # Panics
/// Panics unless `4t < n`.
pub fn phase_queen_process(input: u64, n: usize, t: usize, max_phases: u64) -> PhaseQueenProcess {
    assert!(4 * t < n, "Phase-Queen requires 4t < n (got n={n}, t={t})");
    SyncAcConsensus::new(
        input,
        move |_phase| PhaseQueenAc::new(n, t),
        move |phase| QueenConciliator::new(n, phase),
        max_phases,
    )
    .with_decision_rule(SyncDecisionRule::AtPhaseEnd(t as u64 + 1))
}


/// A node of the mixed Phase-Queen network.
#[derive(Debug)]
enum QueenNode {
    Honest(PhaseQueenProcess),
    Byzantine(crate::ByzantinePhaseKing),
}

impl ooc_simnet::SyncProcess for QueenNode {
    type Msg = crate::PhaseKingWire;
    type Output = u64;

    fn on_round(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, crate::PhaseKingWire)],
        ctx: &mut ooc_simnet::SyncContext<'_, crate::PhaseKingWire, u64>,
    ) {
        match self {
            QueenNode::Honest(p) => p.on_round(round, inbox, ctx),
            QueenNode::Byzantine(b) => b.on_round(round, inbox, ctx),
        }
    }
}

/// Everything measured from one Phase-Queen execution.
#[derive(Debug)]
pub struct PhaseQueenRun {
    /// Per-process decisions (Byzantine slots `None`).
    pub decisions: Vec<Option<u64>>,
    /// Network rounds executed.
    pub rounds: u64,
    /// Messages sent (including Byzantine traffic).
    pub messages: u64,
    /// Property violations (must be empty).
    pub violations: Vec<ooc_core::checker::Violation>,
    /// The honest ids.
    pub honest: Vec<ProcessId>,
}

/// Runs decomposed Phase-Queen: Byzantine nodes (with `attack`) on ids
/// `0..t`, honest nodes with `honest_inputs` on ids `t..n`. Checks
/// agreement, termination, and unanimity validity over honest
/// processors.
///
/// # Panics
/// Panics if `honest_inputs.len() != n − t` or inputs are not binary.
pub fn run_phase_queen(
    n: usize,
    t: usize,
    attack: crate::Attack,
    honest_inputs: &[u64],
    seed: u64,
) -> PhaseQueenRun {
    use ooc_core::checker::{Violation, ViolationKind};
    assert_eq!(honest_inputs.len(), n - t, "one input per honest processor");
    assert!(honest_inputs.iter().all(|&v| v <= 1), "inputs must be binary");
    let max_phases = t as u64 + 3;
    let mut procs: Vec<QueenNode> = Vec::with_capacity(n);
    for _ in 0..t {
        procs.push(QueenNode::Byzantine(crate::ByzantinePhaseKing::for_queen(
            attack,
        )));
    }
    for &v in honest_inputs {
        procs.push(QueenNode::Honest(phase_queen_process(v, n, t, max_phases)));
    }
    let mut sim = ooc_simnet::SyncSim::new(procs, seed);
    let honest: Vec<ProcessId> = (t..n).map(ProcessId).collect();
    sim.track_only(honest.iter().copied());
    let out = sim.run(2 * max_phases + 3);

    let mut violations = Vec::new();
    let honest_decisions: Vec<(ProcessId, Option<u64>)> = honest
        .iter()
        .map(|&p| (p, out.decisions[p.index()]))
        .collect();
    let mut deciders = honest_decisions
        .iter()
        .filter_map(|(p, d)| d.map(|d| (*p, d)));
    if let Some((p0, d0)) = deciders.next() {
        for (p, d) in deciders {
            if d != d0 {
                violations.push(Violation {
                    kind: ViolationKind::Agreement,
                    round: None,
                    detail: format!("{p0} decided {d0} but {p} decided {d}"),
                });
            }
        }
    }
    for (p, d) in &honest_decisions {
        if d.is_none() {
            violations.push(Violation {
                kind: ViolationKind::Termination,
                round: None,
                detail: format!("honest {p} never decided"),
            });
        }
    }
    if let Some(&first) = honest_inputs.first() {
        if honest_inputs.iter().all(|&v| v == first) {
            for (p, d) in &honest_decisions {
                if *d != Some(first) && d.is_some() {
                    violations.push(Violation {
                        kind: ViolationKind::DecisionValidity,
                        round: None,
                        detail: format!("unanimity on {first} but {p} decided {d:?}"),
                    });
                }
            }
        }
    }
    PhaseQueenRun {
        decisions: out.decisions,
        rounds: out.rounds,
        messages: out.messages_sent,
        violations,
        honest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::SplitMix64;

    fn inbox(values: &[u64]) -> Vec<(ProcessId, u64)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId(i), v))
            .collect()
    }

    #[test]
    #[should_panic(expected = "4t < n")]
    fn resilience_bound_enforced() {
        let _ = PhaseQueenAc::new(8, 2);
    }

    #[test]
    fn unanimity_commits() {
        // n = 9, t = 2: threshold is cnt > 4.5 + 2 = 6.5, i.e. ≥ 7.
        let mut ac = PhaseQueenAc::new(9, 2);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        {
            let mut ctx = SyncObjCtx::new(ProcessId(0), 9, &mut rng, &mut out);
            assert!(ac.step(0, &1, &[], &mut ctx).is_none());
            let o = ac.step(1, &1, &inbox(&[1; 9]), &mut ctx);
            assert_eq!(o, Some(AcOutcome::commit(1)));
        }
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn bare_majority_only_adopts() {
        let mut ac = PhaseQueenAc::new(9, 2);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(0), 9, &mut rng, &mut out);
        ac.step(0, &1, &[], &mut ctx);
        // 6 ones: majority but 2·6 = 12 ≤ 9 + 4 = 13 ⇒ adopt.
        let o = ac.step(1, &1, &inbox(&[1, 1, 1, 1, 1, 1, 0, 0, 0]), &mut ctx);
        assert_eq!(o, Some(AcOutcome::adopt(1)));
    }

    #[test]
    fn seven_of_nine_commits() {
        let mut ac = PhaseQueenAc::new(9, 2);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(0), 9, &mut rng, &mut out);
        ac.step(0, &0, &[], &mut ctx);
        // 7 zeros: 2·7 = 14 > 13 ⇒ commit.
        let o = ac.step(1, &0, &inbox(&[0, 0, 0, 0, 0, 0, 0, 1, 1]), &mut ctx);
        assert_eq!(o, Some(AcOutcome::commit(0)));
    }

    #[test]
    fn queen_rotates_and_broadcasts() {
        assert_eq!(queen_of_phase(1, 5), ProcessId(0));
        assert_eq!(queen_of_phase(6, 5), ProcessId(0));
        let mut c = QueenConciliator::new(5, 2); // queen p1
        assert_eq!(c.queen(), ProcessId(1));
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(1), 5, &mut rng, &mut out);
        c.step(0, &1, &[], &mut ctx);
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn non_queen_adopts_queens_value() {
        let mut c = QueenConciliator::new(5, 1); // queen p0
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(3), 5, &mut rng, &mut out);
        let inbox = vec![(ProcessId(0), 0u64), (ProcessId(2), 1)];
        assert_eq!(c.step(1, &1, &inbox, &mut ctx), Some(0));
        assert_eq!(c.step(1, &1, &[], &mut ctx), Some(1), "silent queen");
    }

    #[test]
    fn duplicate_and_junk_votes_discarded() {
        let votes = vec![
            (ProcessId(0), 1u64),
            (ProcessId(0), 1),
            (ProcessId(1), 7),
            (ProcessId(2), 0),
        ];
        assert_eq!(PhaseQueenAc::tally(&votes), [1, 1]);
    }
}

#[cfg(test)]
mod harness_tests {
    use super::*;
    use crate::Attack;

    #[test]
    fn fault_free_unanimity() {
        let run = run_phase_queen(5, 0, Attack::Silent, &[1, 1, 1, 1, 1], 3);
        assert!(run.violations.is_empty(), "{:?}", run.violations);
        for p in &run.honest {
            assert_eq!(run.decisions[p.index()], Some(1));
        }
    }

    #[test]
    fn all_attacks_contained_at_the_boundary() {
        // n = 9, t = 2 is the tightest 4t < n corruption.
        for attack in [
            Attack::Silent,
            Attack::Fixed(0),
            Attack::Fixed(1),
            Attack::Equivocate,
            Attack::Random,
        ] {
            for seed in 0..10 {
                let run = run_phase_queen(9, 2, attack, &[0, 1, 0, 1, 0, 1, 0], seed);
                assert!(
                    run.violations.is_empty(),
                    "{attack:?} seed {seed}: {:?}",
                    run.violations
                );
            }
        }
    }

    #[test]
    fn queen_uses_fewer_rounds_than_king() {
        // Same (n, t), same attack: queen phases are 2 rounds vs king's
        // 3, so the queen run finishes in fewer network rounds.
        let seed = 5;
        let q = run_phase_queen(9, 2, Attack::Equivocate, &[0, 1, 0, 1, 0, 1, 0], seed);
        let kcfg = crate::PhaseKingConfig::new(9, 2).with_attack(Attack::Equivocate);
        let k = crate::run_phase_king(&kcfg, &[0, 1, 0, 1, 0, 1, 0], seed);
        assert!(q.violations.is_empty() && k.violations.is_empty());
        assert!(
            q.rounds < k.rounds,
            "queen {} rounds vs king {} rounds",
            q.rounds,
            k.rounds
        );
    }

    #[test]
    fn unanimity_survives_byzantine_lies() {
        for seed in 0..10 {
            let run = run_phase_queen(9, 2, Attack::Fixed(0), &[1; 7], seed);
            assert!(run.violations.is_empty(), "seed {seed}: {:?}", run.violations);
        }
    }
}
