//! Protocol-aware Byzantine processors for the decomposed Phase-King.
//!
//! The honest processors only tally messages carrying the right
//! `(phase, component, step)` tag, so an effective Byzantine node must
//! speak the template's wire format. The global round number determines
//! the tag deterministically (the network is synchronous), so these nodes
//! forge perfectly-tagged garbage — including king impersonation in the
//! conciliator step, which only matters in the phases where the Byzantine
//! node *is* the king (honest processors filter by king id).

use crate::PhaseKingWire;
use ooc_core::SyncTemplateMsg;
use ooc_simnet::{ProcessId, SplitMix64, SyncContext, SyncProcess};

/// The value-choosing strategy of a [`ByzantinePhaseKing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Send nothing at all (crash-like from round 0).
    Silent,
    /// Always claim this value, to everyone.
    Fixed(u64),
    /// Send `0` to the lower-id half of the network, `1` to the upper
    /// half — the classic split attack, aimed at keeping `C(k) < n − t`
    /// on both sides.
    Equivocate,
    /// Send every recipient an independent uniformly random value from
    /// `{0, 1, 2}`.
    Random,
}

/// Which template tag honest processors expect in network round `r`.
///
/// The synchronous template chains a 3-step AC and a 2-step conciliator,
/// overlapping outcome steps with the next component's send step, so each
/// phase occupies 3 network rounds:
///
/// | round (0-based)  | sends                      |
/// |------------------|----------------------------|
/// | `3k`             | `Detect { phase: k+1, step: 0 }` (exchange 1) |
/// | `3k + 1`         | `Detect { phase: k+1, step: 1 }` (exchange 2) |
/// | `3k + 2`         | `Shake  { phase: k+1, step: 0 }` (king)       |
pub fn tag_for_round(round: u64) -> (u64, bool, u64) {
    let phase = round / 3 + 1;
    match round % 3 {
        0 => (phase, true, 0),
        1 => (phase, true, 1),
        _ => (phase, false, 0),
    }
}

/// The tag schedule for Phase-**Queen** phases (2 network rounds each:
/// one AC exchange, one queen broadcast).
pub fn queen_tag_for_round(round: u64) -> (u64, bool, u64) {
    let phase = round / 2 + 1;
    match round % 2 {
        0 => (phase, true, 0),
        _ => (phase, false, 0),
    }
}

/// A Byzantine processor speaking the decomposed Phase-King (or
/// Phase-Queen) wire format.
#[derive(Debug, Clone)]
pub struct ByzantinePhaseKing {
    attack: Attack,
    schedule: fn(u64) -> (u64, bool, u64),
}

impl ByzantinePhaseKing {
    /// Creates a Byzantine node with the given attack, tagging for the
    /// Phase-King round schedule.
    pub fn new(attack: Attack) -> Self {
        ByzantinePhaseKing {
            attack,
            schedule: tag_for_round,
        }
    }

    /// Creates a Byzantine node tagging for the Phase-Queen schedule.
    pub fn for_queen(attack: Attack) -> Self {
        ByzantinePhaseKing {
            attack,
            schedule: queen_tag_for_round,
        }
    }

    fn pick(&self, to: ProcessId, n: usize, rng: &mut SplitMix64) -> Option<u64> {
        match self.attack {
            Attack::Silent => None,
            Attack::Fixed(v) => Some(v),
            Attack::Equivocate => Some(u64::from(to.index() >= n / 2)),
            Attack::Random => Some(rng.below(3)),
        }
    }
}

impl SyncProcess for ByzantinePhaseKing {
    type Msg = PhaseKingWire;
    type Output = u64;

    fn on_round(
        &mut self,
        round: u64,
        _inbox: &[(ProcessId, PhaseKingWire)],
        ctx: &mut SyncContext<'_, PhaseKingWire, u64>,
    ) {
        let (phase, detect, step) = (self.schedule)(round);
        let n = ctx.n();
        for i in 0..n {
            let to = ProcessId(i);
            let Some(value) = ({
                let rng = ctx.rng();
                self.pick(to, n, rng)
            }) else {
                continue;
            };
            let msg = if detect {
                SyncTemplateMsg::Detect {
                    phase,
                    step,
                    inner: value,
                }
            } else {
                SyncTemplateMsg::Shake {
                    phase,
                    step,
                    inner: value.min(1),
                }
            };
            ctx.send(to, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_schedule_matches_template_chaining() {
        assert_eq!(tag_for_round(0), (1, true, 0));
        assert_eq!(tag_for_round(1), (1, true, 1));
        assert_eq!(tag_for_round(2), (1, false, 0));
        assert_eq!(tag_for_round(3), (2, true, 0));
        assert_eq!(tag_for_round(5), (2, false, 0));
        assert_eq!(tag_for_round(6), (3, true, 0));
    }

    #[test]
    fn queen_tag_schedule_is_two_rounds_per_phase() {
        assert_eq!(queen_tag_for_round(0), (1, true, 0));
        assert_eq!(queen_tag_for_round(1), (1, false, 0));
        assert_eq!(queen_tag_for_round(2), (2, true, 0));
        assert_eq!(queen_tag_for_round(3), (2, false, 0));
    }

    #[test]
    fn equivocate_splits_halves() {
        let b = ByzantinePhaseKing::new(Attack::Equivocate);
        let mut rng = SplitMix64::new(1);
        assert_eq!(b.pick(ProcessId(0), 6, &mut rng), Some(0));
        assert_eq!(b.pick(ProcessId(2), 6, &mut rng), Some(0));
        assert_eq!(b.pick(ProcessId(3), 6, &mut rng), Some(1));
        assert_eq!(b.pick(ProcessId(5), 6, &mut rng), Some(1));
    }

    #[test]
    fn silent_sends_nothing() {
        let b = ByzantinePhaseKing::new(Attack::Silent);
        let mut rng = SplitMix64::new(1);
        assert_eq!(b.pick(ProcessId(0), 6, &mut rng), None);
    }

    #[test]
    fn random_stays_in_domain() {
        let b = ByzantinePhaseKing::new(Attack::Random);
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            let v = b.pick(ProcessId(1), 6, &mut rng).unwrap();
            assert!(v <= 2);
        }
    }
}
