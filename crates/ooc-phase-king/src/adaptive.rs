//! A coordinated, state-tracking Byzantine attacker against the paper's
//! decide-at-commit rule (the §4.1 / Algorithm 2 reading).
//!
//! The canned [`Attack`](crate::Attack)s are oblivious; this adversary
//! reads the honest processors' broadcasts (a Byzantine processor
//! receives everything) and plays the scripted attack that defeats early
//! deciding:
//!
//! 1. **Split phase** (phase 1, attacker is king): in exchange 1, send
//!    `u` to a chosen *victim* set of `n − 2t` honest processors and stay
//!    silent to the rest, aiming for `C(u) ≥ n − t` only at the victims;
//!    in exchange 2, send `u` only to one *mark*, pushing exactly the
//!    mark's `D(u)` to `≥ n − t` so it **commits and decides `u`** while
//!    everyone else merely adopts. As king, send `w = 1 − u` to every
//!    non-mark — exploiting the conciliator-validity hole.
//! 2. **Flip phase** (later phases): amplify `w` everywhere. The honest
//!    majority now holds `w`; with the attacker's votes `C(w)` and
//!    `D(w)` clear `n − t` at every honest processor, which commits —
//!    and decides — `w ≠ u`. Agreement is broken.
//!
//! Against the classical decide-after-`t+1`-phases rule the same attack
//! is harmless (the mark's value simply gets repaired before any
//! decision), which the tests assert on identical seeds.

use crate::byzantine::tag_for_round;
use crate::PhaseKingWire;
use ooc_core::SyncTemplateMsg;
use ooc_simnet::{ProcessId, SyncContext, SyncProcess};

/// The coordinated attacker. Install one per Byzantine slot (they act
/// identically, which only strengthens the attack). The script is
/// deterministic given the round number — in the synchronous model the
/// adversary knows the honest state evolution in advance, so no runtime
/// observation is needed.
#[derive(Debug, Clone)]
pub struct AdaptiveAttacker {
    /// Number of Byzantine processors (ids `0..t`).
    t: usize,
    /// The value the mark will be tricked into deciding.
    u: u64,
}

impl AdaptiveAttacker {
    /// Creates the attacker for a network with Byzantine ids `0..t`,
    /// targeting a spurious early decision on `u`.
    pub fn new(t: usize, u: u64) -> Self {
        AdaptiveAttacker { t, u }
    }

    fn w(&self) -> u64 {
        1 - self.u
    }
}

impl SyncProcess for AdaptiveAttacker {
    type Msg = PhaseKingWire;
    type Output = u64;

    fn on_round(
        &mut self,
        round: u64,
        _inbox: &[(ProcessId, PhaseKingWire)],
        ctx: &mut SyncContext<'_, PhaseKingWire, u64>,
    ) {
        let n = ctx.n();
        let t = self.t;
        let (phase, detect, step) = tag_for_round(round);
        let mark = ProcessId(t); // the honest processor we make decide u
        // Victims: enough honest processors that, with our t votes, can
        // see C(u) ≥ n − t in exchange 1 — they will then broadcast u in
        // exchange 2, which is what inflates the mark's D(u).
        let victims: Vec<ProcessId> = (t..n - t).map(ProcessId).collect();

        if phase == 1 {
            if detect && step == 0 {
                // Exchange 1 of phase 1: push u toward the victims only.
                for &v in &victims {
                    ctx.send(
                        v,
                        SyncTemplateMsg::Detect {
                            phase,
                            step,
                            inner: self.u,
                        },
                    );
                }
            } else if detect && step == 1 {
                // Exchange 2: only the mark gets our u votes, so only the
                // mark reaches D(u) ≥ n − t and commits.
                ctx.send(
                    mark,
                    SyncTemplateMsg::Detect {
                        phase,
                        step,
                        inner: self.u,
                    },
                );
                // Everyone else hears w from us, keeping their D(u) low.
                for i in t..n {
                    let p = ProcessId(i);
                    if p != mark {
                        ctx.send(
                            p,
                            SyncTemplateMsg::Detect {
                                phase,
                                step,
                                inner: self.w(),
                            },
                        );
                    }
                }
            } else {
                // Conciliator of phase 1: we are the king (id 0 is
                // Byzantine). Violate validity: hand every non-mark w.
                for i in t..n {
                    let p = ProcessId(i);
                    if p != mark {
                        ctx.send(
                            p,
                            SyncTemplateMsg::Shake {
                                phase,
                                step,
                                inner: self.w(),
                            },
                        );
                    }
                }
            }
        } else {
            // Flip phases: amplify w everywhere, in both exchanges and as
            // king whenever a Byzantine id holds the crown.
            let inner = self.w();
            let msg = if detect {
                SyncTemplateMsg::Detect { phase, step, inner }
            } else {
                SyncTemplateMsg::Shake { phase, step, inner }
            };
            for i in t..n {
                ctx.send(ProcessId(i), msg.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::Node;
    use crate::{phase_king_process, phase_king_process_paper_rule};
    use ooc_simnet::SyncSim;

    /// Runs n=7, t=2 with two adaptive attackers. The attack needs
    /// `n − 2t = 3` honest holders of `u = 1` so the victim set can be
    /// pushed to `C(u) ≥ n − t` in exchange 1.
    fn run(paper_rule: bool, seed: u64) -> Vec<Option<u64>> {
        let n = 7;
        let t = 2;
        let honest_inputs = [1u64, 1, 1, 0, 0];
        let mut procs: Vec<Node> = Vec::new();
        for _ in 0..t {
            procs.push(Node::Byzantine2(AdaptiveAttacker::new(t, 1)));
        }
        for &v in &honest_inputs {
            let p = if paper_rule {
                phase_king_process_paper_rule(v, n, t, 12)
            } else {
                phase_king_process(v, n, t, 12)
            };
            procs.push(Node::Honest(p));
        }
        let mut sim = SyncSim::new(procs, seed);
        sim.track_only((t..n).map(ProcessId));
        let out = sim.run(3 * 12 + 3);
        out.decisions
    }

    #[test]
    fn coordinated_attack_breaks_paper_rule_agreement() {
        let mut broken = 0;
        for seed in 0..10 {
            let d = run(true, seed);
            let honest: Vec<u64> = (2..7).filter_map(|i| d[i]).collect();
            if honest.windows(2).any(|w| w[0] != w[1]) {
                broken += 1;
            }
        }
        assert!(
            broken > 0,
            "the scripted attack should break decide-at-commit agreement"
        );
    }

    #[test]
    fn classical_rule_resists_the_same_attack() {
        for seed in 0..10 {
            let d = run(false, seed);
            let honest: Vec<u64> = (2..7).filter_map(|i| d[i]).collect();
            assert_eq!(honest.len(), 5, "seed {seed}: all honest decide");
            assert!(
                honest.windows(2).all(|w| w[0] == w[1]),
                "seed {seed}: classical rule must agree, got {honest:?}"
            );
        }
    }
}
