//! The classic Phase-King formulation — the decomposition-overhead
//! baseline (experiment T7's synchronous column).
//!
//! Three network rounds per phase, `t + 1` phases, decision at the end —
//! exactly Berman-Garay-Perry. Unlike the decomposed version (which can
//! commit early through the adopt-commit object), the classic algorithm
//! always runs all `t + 1` phases; the difference in decision rounds is
//! part of what T2/T7 report.

use crate::conciliator::king_of_phase;
use ooc_simnet::{ProcessId, SyncContext, SyncProcess};
use std::collections::BTreeSet;

/// Classic Phase-King over values `{0, 1}` with `t` Byzantine processors,
/// `3t < n`. Wire format: bare values (the synchronous engine's global
/// round number already disambiguates the exchanges).
#[derive(Debug, Clone)]
pub struct MonolithicPhaseKing {
    n: usize,
    t: usize,
    v: u64,
    /// Whether this processor's value is locked against the king
    /// (the `D(v) ≥ n − t` branch of the classic algorithm).
    sticky: bool,
}

impl MonolithicPhaseKing {
    /// Creates a processor with the given input.
    ///
    /// # Panics
    /// Panics unless `3t < n`.
    pub fn new(input: u64, n: usize, t: usize) -> Self {
        assert!(3 * t < n, "Phase-King requires 3t < n (got n={n}, t={t})");
        MonolithicPhaseKing {
            n,
            t,
            v: input,
            sticky: false,
        }
    }

    /// The processor's current value.
    pub fn value(&self) -> u64 {
        self.v
    }

    fn tally(inbox: &[(ProcessId, u64)], domain: u64) -> Vec<usize> {
        let mut counts = vec![0usize; domain as usize];
        let mut seen = BTreeSet::new();
        for &(from, value) in inbox {
            if value < domain && seen.insert(from) {
                counts[value as usize] += 1;
            }
        }
        counts
    }
}

impl SyncProcess for MonolithicPhaseKing {
    type Msg = u64;
    type Output = u64;

    fn on_round(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, u64)],
        ctx: &mut SyncContext<'_, u64, u64>,
    ) {
        let phase = round / 3 + 1;
        match round % 3 {
            0 => {
                // Adopt the previous phase's king (whose broadcast sits in
                // this round's inbox) unless the value is locked.
                if phase > 1 && !self.sticky {
                    let prev_king = king_of_phase(phase - 1, self.n);
                    if let Some(&(_, w)) = inbox
                        .iter()
                        .find(|&&(from, value)| from == prev_king && value <= 1)
                    {
                        self.v = w;
                    }
                }
                // The protocol runs t + 1 full phases; the decision is
                // taken only after the last king's value has been
                // incorporated, i.e. at the head of phase t + 2.
                if phase == self.t as u64 + 2 {
                    ctx.decide(self.v.min(1));
                    ctx.halt();
                    return;
                }
                self.sticky = false;
                // Exchange 1 send.
                ctx.broadcast(self.v);
            }
            1 => {
                // Exchange 1 tally; exchange 2 send.
                let c = Self::tally(inbox, 2);
                self.v = 2;
                for (k, &count) in c.iter().enumerate() {
                    if count >= self.n - self.t {
                        self.v = k as u64;
                    }
                }
                ctx.broadcast(self.v);
            }
            _ => {
                // Exchange 2 tally; king broadcast; end-of-protocol check.
                let d = Self::tally(inbox, 3);
                for k in (0..=2u64).rev() {
                    if d[k as usize] > self.t {
                        self.v = k;
                    }
                }
                if self.v != 2 && d[self.v as usize] >= self.n - self.t {
                    self.sticky = true;
                } else if self.v == 2 {
                    self.v = 0; // classic default before hearing the king
                }
                if ctx.me() == king_of_phase(phase, self.n) {
                    ctx.broadcast(self.v.min(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::{ByzantineNode, SyncSim, SyncStrategy};

    type Node = Box<dyn SyncProcess<Msg = u64, Output = u64>>;

    fn run(honest_inputs: &[u64], t: usize, attacks: Vec<SyncStrategy<u64>>, seed: u64) -> Vec<Option<u64>> {
        let n = honest_inputs.len() + attacks.len();
        let mut procs: Vec<Node> = Vec::new();
        for strat in attacks {
            procs.push(Box::new(ByzantineNode::<u64, u64>::new(strat)));
        }
        for &v in honest_inputs {
            procs.push(Box::new(MonolithicPhaseKing::new(v, n, t)));
        }
        let byz = n - honest_inputs.len();
        let mut sim = SyncSim::new(procs, seed);
        sim.track_only((byz..n).map(ProcessId));
        let out = sim.run(3 * (t as u64 + 2) + 3);
        out.decisions
    }

    #[test]
    fn no_byzantine_unanimous() {
        let d = run(&[1, 1, 1, 1], 1, vec![SyncStrategy::Silent], 1);
        for di in &d[1..5] {
            assert_eq!(*di, Some(1));
        }
    }

    #[test]
    fn equivocator_cannot_break_agreement() {
        for seed in 0..10 {
            let d = run(
                &[0, 1, 0, 1, 0, 1],
                2,
                vec![
                    SyncStrategy::Equivocate { low: 0, high: 1 },
                    SyncStrategy::RandomOf(vec![0, 1, 2]),
                ],
                seed,
            );
            let honest: Vec<u64> = (2..8).map(|i| d[i].expect("decided")).collect();
            assert!(honest.iter().all(|&v| v == honest[0]), "seed {seed}: {honest:?}");
            assert!(honest[0] <= 1);
        }
    }

    #[test]
    fn unanimity_survives_byzantine_lies() {
        for seed in 0..10 {
            let d = run(
                &[1, 1, 1, 1, 1, 1],
                2,
                vec![SyncStrategy::Fixed(0), SyncStrategy::Equivocate { low: 0, high: 1 }],
                seed,
            );
            for di in &d[2..8] {
                assert_eq!(*di, Some(1), "seed {seed}: validity under unanimity");
            }
        }
    }
}
