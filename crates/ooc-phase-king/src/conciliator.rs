//! Phase-King's conciliator (paper Algorithm 4).
//!
//! ```text
//! Conciliator(X, σ, m):
//!   if id = m:  broadcast ⟨MIN(1, v)⟩
//!   σm ← received message from processor m
//!   return (adopt, σm)
//! ```
//!
//! The phase's *king* pushes its value to everyone. Deterministic, and
//! correct because some phase `m ≤ t + 1` has an honest king: in that
//! phase every adopter leaves with the king's value (paper Lemma 3).

use ooc_core::sync_objects::{SyncObjCtx, SyncObject};
use ooc_simnet::ProcessId;

/// The king of phase `m` (1-based), rotating round-robin.
pub fn king_of_phase(phase: u64, n: usize) -> ProcessId {
    ProcessId(((phase - 1) % n as u64) as usize)
}

/// One phase's conciliator. Two lock-step steps: the king broadcasts, then
/// everyone adopts what the king said (falling back to their own value if
/// the king was silent or spoke garbage).
#[derive(Debug, Clone)]
pub struct KingConciliator {
    king: ProcessId,
}

impl KingConciliator {
    /// Creates the conciliator for phase `phase` of an `n`-processor
    /// network.
    pub fn new(n: usize, phase: u64) -> Self {
        KingConciliator {
            king: king_of_phase(phase, n),
        }
    }

    /// The king this instance listens to.
    pub fn king(&self) -> ProcessId {
        self.king
    }
}

impl SyncObject for KingConciliator {
    type Value = u64;
    type Msg = u64;
    type Outcome = u64;

    fn steps(&self) -> u64 {
        2
    }

    fn step(
        &mut self,
        k: u64,
        input: &u64,
        inbox: &[(ProcessId, u64)],
        ctx: &mut SyncObjCtx<'_, u64>,
    ) -> Option<u64> {
        match k {
            0 => {
                if ctx.me() == self.king {
                    ctx.broadcast((*input).min(1));
                }
                None
            }
            1 => {
                let from_king = inbox
                    .iter()
                    .find(|&&(from, value)| from == self.king && value <= 1)
                    .map(|&(_, value)| value);
                // A silent or out-of-domain king (necessarily Byzantine, or
                // the phase where nobody needed shaking) leaves the value
                // unchanged, clamped into the consensus domain.
                Some(from_king.unwrap_or_else(|| (*input).min(1)))
            }
            // ooc-lint::allow(protocol/panic, "SyncObject::STEPS pins KingConciliator to exactly 2 steps")
            _ => unreachable!("KingConciliator has exactly 2 steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::SplitMix64;

    #[test]
    fn king_rotates_round_robin() {
        assert_eq!(king_of_phase(1, 4), ProcessId(0));
        assert_eq!(king_of_phase(4, 4), ProcessId(3));
        assert_eq!(king_of_phase(5, 4), ProcessId(0));
    }

    #[test]
    fn king_broadcasts_min_one() {
        let mut c = KingConciliator::new(4, 1); // king = p0
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(0), 4, &mut rng, &mut out);
        assert!(c.step(0, &2, &[], &mut ctx).is_none());
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&(_, v)| v == 1), "MIN(1, 2) = 1");
    }

    #[test]
    fn non_king_stays_silent() {
        let mut c = KingConciliator::new(4, 1);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(2), 4, &mut rng, &mut out);
        c.step(0, &1, &[], &mut ctx);
        assert!(out.is_empty());
    }

    #[test]
    fn adopts_kings_value() {
        let mut c = KingConciliator::new(4, 1);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(2), 4, &mut rng, &mut out);
        let inbox = vec![(ProcessId(0), 0u64), (ProcessId(3), 1)];
        assert_eq!(c.step(1, &1, &inbox, &mut ctx), Some(0));
    }

    #[test]
    fn ignores_non_king_claims() {
        let mut c = KingConciliator::new(4, 1);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(2), 4, &mut rng, &mut out);
        let inbox = vec![(ProcessId(3), 0u64)];
        assert_eq!(c.step(1, &1, &inbox, &mut ctx), Some(1), "keep own value");
    }

    #[test]
    fn silent_king_leaves_value_clamped() {
        let mut c = KingConciliator::new(4, 1);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(2), 4, &mut rng, &mut out);
        assert_eq!(c.step(1, &2, &[], &mut ctx), Some(1), "MIN(1, 2)");
    }

    #[test]
    fn garbage_king_value_rejected() {
        let mut c = KingConciliator::new(4, 1);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(2), 4, &mut rng, &mut out);
        let inbox = vec![(ProcessId(0), 99u64)];
        assert_eq!(c.step(1, &0, &inbox, &mut ctx), Some(0));
    }
}
