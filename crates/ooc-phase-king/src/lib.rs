//! # ooc-phase-king
//!
//! The Phase-King Byzantine consensus algorithm (Berman, Garay, Perry '89)
//! decomposed per paper §4.1 into Aspnes' framework objects:
//!
//! * [`PhaseKingAc`] — the adopt-commit object of Algorithm 3: two
//!   *exchanges* over a synchronous network with `t` Byzantine processors,
//!   `3t < n`. Commits when `n − t` processors visibly back one value.
//! * [`KingConciliator`] — the conciliator of Algorithm 4: the phase's
//!   king broadcasts `min(1, v)` and everyone adopts it. Deterministic —
//!   "probabilistic agreement" degenerates to *eventual* agreement, since
//!   within `t + 1` phases some king is honest (paper Lemma 3).
//! * [`PhaseKingProcess`] — the two composed through the synchronous
//!   template (`ooc_core::SyncAcConsensus`, the synchronous reading of
//!   paper Algorithm 2). Values are `u64` with the consensus domain
//!   `{0, 1}` and the protocol-internal "no majority" marker `2`.
//! * [`ByzantinePhaseKing`] — protocol-aware Byzantine nodes that tag
//!   their garbage correctly so honest tally loops must count it.
//! * [`MonolithicPhaseKing`] — the classic three-rounds-per-phase
//!   formulation, as the decomposition-overhead baseline.
//!
//! ## Quick start
//!
//! ```
//! use ooc_phase_king::{run_phase_king, PhaseKingConfig, Attack};
//!
//! // n = 7, t = 2 Byzantine equivocators; honest inputs alternate.
//! let cfg = PhaseKingConfig::new(7, 2).with_attack(Attack::Equivocate);
//! let run = run_phase_king(&cfg, &[0, 1, 0, 1, 0], 42);
//! assert!(run.violations.is_empty());
//! assert!(run.all_honest_decided());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod adaptive;
pub mod byzantine;
pub mod conciliator;
pub mod harness;
pub mod monolithic;
pub mod queen;

pub use ac::PhaseKingAc;
pub use adaptive::AdaptiveAttacker;
pub use byzantine::{Attack, ByzantinePhaseKing};
pub use conciliator::{king_of_phase, KingConciliator};
pub use harness::{run_phase_king, run_phase_king_with_crashes, PhaseKingConfig, PhaseKingRun};
pub use monolithic::MonolithicPhaseKing;
pub use queen::{phase_queen_process, run_phase_queen, PhaseQueenAc, PhaseQueenProcess, QueenConciliator};

/// The decomposed Phase-King process: the synchronous template
/// instantiated with [`PhaseKingAc`] and [`KingConciliator`].
pub type PhaseKingProcess = ooc_core::SyncAcConsensus<PhaseKingAc, KingConciliator>;

/// The wire message type of [`PhaseKingProcess`].
pub type PhaseKingWire = ooc_core::SyncTemplateMsg<u64, u64>;

/// Builds a decomposed Phase-King processor with the **classical**
/// decision rule: decide the value held after `t + 1` full phases.
///
/// The paper's template decides at the first adopt-commit `commit`
/// instead; use [`phase_king_process_paper_rule`] for that behaviour and
/// see `ooc_core::SyncDecisionRule` for why it is unsound against
/// Byzantine kings (reproduced in this crate's tests).
///
/// # Panics
/// Panics unless `3t < n`.
pub fn phase_king_process(input: u64, n: usize, t: usize, max_phases: u64) -> PhaseKingProcess {
    assert!(3 * t < n, "Phase-King requires 3t < n (got n={n}, t={t})");
    ooc_core::SyncAcConsensus::new(
        input,
        move |_phase| PhaseKingAc::new(n, t),
        move |phase| KingConciliator::new(n, phase),
        max_phases,
    )
    .with_decision_rule(ooc_core::SyncDecisionRule::AtPhaseEnd(t as u64 + 1))
}

/// Builds a decomposed Phase-King processor with the paper's literal
/// decide-at-commit rule — **unsafe against Byzantine kings**; kept to
/// demonstrate the violation (see `harness` tests and EXPERIMENTS.md).
pub fn phase_king_process_paper_rule(
    input: u64,
    n: usize,
    t: usize,
    max_phases: u64,
) -> PhaseKingProcess {
    assert!(3 * t < n, "Phase-King requires 3t < n (got n={n}, t={t})");
    ooc_core::SyncAcConsensus::new(
        input,
        move |_phase| PhaseKingAc::new(n, t),
        move |phase| KingConciliator::new(n, phase),
        max_phases,
    )
}
