//! Phase-King's adopt-commit object (paper Algorithm 3).
//!
//! ```text
//! AC(v, m):
//!   broadcast ⟨v⟩                      (* exchange 1 *)
//!   v ← 2
//!   for k = 0 to 1:   C(k) ← #received k's;  if C(k) ≥ n − t: v ← k
//!   broadcast ⟨v⟩                      (* exchange 2 *)
//!   for k = 2 downto 0: D(k) ← #received k's; if D(k) > t: v ← k
//!   if v ≠ 2 and D(v) ≥ n − t: return (commit, v)
//!   else:                      return (adopt, v)
//! ```
//!
//! Correctness is paper Lemma 2: after exchange 1 all correct processors
//! hold either `2` or one common value (any two `n − t` quorums intersect
//! in a correct processor when `3t < n`), which yields coherence; `n − t`
//! identical inputs survive both exchanges, which yields validity and
//! convergence.

use ooc_core::confidence::AcOutcome;
use ooc_core::sync_objects::{SyncObjCtx, SyncObject};
use ooc_simnet::ProcessId;
use std::collections::BTreeSet;

/// The protocol-internal "no majority seen" marker.
pub const NO_MAJORITY: u64 = 2;

/// One phase's adopt-commit object. Three lock-step steps: send exchange 1,
/// tally + send exchange 2, tally + outcome.
#[derive(Debug, Clone)]
pub struct PhaseKingAc {
    n: usize,
    t: usize,
    /// The value computed after exchange 1 (`0`, `1`, or [`NO_MAJORITY`]).
    mid: u64,
}

impl PhaseKingAc {
    /// Creates the object for `n` processors, `t` of them Byzantine.
    ///
    /// # Panics
    /// Panics unless `3t < n` (with `3t ≥ n` two `n − t` quorums need not
    /// intersect in an honest processor and coherence fails).
    pub fn new(n: usize, t: usize) -> Self {
        assert!(3 * t < n, "Phase-King requires 3t < n (got n={n}, t={t})");
        PhaseKingAc {
            n,
            t,
            mid: NO_MAJORITY,
        }
    }

    /// Tallies one value per distinct sender (a Byzantine processor that
    /// sends several messages in one exchange is counted once, and values
    /// outside the domain are discarded).
    fn tally(inbox: &[(ProcessId, u64)], domain: u64) -> Vec<usize> {
        let mut counts = vec![0usize; domain as usize];
        let mut seen = BTreeSet::new();
        for &(from, value) in inbox {
            if value < domain && seen.insert(from) {
                counts[value as usize] += 1;
            }
        }
        counts
    }
}

impl SyncObject for PhaseKingAc {
    type Value = u64;
    type Msg = u64;
    type Outcome = AcOutcome<u64>;

    fn steps(&self) -> u64 {
        3
    }

    fn step(
        &mut self,
        k: u64,
        input: &u64,
        inbox: &[(ProcessId, u64)],
        ctx: &mut SyncObjCtx<'_, u64>,
    ) -> Option<AcOutcome<u64>> {
        match k {
            0 => {
                // Exchange 1 send.
                ctx.broadcast(*input);
                None
            }
            1 => {
                // Exchange 1 tally; exchange 2 send.
                let c = Self::tally(inbox, 2);
                self.mid = NO_MAJORITY;
                for (k, &count) in c.iter().enumerate() {
                    if count >= self.n - self.t {
                        self.mid = k as u64;
                    }
                }
                ctx.broadcast(self.mid);
                None
            }
            2 => {
                // Exchange 2 tally; outcome.
                let d = Self::tally(inbox, 3);
                let mut v = self.mid;
                // `for k = 2 downto 0` — the last assignment wins, so the
                // smallest k with D(k) > t prevails.
                for k in (0..=2u64).rev() {
                    if d[k as usize] > self.t {
                        v = k;
                    }
                }
                Some(if v != NO_MAJORITY && d[v as usize] >= self.n - self.t {
                    AcOutcome::commit(v)
                } else {
                    AcOutcome::adopt(v)
                })
            }
            // ooc-lint::allow(protocol/panic, "SyncObject::STEPS pins PhaseKingAc to exactly 3 steps")
            _ => unreachable!("PhaseKingAc has exactly 3 steps"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ooc_simnet::SplitMix64;

    fn ctx<'a>(
        rng: &'a mut SplitMix64,
        outbox: &'a mut Vec<(ProcessId, u64)>,
    ) -> SyncObjCtx<'a, u64> {
        SyncObjCtx::new(ProcessId(0), 7, rng, outbox)
    }

    fn inbox(values: &[u64]) -> Vec<(ProcessId, u64)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (ProcessId(i), v))
            .collect()
    }

    #[test]
    #[should_panic(expected = "3t < n")]
    fn resilience_bound_enforced() {
        let _ = PhaseKingAc::new(6, 2);
    }

    #[test]
    fn unanimous_inputs_commit() {
        // n = 7, t = 2, all seven report 1.
        let mut ac = PhaseKingAc::new(7, 2);
        let mut rng = SplitMix64::new(1);
        let mut out = Vec::new();
        assert!(ac.step(0, &1, &[], &mut ctx(&mut rng, &mut out)).is_none());
        assert_eq!(out.len(), 7);
        let mut out2 = Vec::new();
        assert!(ac
            .step(1, &1, &inbox(&[1; 7]), &mut ctx(&mut rng, &mut out2))
            .is_none());
        assert!(out2.iter().all(|&(_, v)| v == 1), "exchange 2 carries 1");
        let mut out3 = Vec::new();
        let o = ac.step(2, &1, &inbox(&[1; 7]), &mut ctx(&mut rng, &mut out3));
        assert_eq!(o, Some(AcOutcome::commit(1)));
        assert!(out3.is_empty(), "final step must not send");
    }

    #[test]
    fn split_inputs_adopt_no_majority() {
        let mut ac = PhaseKingAc::new(7, 2);
        let mut rng = SplitMix64::new(1);
        let mut sink = Vec::new();
        ac.step(0, &0, &[], &mut ctx(&mut rng, &mut sink));
        // 4 zeros, 3 ones: neither reaches n − t = 5.
        ac.step(1, &0, &inbox(&[0, 0, 0, 0, 1, 1, 1]), &mut ctx(&mut rng, &mut sink));
        assert_eq!(ac.mid, NO_MAJORITY);
        // Everyone else also saw no majority.
        let o = ac.step(2, &0, &inbox(&[2; 7]), &mut ctx(&mut rng, &mut sink));
        assert_eq!(o, Some(AcOutcome::adopt(NO_MAJORITY)));
    }

    #[test]
    fn exchange_two_majority_pulls_value() {
        let mut ac = PhaseKingAc::new(7, 2);
        let mut rng = SplitMix64::new(1);
        let mut sink = Vec::new();
        ac.step(0, &0, &[], &mut ctx(&mut rng, &mut sink));
        ac.step(1, &0, &inbox(&[0, 0, 0, 0, 1, 1, 1]), &mut ctx(&mut rng, &mut sink));
        // Five processors report 0 in exchange 2 (> t and ≥ n − t).
        let o = ac.step(2, &0, &inbox(&[0, 0, 0, 0, 0, 2, 2]), &mut ctx(&mut rng, &mut sink));
        assert_eq!(o, Some(AcOutcome::commit(0)));
    }

    #[test]
    fn smallest_k_wins_in_downto_loop() {
        let mut ac = PhaseKingAc::new(7, 2);
        let mut rng = SplitMix64::new(1);
        let mut sink = Vec::new();
        ac.step(0, &0, &[], &mut ctx(&mut rng, &mut sink));
        ac.step(1, &0, &inbox(&[0, 0, 0, 0, 1, 1, 1]), &mut ctx(&mut rng, &mut sink));
        // Both 0 and 1 have > t = 2 backers: 3 each; downto-loop ends on 0.
        let o = ac.step(2, &0, &inbox(&[0, 0, 0, 1, 1, 1, 2]), &mut ctx(&mut rng, &mut sink));
        assert_eq!(o, Some(AcOutcome::adopt(0)));
    }

    #[test]
    fn duplicate_senders_counted_once() {
        let dup = vec![
            (ProcessId(0), 1u64),
            (ProcessId(0), 1),
            (ProcessId(0), 1),
            (ProcessId(1), 0),
        ];
        let c = PhaseKingAc::tally(&dup, 2);
        assert_eq!(c, vec![1, 1]);
    }

    #[test]
    fn out_of_domain_values_discarded() {
        let junk = vec![(ProcessId(0), 9u64), (ProcessId(1), 1)];
        let c = PhaseKingAc::tally(&junk, 2);
        assert_eq!(c, vec![0, 1]);
    }
}
