//! Checker-pipeline coverage for the Phase-King/Phase-Queen conciliators.
//!
//! [`KingConciliator`] and [`QueenConciliator`] are the royal halves of
//! the decomposed Berman-Garay-Perry protocols (paper Algorithms 4/5):
//! the phase's monarch broadcasts its clamped value and every adopter
//! leaves with it. With an honest monarch that is exactly *coherence over
//! vacillate & adopt* — all adopts carry one value — and validity follows
//! because the monarch's value is its own input. Both claims are checked
//! with the §2 `RoundOutcomes` checkers over hand-driven lock-step
//! exchanges.

use ooc_core::checker::{RoundEntry, RoundOutcomes};
use ooc_core::confidence::VacOutcome;
use ooc_core::sync_objects::{SyncObjCtx, SyncObject};
use ooc_phase_king::{KingConciliator, QueenConciliator};
use ooc_simnet::{ProcessId, SplitMix64};

/// Drives one full conciliator phase for all `n` processors: step 0 lets
/// the monarch broadcast, step 1 hands that broadcast (plus any forged
/// `extra` messages) to everyone and collects the adopted values.
fn run_phase<C>(make: impl Fn() -> C, inputs: &[u64], extra: &[(ProcessId, u64)]) -> Vec<u64>
where
    C: SyncObject<Value = u64, Msg = u64, Outcome = u64>,
{
    let n = inputs.len();
    let mut objects: Vec<C> = (0..n).map(|_| make()).collect();
    let mut monarch_says: Vec<(ProcessId, u64)> = extra.to_vec();
    for (i, obj) in objects.iter_mut().enumerate() {
        let mut rng = SplitMix64::new(0);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(i), n, &mut rng, &mut out);
        assert!(obj.step(0, &inputs[i], &[], &mut ctx).is_none());
        if let Some(&(_, v)) = out.first() {
            monarch_says.push((ProcessId(i), v));
        }
    }
    objects
        .iter_mut()
        .enumerate()
        .map(|(i, obj)| {
            let mut rng = SplitMix64::new(0);
            let mut out = Vec::new();
            let mut ctx = SyncObjCtx::new(ProcessId(i), n, &mut rng, &mut out);
            obj.step(1, &inputs[i], &monarch_says, &mut ctx)
                .expect("conciliators complete at step 1")
        })
        .collect()
}

/// Wraps conciliator results as an adopt-only round so the VAC coherence
/// and validity checkers apply (the paper's Algorithm 4 literally returns
/// `(adopt, σm)`).
fn adopt_round(inputs: &[u64], values: &[u64]) -> RoundOutcomes<u64> {
    RoundOutcomes {
        round: 1,
        entries: values
            .iter()
            .enumerate()
            .map(|(i, &v)| RoundEntry {
                process: ProcessId(i),
                input: inputs[i],
                outcome: VacOutcome::adopt(v),
            })
            .collect(),
        extra_inputs: Vec::new(),
    }
}

#[test]
fn king_conciliator_with_honest_king_is_coherent_and_valid() {
    let inputs = [0u64, 1, 1, 0];
    // Phase 1 ⇒ king = p0, honest here; everyone must adopt its value.
    let values = run_phase(|| KingConciliator::new(4, 1), &inputs, &[]);
    assert_eq!(values, vec![0; 4], "everyone adopts the king's MIN(1, 0)");
    let round = adopt_round(&inputs, &values);
    assert!(round.check_validity().is_empty(), "{:?}", round.check_validity());
    assert!(
        round.check_coherence_vacillate_adopt().is_empty(),
        "honest king ⇒ one adopted value: {:?}",
        round.check_coherence_vacillate_adopt()
    );
}

#[test]
fn king_conciliator_survives_garbage_king_without_inventing_values() {
    let inputs = [9u64, 1, 0, 1];
    // p0 is the phase-1 king and broadcasts MIN(1, 9) = 1 itself, but we
    // also forge an out-of-domain claim in its name; receivers must treat
    // the forged 99 as garbage and the domain stays {0, 1}.
    let values = run_phase(
        || KingConciliator::new(4, 1),
        &inputs,
        &[(ProcessId(0), 99)],
    );
    assert!(values.iter().all(|&v| v <= 1), "clamped into the domain: {values:?}");
    let round = adopt_round(&inputs, &values).with_extra_inputs([1]);
    assert!(round.check_validity().is_empty(), "{:?}", round.check_validity());
}

#[test]
fn queen_conciliator_with_honest_queen_is_coherent_and_valid() {
    let inputs = [1u64, 0, 1, 0, 1];
    // Phase 2 ⇒ queen = p1; her clamped value 0 wins everywhere.
    let values = run_phase(|| QueenConciliator::new(5, 2), &inputs, &[]);
    assert_eq!(values, vec![0; 5], "everyone adopts the queen's value");
    let round = adopt_round(&inputs, &values);
    assert!(round.check_validity().is_empty(), "{:?}", round.check_validity());
    assert!(round.check_coherence_vacillate_adopt().is_empty());
}

#[test]
fn queen_conciliator_silent_queen_keeps_own_clamped_value() {
    let inputs = [2u64, 1, 0, 1, 1];
    // Phase 3 ⇒ queen = p2. Forge silence by dropping her broadcast:
    // deliver only messages from a non-queen forger, which everyone must
    // ignore, falling back to MIN(1, input).
    let n = inputs.len();
    let mut values = Vec::with_capacity(n);
    for (i, input) in inputs.iter().enumerate() {
        let mut obj = QueenConciliator::new(n, 3);
        let mut rng = SplitMix64::new(0);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(i), n, &mut rng, &mut out);
        let inbox = vec![(ProcessId(4), 0u64)];
        values.push(obj.step(1, input, &inbox, &mut ctx).expect("completes"));
    }
    assert_eq!(values, vec![1, 1, 0, 1, 1], "MIN(1, input) fallback");
    let round = adopt_round(&inputs, &values).with_extra_inputs([1]);
    assert!(round.check_validity().is_empty(), "{:?}", round.check_validity());
}
