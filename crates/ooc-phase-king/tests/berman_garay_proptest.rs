//! Property-based sweeps over the Berman-Garay-Perry family: random
//! `(n, t)`, honest inputs, attacks and seeds; Phase-King and Phase-Queen
//! must be violation-free whenever their resilience bounds hold.

use ooc_phase_king::{run_phase_king, run_phase_queen, Attack, PhaseKingConfig};
use proptest::prelude::*;

fn attacks() -> impl Strategy<Value = Attack> {
    prop_oneof![
        Just(Attack::Silent),
        Just(Attack::Fixed(0)),
        Just(Attack::Fixed(1)),
        Just(Attack::Fixed(2)),
        Just(Attack::Equivocate),
        Just(Attack::Random),
    ]
}

/// `(n, t)` with `3t < n` and at least one Byzantine.
fn king_params() -> impl Strategy<Value = (usize, usize)> {
    (4usize..=13).prop_flat_map(|n| {
        let t_max = (n - 1) / 3;
        (Just(n), 1..=t_max.max(1))
    })
}

/// `(n, t)` with `4t < n` and at least one Byzantine.
fn queen_params() -> impl Strategy<Value = (usize, usize)> {
    (5usize..=13).prop_flat_map(|n| {
        let t_max = (n - 1) / 4;
        (Just(n), 1..=t_max.max(1))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn phase_king_is_violation_free(
        (n, t) in king_params(),
        attack in attacks(),
        seed in 0u64..500,
        input_bits in any::<u64>(),
    ) {
        prop_assume!(3 * t < n);
        let inputs: Vec<u64> = (0..n - t).map(|i| (input_bits >> i) & 1).collect();
        let cfg = PhaseKingConfig::new(n, t).with_attack(attack);
        let run = run_phase_king(&cfg, &inputs, seed);
        prop_assert!(run.violations.is_empty(), "{:?}", run.violations);
    }

    #[test]
    fn phase_queen_is_violation_free(
        (n, t) in queen_params(),
        attack in attacks(),
        seed in 0u64..500,
        input_bits in any::<u64>(),
    ) {
        prop_assume!(4 * t < n);
        let inputs: Vec<u64> = (0..n - t).map(|i| (input_bits >> i) & 1).collect();
        let run = run_phase_queen(n, t, attack, &inputs, seed);
        prop_assert!(run.violations.is_empty(), "{:?}", run.violations);
    }

    /// Unanimity validity, jointly: whatever the attack, honest unanimity
    /// must carry through both algorithms.
    #[test]
    fn unanimity_is_sticky_for_both(
        attack in attacks(),
        v in 0u64..2,
        seed in 0u64..200,
    ) {
        let cfg = PhaseKingConfig::new(7, 2).with_attack(attack);
        let king = run_phase_king(&cfg, &[v; 5], seed);
        for p in &king.honest {
            prop_assert_eq!(king.decisions[p.index()], Some(v));
        }
        let queen = run_phase_queen(9, 2, attack, &[v; 7], seed);
        for p in &queen.honest {
            prop_assert_eq!(queen.decisions[p.index()], Some(v));
        }
    }
}
