//! Exhaustive verification of the Berman-Garay-Perry adopt-commit objects
//! over *every* Byzantine behaviour at small sizes.
//!
//! The synchronous model makes this tractable: one AC invocation is a
//! fixed number of exchanges, and the only nondeterminism is what the
//! Byzantine processor sends each honest recipient in each exchange —
//! a value in `{0, 1, 2}` or silence, independently per recipient. For
//! `n = 4, t = 1` (Phase-King, 2 exchanges) that is `4⁴ × 4⁴ = 65 536`
//! behaviours × 8 honest input vectors ≈ 0.5M executions; for
//! `n = 5, t = 1` (Phase-Queen, 1 exchange) it is `4⁵ × 16 = 16 384`.
//! Both spaces are enumerated completely and checked against the AC laws
//! restricted to honest processors:
//!
//! * **coherence** — if any honest processor commits `u`, every honest
//!   processor's value is `u`;
//! * **convergence** — honest unanimity on `v` ⇒ every honest processor
//!   gets `(commit, v)`;
//! * **binary validity** — under honest unanimity the value cannot be
//!   invented (it equals the unanimous input; in mixed rounds the
//!   protocol-internal `2` is legal for Phase-King).

use ooc_core::confidence::AcOutcome;
use ooc_core::sync_objects::{SyncObjCtx, SyncObject};
use ooc_core::AcConfidence;
use ooc_phase_king::{PhaseKingAc, PhaseQueenAc};
use ooc_simnet::{ProcessId, SplitMix64};

/// A Byzantine exchange behaviour: what the Byzantine processor (id 0)
/// sends each of the `h` honest recipients — `0..=2`, or `3` = silence.
fn byz_messages(code: u64, h: usize) -> Vec<Option<u64>> {
    (0..h)
        .map(|i| {
            let c = (code / 4u64.pow(i as u32)) % 4;
            (c < 3).then_some(c)
        })
        .collect()
}

/// Drives one exchange for every honest object: each receives all honest
/// broadcasts plus the Byzantine value chosen for it.
fn run_exchange<A: SyncObject<Value = u64, Msg = u64>>(
    objects: &mut [A],
    step: u64,
    inputs: &[u64],
    honest_broadcast: &[u64],
    byz: &[Option<u64>],
    n: usize,
) -> Vec<Option<A::Outcome>> {
    let h = objects.len();
    let mut outcomes = Vec::with_capacity(h);
    for (i, obj) in objects.iter_mut().enumerate() {
        // Honest ids are 1..n (Byzantine is 0).
        let mut inbox: Vec<(ProcessId, u64)> = (0..h)
            .map(|j| (ProcessId(j + 1), honest_broadcast[j]))
            .collect();
        if let Some(v) = byz[i] {
            inbox.push((ProcessId(0), v));
        }
        let mut rng = SplitMix64::new(0);
        let mut out = Vec::new();
        let mut ctx = SyncObjCtx::new(ProcessId(i + 1), n, &mut rng, &mut out);
        outcomes.push(obj.step(step, &inputs[i], &inbox, &mut ctx));
    }
    outcomes
}

fn check_honest_ac_laws(inputs: &[u64], outcomes: &[AcOutcome<u64>], context: &str) {
    // Coherence: any commit pins every honest value.
    if let Some(c) = outcomes.iter().find(|o| o.confidence == AcConfidence::Commit) {
        for o in outcomes {
            assert_eq!(
                o.value, c.value,
                "{context}: coherence broken: {outcomes:?} on inputs {inputs:?}"
            );
        }
    }
    // Convergence + unanimity validity.
    let first = inputs[0];
    if inputs.iter().all(|&v| v == first) {
        for o in outcomes {
            assert_eq!(
                *o,
                AcOutcome::commit(first),
                "{context}: convergence broken: {outcomes:?} on inputs {inputs:?}"
            );
        }
    }
}

#[test]
fn phase_king_ac_exhaustive_byzantine_n4_t1() {
    let n = 4;
    let h = 3; // honest count
    let mut executions = 0u64;
    for input_mask in 0..(1u64 << h) {
        let inputs: Vec<u64> = (0..h).map(|i| (input_mask >> i) & 1).collect();
        for code1 in 0..4u64.pow(h as u32) {
            let byz1 = byz_messages(code1, h);
            // Exchange 1: honest broadcast inputs; run step 0 (send) and
            // step 1 (tally + exchange-2 broadcast) together. Step 0
            // produces the broadcast values = inputs (clamped — already
            // binary). Step 1 consumes exchange-1 inboxes and *returns*
            // nothing but records the mid value; we recover each object's
            // exchange-2 broadcast from its outbox.
            let mut objects: Vec<PhaseKingAc> =
                (0..h).map(|_| PhaseKingAc::new(n, 1)).collect();
            // Step 0 sends; the broadcast equals the input by construction.
            for (i, obj) in objects.iter_mut().enumerate() {
                let mut rng = SplitMix64::new(0);
                let mut out = Vec::new();
                let mut ctx = SyncObjCtx::new(ProcessId(i + 1), n, &mut rng, &mut out);
                assert!(obj.step(0, &inputs[i], &[], &mut ctx).is_none());
            }
            // Step 1: tally exchange 1, emit exchange-2 value.
            let mut mids = Vec::with_capacity(h);
            for (i, obj) in objects.iter_mut().enumerate() {
                let mut inbox: Vec<(ProcessId, u64)> =
                    (0..h).map(|j| (ProcessId(j + 1), inputs[j])).collect();
                if let Some(v) = byz1[i] {
                    inbox.push((ProcessId(0), v));
                }
                let mut rng = SplitMix64::new(0);
                let mut out = Vec::new();
                {
                    let mut ctx = SyncObjCtx::new(ProcessId(i + 1), n, &mut rng, &mut out);
                    assert!(obj.step(1, &inputs[i], &inbox, &mut ctx).is_none());
                }
                assert_eq!(out.len(), n, "exchange-2 broadcast");
                mids.push(out[0].1);
            }
            for code2 in 0..4u64.pow(h as u32) {
                let byz2 = byz_messages(code2, h);
                let mut finals = objects.clone();
                let outs =
                    run_exchange(&mut finals, 2, &inputs, &mids, &byz2, n);
                let outcomes: Vec<AcOutcome<u64>> =
                    outs.into_iter().map(|o| o.expect("completes")).collect();
                executions += 1;
                check_honest_ac_laws(
                    &inputs,
                    &outcomes,
                    &format!("king byz1={code1} byz2={code2}"),
                );
            }
        }
    }
    assert_eq!(executions, 8 * 64 * 64);
    println!("phase-king AC: exhaustively verified {executions} Byzantine behaviours");
}

#[test]
fn phase_queen_ac_exhaustive_byzantine_n5_t1() {
    let n = 5;
    let h = 4;
    let mut executions = 0u64;
    for input_mask in 0..(1u64 << h) {
        let inputs: Vec<u64> = (0..h).map(|i| (input_mask >> i) & 1).collect();
        for code in 0..4u64.pow(h as u32) {
            let byz = byz_messages(code, h);
            let mut objects: Vec<PhaseQueenAc> =
                (0..h).map(|_| PhaseQueenAc::new(n, 1)).collect();
            for (i, obj) in objects.iter_mut().enumerate() {
                let mut rng = SplitMix64::new(0);
                let mut out = Vec::new();
                let mut ctx = SyncObjCtx::new(ProcessId(i + 1), n, &mut rng, &mut out);
                assert!(obj.step(0, &inputs[i], &[], &mut ctx).is_none());
            }
            let outs = run_exchange(&mut objects, 1, &inputs, &inputs, &byz, n);
            let outcomes: Vec<AcOutcome<u64>> =
                outs.into_iter().map(|o| o.expect("completes")).collect();
            executions += 1;
            check_honest_ac_laws(&inputs, &outcomes, &format!("queen byz={code}"));
        }
    }
    assert_eq!(executions, 16 * 256);
    println!("phase-queen AC: exhaustively verified {executions} Byzantine behaviours");
}
