//! Reliable delivery: deterministic retransmission with ack/dedup.
//!
//! The base network model ([`NetworkConfig`](crate::NetworkConfig) plus
//! the adversary ladder) is fire-and-forget: a dropped message is gone,
//! and PR 6 measured the consequence — the quorum-starve adversary floors
//! timer-free Ben-Or at 0‰ eventual agreement, because a wiped broadcast
//! burst is never retried. The paper's reconciliator guarantee (§3,
//! Lemmas 5–6) is *eventual* agreement with probability 1, but that proof
//! assumes messages eventually arrive; consensus liveness fundamentally
//! requires eventually-reliable links (cf. the Ω failure-detector
//! derivation in "Simple CHT", which presumes quiescent reliable
//! communication).
//!
//! This module supplies the engine half of that assumption as an
//! **opt-in** layer behind [`SimBuilder::reliability`]:
//!
//! - **Per-(sender, recipient) send buffers** with monotonic sequence
//!   numbers starting at 1. Every non-self unicast is registered before
//!   it first touches the network.
//! - **Cumulative + selective acks.** Each delivered (or
//!   duplicate-suppressed) message is acknowledged with the receiver's
//!   cumulative high-water mark `cum` (all seqs `≤ cum` received) plus
//!   the individual `seq` that triggered the ack, so a single lost ack
//!   is repaired by any later ack on the pair and a re-ack on a
//!   suppressed duplicate covers the lost-ack case directly.
//! - **Duplicate suppression.** The receive side tracks `cum` plus an
//!   out-of-order set; a second copy of any seq is counted as
//!   `messages.dropped.duplicate_suppressed` and never re-invokes the
//!   process, making delivery effectively exactly-once *above* this
//!   layer while the wire stays at-least-once.
//! - **Deterministic exponential backoff with seeded jitter.** Each pair
//!   carries an RTO that doubles per retransmission up to `rto_max` and
//!   resets on ack progress; deadlines add a jitter draw from a
//!   dedicated [`SplitMix64`] stream derived from the master seed
//!   (stream `u64::MAX - 1`), so enabling reliability never perturbs the
//!   per-process or routing streams and `--jobs 1 ≡ --jobs N`
//!   byte-identity survives.
//! - **Bounded occupancy with graceful degradation.** A sender buffers at
//!   most `buffer_capacity` unacked messages across all its pairs; at
//!   capacity the *oldest registered* unacked entry is evicted (counted
//!   as `messages.evicted`, traced as [`TraceEvent::Evict`]) — never a
//!   panic, never unbounded memory.
//!
//! The policy's `Off` arm is the A/B oracle: with reliability off the
//! engine takes the exact same code paths it did before this module
//! existed, byte-for-byte — the same discipline as
//! [`SchedulerKind`](crate::SchedulerKind) and
//! [`FanoutKind`](crate::FanoutKind).
//!
//! [`SimBuilder::reliability`]: crate::SimBuilder::reliability
//! [`TraceEvent::Evict`]: crate::TraceEvent::Evict

use crate::process::Payload;
use crate::rng::SplitMix64;
use crate::{ProcessId, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Whether the engine retransmits unacknowledged messages.
///
/// `Off` (the default) is the A/B oracle: the engine behaves exactly as
/// it did before the reliable-delivery layer existed, byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReliabilityPolicy {
    /// Fire-and-forget (the historical behavior, and the oracle).
    #[default]
    Off,
    /// Ack/retransmit with deterministic backoff per [`RetransmitConfig`].
    Retransmit(RetransmitConfig),
}

impl ReliabilityPolicy {
    /// Returns true when retransmission is enabled.
    pub fn is_on(&self) -> bool {
        matches!(self, ReliabilityPolicy::Retransmit(_))
    }
}

/// Tuning knobs for [`ReliabilityPolicy::Retransmit`].
///
/// All values are in simulated ticks; all defaults are sized against the
/// gray-failure zoo's flapping windows (period 60) so that a first retry
/// plus one backoff doubling straddles a starve window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetransmitConfig {
    /// Initial retransmission timeout per pair, in ticks.
    pub rto_initial: u64,
    /// Backoff ceiling: the pair RTO doubles per retransmission but
    /// never exceeds this.
    pub rto_max: u64,
    /// Jitter added to each deadline: a seeded uniform draw from
    /// `[0, rto * jitter_permille / 1000]`.
    pub jitter_permille: u64,
    /// Retransmissions per message before it is abandoned (counted as
    /// `reliable.retry_exhausted`).
    pub max_retries: u32,
    /// Maximum unacked messages buffered per *sender process* across all
    /// its pairs; at capacity the oldest registered entry is evicted.
    pub buffer_capacity: usize,
    /// Delay in ticks between a delivery and its ack being sent.
    pub ack_delay: u64,
}

impl Default for RetransmitConfig {
    fn default() -> Self {
        RetransmitConfig {
            rto_initial: 50,
            rto_max: 800,
            jitter_permille: 250,
            max_retries: 10,
            buffer_capacity: 1024,
            ack_delay: 1,
        }
    }
}

/// One unacked message in a sender's buffer.
#[derive(Debug, Clone)]
struct InFlight<M> {
    msg: Payload<M>,
    /// When the next retransmission for this entry is due.
    deadline: SimTime,
    /// Retransmissions performed so far.
    retries: u32,
    /// Global registration order, for oldest-unacked eviction.
    reg: u64,
}

/// Send-side state for one directed (sender, recipient) pair.
#[derive(Debug, Clone)]
struct PairSend<M> {
    /// Next sequence number to assign (seqs start at 1).
    next_seq: u64,
    /// Current retransmission timeout; doubles per retransmit, resets to
    /// `rto_initial` on ack progress.
    rto: u64,
    unacked: BTreeMap<u64, InFlight<M>>,
}

impl<M> PairSend<M> {
    fn new(rto_initial: u64) -> Self {
        PairSend {
            next_seq: 1,
            rto: rto_initial,
            unacked: BTreeMap::new(),
        }
    }
}

/// Receive-side dedup state for one directed (sender, recipient) pair.
#[derive(Debug, Clone, Default)]
struct RecvState {
    /// Cumulative high-water mark: every seq `≤ cum` has been received.
    cum: u64,
    /// Received seqs above `cum` (holes below them still outstanding).
    out_of_order: BTreeSet<u64>,
}

/// Result of registering one outgoing message in the send buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Registered {
    /// Sequence number assigned to the new message.
    pub seq: u64,
    /// `(recipient, seq)` of the oldest-unacked entry evicted to make
    /// room, if the sender was at capacity.
    pub evicted: Option<(ProcessId, u64)>,
}

/// A retransmission due at a [`RetransmitCheck`](crate::EventKind) tick.
#[derive(Debug, Clone)]
pub(crate) struct DueRetransmit<M> {
    pub to: ProcessId,
    pub seq: u64,
    pub msg: Payload<M>,
    pub retries: u32,
}

/// Outcome of receiving one copy of `(from, seq)` on the dedup side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Received {
    /// False if this seq was already received (the copy must be
    /// suppressed, not delivered).
    pub fresh: bool,
    /// Cumulative high-water mark after processing, for the ack.
    pub cum: u64,
}

/// Engine-internal state for [`ReliabilityPolicy::Retransmit`].
///
/// All maps are `BTreeMap`/`BTreeSet` so iteration — and therefore the
/// order of RNG draws and scheduled events — is deterministic.
#[derive(Debug, Clone)]
pub(crate) struct ReliabilityState<M> {
    pub(crate) cfg: RetransmitConfig,
    /// Dedicated jitter/ack-loss stream: `master.derive(u64::MAX - 1)`.
    pub(crate) rng: SplitMix64,
    /// Ack loss probability, captured from the network's global
    /// `drop_probability` at build time (acks are engine control plane:
    /// they skip the adversary but still face ambient loss).
    pub(crate) ack_drop: f64,
    send: BTreeMap<(ProcessId, ProcessId), PairSend<M>>,
    recv: BTreeMap<(ProcessId, ProcessId), RecvState>,
    /// Unacked entries buffered per sender process (capacity accounting).
    buffered: Vec<usize>,
    /// Ticks at which a `RetransmitCheck` is already queued, per process.
    checks: Vec<BTreeSet<u64>>,
    /// Global registration counter for oldest-unacked eviction order.
    next_reg: u64,
}

impl<M: Clone> ReliabilityState<M> {
    pub(crate) fn new(mut cfg: RetransmitConfig, rng: SplitMix64, ack_drop: f64, n: usize) -> Self {
        // Sanitize once: a zero RTO would arm deadlines at the current
        // tick forever; graceful degradation means clamping, not
        // panicking, exactly like the buffer-capacity policy.
        cfg.rto_initial = cfg.rto_initial.max(1);
        cfg.rto_max = cfg.rto_max.max(cfg.rto_initial);
        ReliabilityState {
            cfg,
            rng,
            ack_drop,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            buffered: vec![0; n],
            checks: vec![BTreeSet::new(); n],
            next_reg: 0,
        }
    }

    /// Jitter draw for a deadline at the given RTO.
    fn jitter(&mut self, rto: u64) -> u64 {
        self.rng.below(rto * self.cfg.jitter_permille / 1000 + 1)
    }

    /// Registers one outgoing `from → to` message, assigning its seq and
    /// arming its first retransmission deadline. Evicts the sender's
    /// oldest unacked entry first when at capacity.
    pub(crate) fn register(
        &mut self,
        now: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &Payload<M>,
    ) -> Registered {
        let mut evicted = None;
        if self.buffered[from.index()] >= self.cfg.buffer_capacity {
            evicted = self.evict_oldest(from);
        }
        let pair = self
            .send
            .entry((from, to))
            .or_insert_with(|| PairSend::new(self.cfg.rto_initial));
        let seq = pair.next_seq;
        pair.next_seq += 1;
        let rto = pair.rto;
        let reg = self.next_reg;
        self.next_reg += 1;
        let jitter = self.jitter(rto);
        let deadline = SimTime::from_ticks(now.ticks().saturating_add(rto + jitter));
        let pair = self.send.get_mut(&(from, to)).expect("pair just inserted");
        pair.unacked.insert(
            seq,
            InFlight {
                msg: msg.clone(),
                deadline,
                retries: 0,
                reg,
            },
        );
        self.buffered[from.index()] += 1;
        Registered { seq, evicted }
    }

    /// Removes the oldest-registered unacked entry across all of `from`'s
    /// pairs. Returns its `(recipient, seq)`.
    fn evict_oldest(&mut self, from: ProcessId) -> Option<(ProcessId, u64)> {
        let mut oldest: Option<(u64, ProcessId, u64)> = None;
        for (&(_, to), pair) in self.send.range((from, ProcessId(0))..=(from, ProcessId(usize::MAX))) {
            for (&seq, entry) in &pair.unacked {
                if oldest.is_none_or(|(reg, _, _)| entry.reg < reg) {
                    oldest = Some((entry.reg, to, seq));
                }
            }
        }
        let (_, to, seq) = oldest?;
        let pair = self.send.get_mut(&(from, to)).expect("oldest pair exists");
        pair.unacked.remove(&seq);
        self.buffered[from.index()] -= 1;
        Some((to, seq))
    }

    /// Applies an ack at the original sender `sender` from `acker`:
    /// drops every unacked seq `≤ cum` plus the selective `seq`. On any
    /// progress the pair RTO resets to `rto_initial`. Returns how many
    /// entries were retired.
    pub(crate) fn apply_ack(
        &mut self,
        sender: ProcessId,
        acker: ProcessId,
        cum: u64,
        seq: u64,
    ) -> u64 {
        let Some(pair) = self.send.get_mut(&(sender, acker)) else {
            return 0;
        };
        let before = pair.unacked.len();
        pair.unacked.retain(|&s, _| s > cum && s != seq);
        let retired = before - pair.unacked.len();
        if retired > 0 {
            pair.rto = self.cfg.rto_initial;
            self.buffered[sender.index()] -= retired;
        }
        retired as u64
    }

    /// Processes one received copy of `(from → to, seq)` on the dedup
    /// side: fresh copies advance the cumulative mark, duplicates are
    /// flagged for suppression. Either way the returned `cum` is what the
    /// ack should carry.
    pub(crate) fn receive(&mut self, from: ProcessId, to: ProcessId, seq: u64) -> Received {
        let st = self.recv.entry((from, to)).or_default();
        if seq <= st.cum || st.out_of_order.contains(&seq) {
            return Received {
                fresh: false,
                cum: st.cum,
            };
        }
        st.out_of_order.insert(seq);
        while st.out_of_order.remove(&(st.cum + 1)) {
            st.cum += 1;
        }
        Received {
            fresh: true,
            cum: st.cum,
        }
    }

    /// Earliest retransmission deadline across all of `p`'s pairs, if it
    /// has anything buffered.
    pub(crate) fn earliest_deadline(&self, p: ProcessId) -> Option<SimTime> {
        self.send
            .range((p, ProcessId(0))..=(p, ProcessId(usize::MAX)))
            .flat_map(|(_, pair)| pair.unacked.values().map(|e| e.deadline))
            .min()
    }

    /// Records that a `RetransmitCheck` for `p` should fire at `tick`.
    /// Returns true when the caller must actually schedule the event —
    /// i.e. `tick` precedes every check already queued (the invariant is
    /// `min(checks[p]) ≤ min(deadlines of p)`, so a later tick is
    /// already covered).
    pub(crate) fn note_check(&mut self, p: ProcessId, tick: u64) -> bool {
        let set = &mut self.checks[p.index()];
        let needed = set.first().is_none_or(|&first| tick < first);
        if needed {
            set.insert(tick);
        }
        needed
    }

    /// Consumes the check tick when its event pops (stale ticks — e.g.
    /// cleared by a crash — are simply absent).
    pub(crate) fn pop_check(&mut self, p: ProcessId, tick: u64) {
        self.checks[p.index()].remove(&tick);
    }

    /// Collects everything due at `now` for sender `p`: entries past
    /// their deadline are either returned for retransmission (retries
    /// bumped, pair RTO doubled toward `rto_max`, new jittered deadline
    /// armed) or retired as exhausted when `max_retries` is spent.
    /// Returns `(to_retransmit, exhausted_count)`.
    pub(crate) fn due(&mut self, p: ProcessId, now: SimTime) -> (Vec<DueRetransmit<M>>, u64) {
        let lo = (p, ProcessId(0));
        let hi = (p, ProcessId(usize::MAX));
        let mut out = Vec::new();
        let mut exhausted = 0u64;
        // Two passes keep borrows simple: find due (to, seq) keys in
        // deterministic order, then mutate pair-by-pair.
        let due_keys: Vec<(ProcessId, u64)> = self
            .send
            .range(lo..=hi)
            .flat_map(|(&(_, to), pair)| {
                pair.unacked
                    .iter()
                    .filter(|(_, e)| e.deadline <= now)
                    .map(move |(&seq, _)| (to, seq))
            })
            .collect();
        for (to, seq) in due_keys {
            let max_retries = self.cfg.max_retries;
            let rto_max = self.cfg.rto_max;
            let pair = self.send.get_mut(&(p, to)).expect("due pair exists");
            let entry = pair.unacked.get_mut(&seq).expect("due entry exists");
            if entry.retries >= max_retries {
                pair.unacked.remove(&seq);
                self.buffered[p.index()] -= 1;
                exhausted += 1;
                continue;
            }
            entry.retries += 1;
            let retries = entry.retries;
            let msg = entry.msg.clone();
            pair.rto = (pair.rto * 2).min(rto_max);
            let rto = pair.rto;
            let jitter = self.jitter(rto);
            let pair = self.send.get_mut(&(p, to)).expect("due pair exists");
            let entry = pair.unacked.get_mut(&seq).expect("due entry exists");
            entry.deadline = SimTime::from_ticks(now.ticks().saturating_add(rto + jitter));
            out.push(DueRetransmit {
                to,
                seq,
                msg,
                retries,
            });
        }
        (out, exhausted)
    }

    /// Number of unacked entries buffered by sender `p`.
    pub(crate) fn buffered(&self, p: ProcessId) -> usize {
        self.buffered[p.index()]
    }

    /// Clears all of `p`'s reliability state on crash: its send buffers
    /// (a crashed process retransmits nothing), its receive dedup state
    /// (a restart is a new incarnation), and its queued check ticks
    /// (already-queued events become harmless husks).
    pub(crate) fn on_crash(&mut self, p: ProcessId, n: usize) {
        let removed: Vec<(ProcessId, ProcessId)> = self
            .send
            .range((p, ProcessId(0))..=(p, ProcessId(usize::MAX)))
            .map(|(&k, _)| k)
            .collect();
        for k in removed {
            self.send.remove(&k);
        }
        self.buffered[p.index()] = 0;
        self.checks[p.index()].clear();
        for i in 0..n {
            self.recv.remove(&(ProcessId(i), p));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(cfg: RetransmitConfig) -> ReliabilityState<u64> {
        ReliabilityState::new(cfg, SplitMix64::new(7).derive(u64::MAX - 1), 0.0, 4)
    }

    fn no_jitter() -> RetransmitConfig {
        RetransmitConfig {
            jitter_permille: 0,
            ..RetransmitConfig::default()
        }
    }

    #[test]
    fn seqs_are_monotonic_per_pair() {
        let mut s = state(no_jitter());
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let p2 = ProcessId(2);
        let m = Payload::Owned(9u64);
        assert_eq!(s.register(SimTime::ZERO, p0, p1, &m).seq, 1);
        assert_eq!(s.register(SimTime::ZERO, p0, p1, &m).seq, 2);
        // A different pair has its own sequence space.
        assert_eq!(s.register(SimTime::ZERO, p0, p2, &m).seq, 1);
        assert_eq!(s.buffered(p0), 3);
    }

    #[test]
    fn cumulative_ack_retires_prefix_and_selective_seq() {
        let mut s = state(no_jitter());
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let m = Payload::Owned(0u64);
        for _ in 0..5 {
            s.register(SimTime::ZERO, p0, p1, &m);
        }
        // Ack cum=2 plus selective seq=4: retires 1, 2, 4.
        assert_eq!(s.apply_ack(p0, p1, 2, 4), 3);
        assert_eq!(s.buffered(p0), 2);
        // Re-acking is idempotent.
        assert_eq!(s.apply_ack(p0, p1, 2, 4), 0);
        assert_eq!(s.apply_ack(p0, p1, 5, 5), 2);
        assert_eq!(s.buffered(p0), 0);
    }

    #[test]
    fn receive_dedups_and_advances_cumulative_mark() {
        let mut s = state(no_jitter());
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        // Out of order: 2 before 1.
        let r = s.receive(p0, p1, 2);
        assert!(r.fresh);
        assert_eq!(r.cum, 0);
        let r = s.receive(p0, p1, 1);
        assert!(r.fresh);
        assert_eq!(r.cum, 2);
        // Duplicates of both are suppressed but still report cum.
        let r = s.receive(p0, p1, 1);
        assert!(!r.fresh);
        assert_eq!(r.cum, 2);
        let r = s.receive(p0, p1, 2);
        assert!(!r.fresh);
        // Gap: 5 arrives, cum stays at 2 until 3 and 4 fill in.
        assert_eq!(s.receive(p0, p1, 5).cum, 2);
        assert_eq!(s.receive(p0, p1, 3).cum, 3);
        assert_eq!(s.receive(p0, p1, 4).cum, 5);
    }

    #[test]
    fn due_applies_backoff_and_exhaustion() {
        let cfg = RetransmitConfig {
            rto_initial: 10,
            rto_max: 25,
            max_retries: 2,
            ..no_jitter()
        };
        let mut s = state(cfg);
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        s.register(SimTime::ZERO, p0, p1, &Payload::Owned(42u64));
        assert_eq!(s.earliest_deadline(p0), Some(SimTime::from_ticks(10)));
        // Not due yet.
        let (r, ex) = s.due(p0, SimTime::from_ticks(9));
        assert!(r.is_empty());
        assert_eq!(ex, 0);
        // First retransmission: rto doubles 10 → 20.
        let (r, ex) = s.due(p0, SimTime::from_ticks(10));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].retries, 1);
        assert_eq!(ex, 0);
        assert_eq!(s.earliest_deadline(p0), Some(SimTime::from_ticks(30)));
        // Second retransmission: rto capped 40 → 25.
        let (r, _) = s.due(p0, SimTime::from_ticks(30));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].retries, 2);
        assert_eq!(s.earliest_deadline(p0), Some(SimTime::from_ticks(55)));
        // Third attempt exhausts the entry.
        let (r, ex) = s.due(p0, SimTime::from_ticks(55));
        assert!(r.is_empty());
        assert_eq!(ex, 1);
        assert_eq!(s.buffered(p0), 0);
        assert_eq!(s.earliest_deadline(p0), None);
    }

    #[test]
    fn capacity_evicts_oldest_registered_across_pairs() {
        let cfg = RetransmitConfig {
            buffer_capacity: 2,
            ..no_jitter()
        };
        let mut s = state(cfg);
        let p0 = ProcessId(0);
        let m = Payload::Owned(0u64);
        let a = s.register(SimTime::ZERO, p0, ProcessId(1), &m);
        assert_eq!(a.evicted, None);
        let b = s.register(SimTime::ZERO, p0, ProcessId(2), &m);
        assert_eq!(b.evicted, None);
        // Third registration evicts the oldest (p1, seq 1).
        let c = s.register(SimTime::ZERO, p0, ProcessId(1), &m);
        assert_eq!(c.evicted, Some((ProcessId(1), 1)));
        assert_eq!(c.seq, 2);
        assert_eq!(s.buffered(p0), 2);
        // Another sender is unaffected by p0's capacity.
        assert_eq!(s.register(SimTime::ZERO, ProcessId(3), ProcessId(1), &m).evicted, None);
    }

    #[test]
    fn check_ticks_dedup_and_pop() {
        let mut s = state(no_jitter());
        let p = ProcessId(0);
        assert!(s.note_check(p, 50));
        // A later tick is covered by the earlier one.
        assert!(!s.note_check(p, 60));
        // An earlier tick must be scheduled.
        assert!(s.note_check(p, 40));
        s.pop_check(p, 40);
        s.pop_check(p, 50);
        assert!(s.note_check(p, 55));
    }

    #[test]
    fn crash_clears_sender_receiver_and_checks() {
        let mut s = state(no_jitter());
        let p0 = ProcessId(0);
        let p1 = ProcessId(1);
        let m = Payload::Owned(0u64);
        s.register(SimTime::ZERO, p0, p1, &m);
        s.receive(p1, p0, 1);
        s.note_check(p0, 50);
        s.on_crash(p0, 4);
        assert_eq!(s.buffered(p0), 0);
        assert_eq!(s.earliest_deadline(p0), None);
        // Receive state addressed *to* p0 was cleared: seq 1 from p1 is
        // fresh again for the new incarnation.
        assert!(s.receive(p1, p0, 1).fresh);
        // Sequence space restarts for the new incarnation's sends.
        assert_eq!(s.register(SimTime::ZERO, p0, p1, &m).seq, 1);
    }

    #[test]
    fn jitter_draws_are_deterministic_and_bounded() {
        let cfg = RetransmitConfig {
            rto_initial: 100,
            jitter_permille: 250,
            ..RetransmitConfig::default()
        };
        let mut a = state(cfg);
        let mut b = state(cfg);
        for _ in 0..64 {
            let ja = a.jitter(100);
            let jb = b.jitter(100);
            assert_eq!(ja, jb);
            assert!(ja <= 25);
        }
    }
}
