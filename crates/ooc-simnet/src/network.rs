//! Network behaviour configuration for the asynchronous engine.

use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use crate::ProcessId;
use serde::{Deserialize, Serialize};

/// How message transit delays are sampled.
///
/// # Causality floor
///
/// *Every* variant clamps the sampled delay to **at least 1 tick**: a
/// zero-tick delay would deliver a message at the instant it was sent,
/// letting effects land at the same time as (or, after heap reordering,
/// logically before) their cause. Concretely, `Fixed(0)` behaves as
/// `Fixed(1)`, and `Uniform` clamps each bound to ≥ 1 (so
/// `min: 0, max: 0` also yields 1-tick delays), exactly as
/// `Exponential` rounds up to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks (floored to 1; see
    /// the [causality floor](DelayModel#causality-floor)).
    Fixed(u64),
    /// Delay drawn uniformly from `[min, max]` ticks (inclusive). Both
    /// bounds are floored to 1 and swapped bounds are reordered (see
    /// the [causality floor](DelayModel#causality-floor)).
    Uniform {
        /// Minimum delay in ticks (effective minimum is 1).
        min: u64,
        /// Maximum delay in ticks (effective maximum is `max(max, 1)`).
        max: u64,
    },
    /// Geometric approximation of an exponential delay with the given mean,
    /// in ticks; rounded up to 1 tick (see the
    /// [causality floor](DelayModel#causality-floor)).
    Exponential {
        /// Mean delay in ticks.
        mean: u64,
    },
}

impl DelayModel {
    /// Samples a transit delay; never less than 1 tick (see the
    /// [causality floor](DelayModel#causality-floor)).
    pub fn sample(&self, rng: &mut SplitMix64) -> SimDuration {
        let ticks = match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                rng.range_inclusive(lo.max(1), hi.max(1))
            }
            DelayModel::Exponential { mean } => {
                let mean = mean.max(1) as f64;
                // Inverse-CDF sampling; `u` is kept away from 0 to avoid inf.
                let u = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                ((-u.ln() * mean).round() as u64).max(1)
            }
        };
        SimDuration::from_ticks(ticks)
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 10 }
    }
}

/// A window of simulated time during which the network is partitioned into
/// disjoint groups; messages between different groups are dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The groups. A process absent from every group is isolated.
    pub groups: Vec<Vec<ProcessId>>,
}

impl PartitionWindow {
    /// Whether `a` can send to `b` at time `t` under this window.
    ///
    /// Returns `None` when the window is not active at `t` (no opinion).
    pub fn allows(&self, t: SimTime, a: ProcessId, b: ProcessId) -> Option<bool> {
        if t < self.from || t >= self.until {
            return None;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        Some(match (ga, gb) {
            (Some(x), Some(y)) => x == y,
            // Isolated processes can talk to nobody (except themselves,
            // handled by the self-delivery fast path in the engine).
            _ => false,
        })
    }
}

/// Stochastic network behaviour for the asynchronous engine.
///
/// The default configuration is a reliable network with uniform 1–10 tick
/// delays and instantaneous self-delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Transit delay distribution for messages between distinct processes.
    pub delay: DelayModel,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_probability: f64,
    /// When true, deliveries between each ordered pair of processes respect
    /// send order (per-link FIFO), as in TCP-like transports.
    pub fifo_links: bool,
    /// Delay applied to messages a process sends to itself. Self-messages
    /// are never dropped, duplicated, or partitioned away.
    pub self_delay: SimDuration,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            delay: DelayModel::default(),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            fifo_links: false,
            self_delay: SimDuration::from_ticks(1),
            partitions: Vec::new(),
        }
    }
}

impl NetworkConfig {
    /// A perfectly reliable network with a fixed per-message delay.
    pub fn reliable(delay_ticks: u64) -> Self {
        NetworkConfig {
            delay: DelayModel::Fixed(delay_ticks),
            ..NetworkConfig::default()
        }
    }

    /// A lossy network: uniform delays plus the given drop probability.
    pub fn lossy(min: u64, max: u64, drop_probability: f64) -> Self {
        NetworkConfig {
            delay: DelayModel::Uniform { min, max },
            drop_probability,
            ..NetworkConfig::default()
        }
    }

    /// Whether a message from `a` to `b` at `t` crosses an active partition.
    pub fn partition_blocks(&self, t: SimTime, a: ProcessId, b: ProcessId) -> bool {
        self.partitions
            .iter()
            .filter_map(|w| w.allows(t, a, b))
            .any(|allowed| !allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_fixed() {
        let mut rng = SplitMix64::new(1);
        let m = DelayModel::Fixed(5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_ticks(5));
        }
    }

    #[test]
    fn fixed_zero_becomes_one_tick() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            DelayModel::Fixed(0).sample(&mut rng),
            SimDuration::from_ticks(1)
        );
    }

    #[test]
    fn causality_floor_on_all_variants() {
        // The documented contract: no variant can ever sample 0 ticks,
        // even with degenerate parameters.
        let mut rng = SplitMix64::new(7);
        let degenerate = [
            DelayModel::Fixed(0),
            DelayModel::Uniform { min: 0, max: 0 },
            DelayModel::Uniform { min: 0, max: 2 },
            DelayModel::Exponential { mean: 0 },
        ];
        for m in degenerate {
            for _ in 0..500 {
                assert!(
                    m.sample(&mut rng).ticks() >= 1,
                    "{m:?} sampled a zero-tick delay"
                );
            }
        }
        // Uniform {0, 0} is exactly the 1-tick floor, like Fixed(0).
        assert_eq!(
            DelayModel::Uniform { min: 0, max: 0 }.sample(&mut rng),
            SimDuration::from_ticks(1)
        );
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = SplitMix64::new(2);
        let m = DelayModel::Uniform { min: 3, max: 9 };
        for _ in 0..1000 {
            let d = m.sample(&mut rng).ticks();
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_swapped_bounds_are_fixed_up() {
        let mut rng = SplitMix64::new(2);
        let m = DelayModel::Uniform { min: 9, max: 3 };
        for _ in 0..100 {
            let d = m.sample(&mut rng).ticks();
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn exponential_delay_positive_and_near_mean() {
        let mut rng = SplitMix64::new(3);
        let m = DelayModel::Exponential { mean: 10 };
        let mut total = 0u64;
        for _ in 0..10_000 {
            let d = m.sample(&mut rng).ticks();
            assert!(d >= 1);
            total += d;
        }
        let mean = total as f64 / 10_000.0;
        assert!((mean - 10.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn partition_window_blocks_cross_group() {
        let w = PartitionWindow {
            from: SimTime::from_ticks(10),
            until: SimTime::from_ticks(20),
            groups: vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
        };
        // Outside the window: no opinion.
        assert_eq!(w.allows(SimTime::from_ticks(5), ProcessId(0), ProcessId(2)), None);
        assert_eq!(w.allows(SimTime::from_ticks(20), ProcessId(0), ProcessId(2)), None);
        // Inside: same group ok, cross group blocked, isolated blocked.
        assert_eq!(
            w.allows(SimTime::from_ticks(10), ProcessId(0), ProcessId(1)),
            Some(true)
        );
        assert_eq!(
            w.allows(SimTime::from_ticks(15), ProcessId(0), ProcessId(2)),
            Some(false)
        );
        let w2 = PartitionWindow {
            groups: vec![vec![ProcessId(0)]],
            ..w
        };
        assert_eq!(
            w2.allows(SimTime::from_ticks(15), ProcessId(0), ProcessId(3)),
            Some(false)
        );
    }

    #[test]
    fn config_partition_blocks() {
        let cfg = NetworkConfig {
            partitions: vec![PartitionWindow {
                from: SimTime::ZERO,
                until: SimTime::from_ticks(100),
                groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
            }],
            ..NetworkConfig::default()
        };
        assert!(cfg.partition_blocks(SimTime::from_ticks(1), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(100), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(1), ProcessId(0), ProcessId(0)));
    }
}
