//! Network behaviour configuration for the asynchronous engine.

use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use crate::ProcessId;
use serde::{Deserialize, Serialize};

/// How message transit delays are sampled.
///
/// # Causality floor
///
/// *Every* variant clamps the sampled delay to **at least 1 tick**: a
/// zero-tick delay would deliver a message at the instant it was sent,
/// letting effects land at the same time as (or, after heap reordering,
/// logically before) their cause. Concretely, `Fixed(0)` behaves as
/// `Fixed(1)`, and `Uniform` clamps each bound to ≥ 1 (so
/// `min: 0, max: 0` also yields 1-tick delays), exactly as
/// `Exponential` rounds up to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many ticks (floored to 1; see
    /// the [causality floor](DelayModel#causality-floor)).
    Fixed(u64),
    /// Delay drawn uniformly from `[min, max]` ticks (inclusive). Both
    /// bounds are floored to 1 and swapped bounds are reordered (see
    /// the [causality floor](DelayModel#causality-floor)).
    Uniform {
        /// Minimum delay in ticks (effective minimum is 1).
        min: u64,
        /// Maximum delay in ticks (effective maximum is `max(max, 1)`).
        max: u64,
    },
    /// Geometric approximation of an exponential delay with the given mean,
    /// in ticks; rounded up to 1 tick (see the
    /// [causality floor](DelayModel#causality-floor)).
    Exponential {
        /// Mean delay in ticks.
        mean: u64,
    },
    /// Bounded Pareto-style heavy-tailed delay: most messages arrive near
    /// `floor`, but a polynomial tail stretches out to `cap`. Sampled by
    /// inverse-CDF from the run's deterministic RNG as
    /// `floor / u^(1000/alpha_milli)` and clamped to `[floor, cap]`.
    ///
    /// The effective floor is `max(floor, 1)` and the effective cap is
    /// `max(cap, floor)` — the model can never sample a zero-tick delay
    /// (see the [causality floor](DelayModel#causality-floor)), even with
    /// all parameters zero.
    HeavyTailed {
        /// Minimum delay in ticks (effective minimum is `max(floor, 1)`).
        floor: u64,
        /// Tail index α in milli-units (1200 = α 1.2). Smaller α means a
        /// heavier tail; clamped to ≥ 100 (α 0.1) to keep the inverse CDF
        /// finite.
        alpha_milli: u64,
        /// Hard upper bound in ticks (effective cap is `max(cap, floor)`).
        cap: u64,
    },
}

impl DelayModel {
    /// Samples a transit delay; never less than 1 tick (see the
    /// [causality floor](DelayModel#causality-floor)).
    pub fn sample(&self, rng: &mut SplitMix64) -> SimDuration {
        let ticks = match *self {
            DelayModel::Fixed(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let (lo, hi) = if min <= max { (min, max) } else { (max, min) };
                rng.range_inclusive(lo.max(1), hi.max(1))
            }
            DelayModel::Exponential { mean } => {
                let mean = mean.max(1) as f64;
                // Inverse-CDF sampling; `u` is kept away from 0 to avoid inf.
                let u = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                ticks_from_f64((-u.ln() * mean).round()).max(1)
            }
            DelayModel::HeavyTailed {
                floor,
                alpha_milli,
                cap,
            } => {
                let lo = floor.max(1);
                let hi = cap.max(lo);
                let alpha = alpha_milli.max(100) as f64 / 1000.0;
                // Bounded Pareto via inverse CDF: u uniform in (0, 1],
                // x = floor · u^(-1/α), clamped into [lo, hi].
                let u = ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(1e-12);
                let x = (lo as f64 * u.powf(-1.0 / alpha)).round();
                // An infinite tail sample saturates to u64::MAX and the
                // clamp lands it on the cap.
                ticks_from_f64(x).clamp(lo, hi)
            }
        };
        SimDuration::from_ticks(ticks)
    }
}

/// Converts a sampled delay from `f64` to ticks with *explicit*
/// saturation: NaN and non-positive values go to 0, values at or beyond
/// `u64::MAX` go to `u64::MAX`.
///
/// The delay hot path used to lean on the implicit saturation of a bare
/// `as u64` cast; extreme-but-valid parameters (`mean = u64::MAX`, a
/// near-zero `alpha_milli` tail) all funnel through this helper now, so
/// the boundary behaviour is spelled out and pinned by tests instead of
/// inherited from cast semantics. Every caller still applies its own
/// ≥ 1-tick causality floor after this conversion.
fn ticks_from_f64(x: f64) -> u64 {
    if x.is_nan() || x <= 0.0 {
        0
    } else if x >= u64::MAX as f64 {
        u64::MAX
    } else {
        x as u64
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 10 }
    }
}

/// A window of simulated time during which the network is partitioned into
/// disjoint groups; messages between different groups are dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// The groups. A process absent from every group is isolated.
    pub groups: Vec<Vec<ProcessId>>,
}

impl PartitionWindow {
    /// Whether `a` can send to `b` at time `t` under this window.
    ///
    /// Returns `None` when the window is not active at `t` (no opinion).
    pub fn allows(&self, t: SimTime, a: ProcessId, b: ProcessId) -> Option<bool> {
        if t < self.from || t >= self.until {
            return None;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        Some(match (ga, gb) {
            (Some(x), Some(y)) => x == y,
            // Isolated processes can talk to nobody (except themselves,
            // handled by the self-delivery fast path in the engine).
            _ => false,
        })
    }
}

/// A periodically recurring partition: within `[from, until)` the network
/// splits into `groups` for the first `partitioned` ticks of every
/// `period`-tick cycle, then heals for the remainder — the classic
/// "flapping switch" gray failure.
///
/// Campaigns derive the cadence deterministically from the run RNG via
/// [`FlappingPartition::from_rng`], so a flap schedule is part of the run's
/// seed identity rather than a hand-picked constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlappingPartition {
    /// First tick (inclusive) at which flapping may occur.
    pub from: SimTime,
    /// Last tick (exclusive) at which flapping may occur.
    pub until: SimTime,
    /// Full cycle length in ticks (effective minimum is 1).
    pub period: u64,
    /// Partitioned prefix of each cycle, in ticks; clamped to `period`.
    /// The remaining `period - partitioned` ticks of the cycle are healed.
    pub partitioned: u64,
    /// The groups while partitioned. A process absent from every group is
    /// isolated during the partitioned phase.
    pub groups: Vec<Vec<ProcessId>>,
}

impl FlappingPartition {
    /// Derives a flap cadence from the run RNG: period uniform in
    /// `[40, 120]` ticks, with between a quarter and three quarters of each
    /// cycle spent partitioned. Deterministic for a given RNG state.
    pub fn from_rng(
        rng: &mut SplitMix64,
        from: SimTime,
        until: SimTime,
        groups: Vec<Vec<ProcessId>>,
    ) -> Self {
        let period = rng.range_inclusive(40, 120);
        let partitioned = rng.range_inclusive(period / 4, (3 * period) / 4);
        FlappingPartition {
            from,
            until,
            period,
            partitioned,
            groups,
        }
    }

    /// Whether the partitioned phase of a cycle is active at `t`.
    pub fn active(&self, t: SimTime) -> bool {
        if t < self.from || t >= self.until {
            return false;
        }
        let period = self.period.max(1);
        let phase = (t.ticks() - self.from.ticks()) % period;
        phase < self.partitioned.min(period)
    }

    /// Whether `a` can send to `b` at time `t` under this flap.
    ///
    /// Returns `None` while healed or outside `[from, until)` (no opinion).
    pub fn allows(&self, t: SimTime, a: ProcessId, b: ProcessId) -> Option<bool> {
        if !self.active(t) {
            return None;
        }
        let ga = self.groups.iter().position(|g| g.contains(&a));
        let gb = self.groups.iter().position(|g| g.contains(&b));
        Some(match (ga, gb) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        })
    }
}

/// Per-directed-link overrides of the global loss/delay behaviour —
/// asymmetric gray failures where `a → b` limps while `b → a` is healthy.
///
/// A field left as `None` falls back to the corresponding global
/// [`NetworkConfig`] knob. When several overrides match the same link the
/// last one wins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkOverride {
    /// Sender side of the directed link.
    pub from: ProcessId,
    /// Recipient side of the directed link.
    pub to: ProcessId,
    /// Replaces [`NetworkConfig::drop_probability`] for this link.
    pub drop_probability: Option<f64>,
    /// Replaces [`NetworkConfig::delay`] for this link.
    pub delay: Option<DelayModel>,
}

/// Stochastic network behaviour for the asynchronous engine.
///
/// The default configuration is a reliable network with uniform 1–10 tick
/// delays and instantaneous self-delivery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Transit delay distribution for messages between distinct processes.
    pub delay: DelayModel,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_probability: f64,
    /// When true, deliveries between each ordered pair of processes respect
    /// send order (per-link FIFO), as in TCP-like transports.
    pub fifo_links: bool,
    /// Delay applied to messages a process sends to itself. Self-messages
    /// are never dropped, duplicated, or partitioned away.
    pub self_delay: SimDuration,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Per-directed-link loss/delay overrides (asymmetric gray failures).
    #[serde(default)]
    pub link_overrides: Vec<LinkOverride>,
    /// Periodic partition/heal windows (flapping gray failures).
    #[serde(default)]
    pub flapping: Vec<FlappingPartition>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            delay: DelayModel::default(),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            fifo_links: false,
            self_delay: SimDuration::from_ticks(1),
            partitions: Vec::new(),
            link_overrides: Vec::new(),
            flapping: Vec::new(),
        }
    }
}

impl NetworkConfig {
    /// A perfectly reliable network with a fixed per-message delay.
    pub fn reliable(delay_ticks: u64) -> Self {
        NetworkConfig {
            delay: DelayModel::Fixed(delay_ticks),
            ..NetworkConfig::default()
        }
    }

    /// A lossy network: uniform delays plus the given drop probability.
    pub fn lossy(min: u64, max: u64, drop_probability: f64) -> Self {
        NetworkConfig {
            delay: DelayModel::Uniform { min, max },
            drop_probability,
            ..NetworkConfig::default()
        }
    }

    /// Adds a per-directed-link override.
    pub fn with_link_override(mut self, link: LinkOverride) -> Self {
        self.link_overrides.push(link);
        self
    }

    /// Adds a flapping partition.
    pub fn with_flapping(mut self, flap: FlappingPartition) -> Self {
        self.flapping.push(flap);
        self
    }

    /// Whether a message from `a` to `b` at `t` crosses an active partition
    /// — a scheduled [`PartitionWindow`] or the partitioned phase of a
    /// [`FlappingPartition`].
    pub fn partition_blocks(&self, t: SimTime, a: ProcessId, b: ProcessId) -> bool {
        self.partitions
            .iter()
            .filter_map(|w| w.allows(t, a, b))
            .any(|allowed| !allowed)
            || self
                .flapping
                .iter()
                .filter_map(|w| w.allows(t, a, b))
                .any(|allowed| !allowed)
    }

    /// The last override registered for the directed link `from → to`.
    pub fn link_override(&self, from: ProcessId, to: ProcessId) -> Option<&LinkOverride> {
        self.link_overrides
            .iter()
            .rev()
            .find(|o| o.from == from && o.to == to)
    }

    /// The drop probability in effect on the directed link `from → to`.
    pub fn drop_probability_for(&self, from: ProcessId, to: ProcessId) -> f64 {
        self.link_override(from, to)
            .and_then(|o| o.drop_probability)
            .unwrap_or(self.drop_probability)
    }

    /// The delay model in effect on the directed link `from → to`.
    pub fn delay_for(&self, from: ProcessId, to: ProcessId) -> &DelayModel {
        self.link_override(from, to)
            .and_then(|o| o.delay.as_ref())
            .unwrap_or(&self.delay)
    }
}

/// Per-recipient routing state resolved once per `(sender, tick)` by the
/// [`FanoutPlanner`]: everything [`NetworkConfig`] would answer for the
/// directed link, with the override/global fallback already applied.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LinkPlan {
    /// `NetworkConfig::drop_probability_for(from, to)`.
    pub(crate) drop_probability: f64,
    /// `NetworkConfig::delay_for(from, to)`.
    pub(crate) delay: DelayModel,
}

/// One-pass delivery planning for the batched broadcast fan-out path.
///
/// The per-recipient routing path re-derives everything per message:
/// every send scans the partition and flapping windows twice (sender
/// and recipient group lookup), and scans `link_overrides` twice more
/// (drop probability, then delay model). A broadcast of `n - 1`
/// messages therefore pays `O(n · windows + n · overrides)` just to
/// rediscover state that is fixed for the whole `(sender, tick)` batch.
///
/// The planner resolves that state once:
///
/// * **Link classes** (`drop_probability`, `delay`) depend only on the
///   static `link_overrides` list, so they are resolved lazily per
///   sender and cached for the rest of the run.
/// * **Partition blocking** depends on the tick; the `blocked` scratch
///   vector is rebuilt only when `(sender, tick)` changes, and only
///   when the config has any window at all (the common no-partition
///   case keeps it permanently all-false).
/// * Clock scaling never applies to message transit (only timers), and
///   adversary classification is the caller's gate: the planner is only
///   consulted when the engine runs the default [`NetworkConfig`]-driven
///   routing (`NetworkAdversary`), never for custom adversaries.
///
/// The planner answers exactly what `NetworkAdversary::route` /
/// `::duplicate` would compute — the caller is responsible for drawing
/// from the RNG in the identical per-recipient order (partition check:
/// no draw; loss: one `chance` draw iff `drop_probability > 0`; delay:
/// `DelayModel::sample`; duplication: one `chance` draw iff
/// `duplicate_probability > 0`), which is what keeps traces, metrics
/// and artifacts byte-identical across the two fan-out kinds.
pub(crate) struct FanoutPlanner {
    config: NetworkConfig,
    /// Per-sender resolved link classes, built on first use (the
    /// override list is static for a run).
    links: Vec<Option<Box<[LinkPlan]>>>,
    /// Scratch blocked-recipient flags for `blocked_for`.
    blocked: Vec<bool>,
    /// The `(tick, sender)` the `blocked` flags were resolved for.
    blocked_for: Option<(SimTime, ProcessId)>,
    /// False iff the config has no partition or flapping window — the
    /// `blocked` flags then stay all-false without ever being scanned.
    has_windows: bool,
    /// The sender `prepare` most recently resolved.
    current: usize,
}

impl FanoutPlanner {
    pub(crate) fn new(config: NetworkConfig, n: usize) -> Self {
        let has_windows = !config.partitions.is_empty() || !config.flapping.is_empty();
        FanoutPlanner {
            links: vec![None; n],
            blocked: vec![false; n],
            blocked_for: None,
            has_windows,
            current: 0,
            config,
        }
    }

    /// The global duplication probability (never overridden per link).
    pub(crate) fn duplicate_probability(&self) -> f64 {
        self.config.duplicate_probability
    }

    /// Resolves routing state for one `(tick, sender)` fan-out batch.
    /// Idempotent and cheap when called again with the same pair.
    pub(crate) fn prepare(&mut self, at: SimTime, from: ProcessId) {
        self.current = from.index();
        if self.links[self.current].is_none() {
            self.links[self.current] = Some(self.resolve_links(from));
        }
        if self.has_windows && self.blocked_for != Some((at, from)) {
            self.blocked.fill(false);
            for w in &self.config.partitions {
                if at >= w.from && at < w.until {
                    mark_blocked(&w.groups, from, &mut self.blocked);
                }
            }
            for w in &self.config.flapping {
                if w.active(at) {
                    mark_blocked(&w.groups, from, &mut self.blocked);
                }
            }
            self.blocked_for = Some((at, from));
        }
    }

    /// Whether the prepared sender's messages to `to` cross an active
    /// partition — exactly `NetworkConfig::partition_blocks`.
    pub(crate) fn blocked(&self, to: ProcessId) -> bool {
        self.blocked[to.index()]
    }

    /// The prepared sender's resolved link class for `to`.
    pub(crate) fn link(&self, to: ProcessId) -> &LinkPlan {
        &self.links[self.current].as_ref().expect("prepare() resolves links")[to.index()]
    }

    /// One pass over `link_overrides` for `from`, keeping the *last*
    /// matching override per recipient (the `link_override` contract:
    /// fields of the winning override fall back to the globals
    /// independently; earlier overrides are ignored entirely).
    fn resolve_links(&self, from: ProcessId) -> Box<[LinkPlan]> {
        let n = self.blocked.len();
        let mut winner: Vec<Option<&LinkOverride>> = vec![None; n];
        for o in &self.config.link_overrides {
            if o.from == from && o.to.index() < n {
                winner[o.to.index()] = Some(o);
            }
        }
        winner
            .into_iter()
            .map(|o| LinkPlan {
                drop_probability: o
                    .and_then(|o| o.drop_probability)
                    .unwrap_or(self.config.drop_probability),
                delay: o.and_then(|o| o.delay).unwrap_or(self.config.delay),
            })
            .collect()
    }
}

/// Marks every recipient an active window forbids for `from`, with the
/// same group-lookup semantics as `PartitionWindow::allows`: first group
/// containing the process wins, a sender or recipient in no group is
/// isolated, and cross-group (or isolated) pairs are blocked.
fn mark_blocked(groups: &[Vec<ProcessId>], from: ProcessId, blocked: &mut [bool]) {
    match groups.iter().position(|g| g.contains(&from)) {
        None => blocked.fill(true),
        Some(ga) => {
            for (i, b) in blocked.iter_mut().enumerate() {
                if !*b {
                    let gb = groups.iter().position(|g| g.contains(&ProcessId(i)));
                    if gb != Some(ga) {
                        *b = true;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_delay_is_fixed() {
        let mut rng = SplitMix64::new(1);
        let m = DelayModel::Fixed(5);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_ticks(5));
        }
    }

    #[test]
    fn fixed_zero_becomes_one_tick() {
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            DelayModel::Fixed(0).sample(&mut rng),
            SimDuration::from_ticks(1)
        );
    }

    #[test]
    fn causality_floor_on_all_variants() {
        // The documented contract: no variant can ever sample 0 ticks,
        // even with degenerate parameters.
        let mut rng = SplitMix64::new(7);
        let degenerate = [
            DelayModel::Fixed(0),
            DelayModel::Uniform { min: 0, max: 0 },
            DelayModel::Uniform { min: 0, max: 2 },
            DelayModel::Exponential { mean: 0 },
            DelayModel::HeavyTailed {
                floor: 0,
                alpha_milli: 0,
                cap: 0,
            },
            DelayModel::HeavyTailed {
                floor: 1,
                alpha_milli: 100,
                cap: 1,
            },
        ];
        for m in degenerate {
            for _ in 0..500 {
                assert!(
                    m.sample(&mut rng).ticks() >= 1,
                    "{m:?} sampled a zero-tick delay"
                );
            }
        }
        // Uniform {0, 0} is exactly the 1-tick floor, like Fixed(0).
        assert_eq!(
            DelayModel::Uniform { min: 0, max: 0 }.sample(&mut rng),
            SimDuration::from_ticks(1)
        );
    }

    #[test]
    fn uniform_delay_in_range() {
        let mut rng = SplitMix64::new(2);
        let m = DelayModel::Uniform { min: 3, max: 9 };
        for _ in 0..1000 {
            let d = m.sample(&mut rng).ticks();
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_swapped_bounds_are_fixed_up() {
        let mut rng = SplitMix64::new(2);
        let m = DelayModel::Uniform { min: 9, max: 3 };
        for _ in 0..100 {
            let d = m.sample(&mut rng).ticks();
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn exponential_delay_positive_and_near_mean() {
        let mut rng = SplitMix64::new(3);
        let m = DelayModel::Exponential { mean: 10 };
        let mut total = 0u64;
        for _ in 0..10_000 {
            let d = m.sample(&mut rng).ticks();
            assert!(d >= 1);
            total += d;
        }
        let mean = total as f64 / 10_000.0;
        assert!((mean - 10.0).abs() < 1.0, "empirical mean {mean}");
    }

    #[test]
    fn partition_window_blocks_cross_group() {
        let w = PartitionWindow {
            from: SimTime::from_ticks(10),
            until: SimTime::from_ticks(20),
            groups: vec![vec![ProcessId(0), ProcessId(1)], vec![ProcessId(2)]],
        };
        // Outside the window: no opinion.
        assert_eq!(w.allows(SimTime::from_ticks(5), ProcessId(0), ProcessId(2)), None);
        assert_eq!(w.allows(SimTime::from_ticks(20), ProcessId(0), ProcessId(2)), None);
        // Inside: same group ok, cross group blocked, isolated blocked.
        assert_eq!(
            w.allows(SimTime::from_ticks(10), ProcessId(0), ProcessId(1)),
            Some(true)
        );
        assert_eq!(
            w.allows(SimTime::from_ticks(15), ProcessId(0), ProcessId(2)),
            Some(false)
        );
        let w2 = PartitionWindow {
            groups: vec![vec![ProcessId(0)]],
            ..w
        };
        assert_eq!(
            w2.allows(SimTime::from_ticks(15), ProcessId(0), ProcessId(3)),
            Some(false)
        );
    }

    #[test]
    fn heavy_tailed_respects_floor_and_cap() {
        let mut rng = SplitMix64::new(9);
        let m = DelayModel::HeavyTailed {
            floor: 3,
            alpha_milli: 1200,
            cap: 50,
        };
        let mut saw_tail = false;
        for _ in 0..5000 {
            let d = m.sample(&mut rng).ticks();
            assert!((3..=50).contains(&d), "sampled {d} outside [3, 50]");
            saw_tail |= d > 20;
        }
        // A heavy tail actually reaches deep into the bounded range.
        assert!(saw_tail, "no sample ever exceeded 20 ticks");
    }

    #[test]
    fn heavy_tailed_degenerate_params_pin_to_one_tick() {
        let mut rng = SplitMix64::new(11);
        let m = DelayModel::HeavyTailed {
            floor: 0,
            alpha_milli: 0,
            cap: 0,
        };
        for _ in 0..200 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_ticks(1));
        }
    }

    #[test]
    fn ticks_from_f64_saturates_at_the_boundaries() {
        // The explicit contract the delay hot path now carries instead of
        // implicit float-to-int cast semantics.
        assert_eq!(ticks_from_f64(f64::NAN), 0);
        assert_eq!(ticks_from_f64(-1.0), 0);
        assert_eq!(ticks_from_f64(0.0), 0);
        assert_eq!(ticks_from_f64(1.5), 1);
        assert_eq!(ticks_from_f64((1u64 << 53) as f64), 1u64 << 53);
        assert_eq!(ticks_from_f64(u64::MAX as f64), u64::MAX);
        assert_eq!(ticks_from_f64(1e300), u64::MAX);
        assert_eq!(ticks_from_f64(f64::INFINITY), u64::MAX);
    }

    #[test]
    fn extreme_delay_parameters_saturate_instead_of_wrapping() {
        // Regression for the unchecked-cast sweep: extreme-but-valid
        // parameters (maximal means, floors, caps and tail indices) must
        // saturate at u64::MAX, never wrap past the ≥ 1-tick causality
        // floor into a same-instant delivery.
        let mut rng = SplitMix64::new(5);
        let extremes = [
            DelayModel::Fixed(u64::MAX),
            DelayModel::Uniform {
                min: u64::MAX,
                max: u64::MAX,
            },
            DelayModel::Uniform {
                min: 0,
                max: u64::MAX,
            },
            DelayModel::Exponential { mean: u64::MAX },
            DelayModel::HeavyTailed {
                floor: u64::MAX,
                alpha_milli: 100,
                cap: u64::MAX,
            },
            DelayModel::HeavyTailed {
                floor: 1,
                alpha_milli: 100,
                cap: u64::MAX,
            },
            DelayModel::HeavyTailed {
                floor: u64::MAX,
                alpha_milli: u64::MAX,
                cap: 0,
            },
        ];
        for m in extremes {
            for _ in 0..500 {
                let d = m.sample(&mut rng).ticks();
                assert!(d >= 1, "{m:?} sampled a sub-causal delay {d}");
            }
        }
        // The α → 0.1 tail at a maximal floor saturates exactly at the cap.
        let m = DelayModel::HeavyTailed {
            floor: u64::MAX,
            alpha_milli: 100,
            cap: u64::MAX,
        };
        assert_eq!(m.sample(&mut rng).ticks(), u64::MAX);
    }

    #[test]
    fn flapping_partition_alternates_block_and_heal() {
        let flap = FlappingPartition {
            from: SimTime::from_ticks(10),
            until: SimTime::from_ticks(110),
            period: 20,
            partitioned: 5,
            groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
        };
        // Outside [from, until): no opinion.
        assert_eq!(flap.allows(SimTime::from_ticks(9), ProcessId(0), ProcessId(1)), None);
        assert_eq!(flap.allows(SimTime::from_ticks(110), ProcessId(0), ProcessId(1)), None);
        // Partitioned prefix of the first cycle: ticks 10..15 blocked.
        assert_eq!(
            flap.allows(SimTime::from_ticks(10), ProcessId(0), ProcessId(1)),
            Some(false)
        );
        assert_eq!(
            flap.allows(SimTime::from_ticks(14), ProcessId(0), ProcessId(1)),
            Some(false)
        );
        // Healed remainder: ticks 15..30 no opinion.
        assert_eq!(flap.allows(SimTime::from_ticks(15), ProcessId(0), ProcessId(1)), None);
        assert_eq!(flap.allows(SimTime::from_ticks(29), ProcessId(0), ProcessId(1)), None);
        // Next cycle partitions again at tick 30.
        assert_eq!(
            flap.allows(SimTime::from_ticks(30), ProcessId(0), ProcessId(1)),
            Some(false)
        );
        // Same group is allowed even while partitioned.
        assert_eq!(
            flap.allows(SimTime::from_ticks(10), ProcessId(0), ProcessId(0)),
            Some(true)
        );
    }

    #[test]
    fn flapping_from_rng_is_deterministic_and_bounded() {
        let groups = vec![vec![ProcessId(0)], vec![ProcessId(1)]];
        let mut a = SplitMix64::new(77);
        let mut b = SplitMix64::new(77);
        let fa = FlappingPartition::from_rng(&mut a, SimTime::ZERO, SimTime::from_ticks(500), groups.clone());
        let fb = FlappingPartition::from_rng(&mut b, SimTime::ZERO, SimTime::from_ticks(500), groups);
        assert_eq!(fa, fb);
        assert!((40..=120).contains(&fa.period));
        assert!(fa.partitioned <= fa.period);
        assert!(fa.partitioned >= fa.period / 4);
    }

    #[test]
    fn flapping_zero_period_does_not_divide_by_zero() {
        let flap = FlappingPartition {
            from: SimTime::ZERO,
            until: SimTime::from_ticks(10),
            period: 0,
            partitioned: 5,
            groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
        };
        // period clamps to 1 and partitioned clamps to the period, so the
        // flap degenerates to a permanent partition inside its window.
        assert!(flap.active(SimTime::from_ticks(3)));
    }

    #[test]
    fn link_override_is_directed_and_last_wins() {
        let cfg = NetworkConfig::default()
            .with_link_override(LinkOverride {
                from: ProcessId(0),
                to: ProcessId(1),
                drop_probability: Some(0.5),
                delay: None,
            })
            .with_link_override(LinkOverride {
                from: ProcessId(0),
                to: ProcessId(1),
                drop_probability: Some(0.9),
                delay: Some(DelayModel::Fixed(42)),
            });
        // Last registered override wins.
        assert_eq!(cfg.drop_probability_for(ProcessId(0), ProcessId(1)), 0.9);
        assert_eq!(
            cfg.delay_for(ProcessId(0), ProcessId(1)),
            &DelayModel::Fixed(42)
        );
        // The reverse direction falls back to the global knobs.
        assert_eq!(cfg.drop_probability_for(ProcessId(1), ProcessId(0)), 0.0);
        assert_eq!(cfg.delay_for(ProcessId(1), ProcessId(0)), &cfg.delay);
    }

    #[test]
    fn config_partition_blocks_includes_flapping() {
        let cfg = NetworkConfig::default().with_flapping(FlappingPartition {
            from: SimTime::ZERO,
            until: SimTime::from_ticks(100),
            period: 10,
            partitioned: 4,
            groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
        });
        assert!(cfg.partition_blocks(SimTime::from_ticks(2), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(6), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(100), ProcessId(0), ProcessId(1)));
    }

    /// A random gray-failure config: partitions, flaps (sometimes with
    /// isolated processes), and redundant link overrides (including
    /// repeated links, so last-wins and per-field fallback are covered).
    fn random_config(rng: &mut SplitMix64, n: usize) -> NetworkConfig {
        fn groups(rng: &mut SplitMix64, n: usize) -> Vec<Vec<ProcessId>> {
            let mut gs: Vec<Vec<ProcessId>> = vec![Vec::new(), Vec::new()];
            for i in 0..n {
                match rng.below(3) {
                    0 => gs[0].push(ProcessId(i)),
                    1 => gs[1].push(ProcessId(i)),
                    _ => {} // isolated
                }
            }
            gs
        }
        let mut cfg = NetworkConfig {
            drop_probability: rng.below(3) as f64 * 0.1,
            duplicate_probability: rng.below(2) as f64 * 0.2,
            ..NetworkConfig::default()
        };
        for _ in 0..rng.below(3) {
            let from = rng.below(200);
            cfg.partitions.push(PartitionWindow {
                from: SimTime::from_ticks(from),
                until: SimTime::from_ticks(from + rng.below(100)),
                groups: groups(rng, n),
            });
        }
        for _ in 0..rng.below(3) {
            cfg.flapping.push(FlappingPartition {
                from: SimTime::from_ticks(rng.below(100)),
                until: SimTime::from_ticks(100 + rng.below(200)),
                period: rng.below(30),
                partitioned: rng.below(30),
                groups: groups(rng, n),
            });
        }
        for _ in 0..rng.below(6) {
            cfg.link_overrides.push(LinkOverride {
                from: ProcessId(rng.below(n as u64) as usize),
                to: ProcessId(rng.below(n as u64) as usize),
                drop_probability: if rng.chance(0.5) { Some(0.4) } else { None },
                delay: if rng.chance(0.5) {
                    Some(DelayModel::Fixed(1 + rng.below(40)))
                } else {
                    None
                },
            });
        }
        cfg
    }

    #[test]
    fn fanout_planner_matches_per_link_config_lookups() {
        // The planner's batch-resolved state must agree with the three
        // per-message NetworkConfig lookups it replaces, for every
        // (tick, sender, recipient) triple, across random gray configs.
        for seed in 0..60u64 {
            let mut rng = SplitMix64::new(0xFA0 ^ seed);
            let n = 3 + rng.below(5) as usize;
            let cfg = random_config(&mut rng, n);
            let mut planner = FanoutPlanner::new(cfg.clone(), n);
            assert_eq!(planner.duplicate_probability(), cfg.duplicate_probability);
            for _ in 0..40 {
                let t = SimTime::from_ticks(rng.below(400));
                let from = ProcessId(rng.below(n as u64) as usize);
                planner.prepare(t, from);
                for to in (0..n).map(ProcessId) {
                    if to == from {
                        continue; // self-sends never reach routing
                    }
                    assert_eq!(
                        planner.blocked(to),
                        cfg.partition_blocks(t, from, to),
                        "seed {seed}: blocked({t:?}, {from:?}, {to:?}) diverged"
                    );
                    let link = planner.link(to);
                    assert_eq!(link.drop_probability, cfg.drop_probability_for(from, to));
                    assert_eq!(&link.delay, cfg.delay_for(from, to));
                }
            }
        }
    }

    #[test]
    fn config_partition_blocks() {
        let cfg = NetworkConfig {
            partitions: vec![PartitionWindow {
                from: SimTime::ZERO,
                until: SimTime::from_ticks(100),
                groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
            }],
            ..NetworkConfig::default()
        };
        assert!(cfg.partition_blocks(SimTime::from_ticks(1), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(100), ProcessId(0), ProcessId(1)));
        assert!(!cfg.partition_blocks(SimTime::from_ticks(1), ProcessId(0), ProcessId(0)));
    }
}
