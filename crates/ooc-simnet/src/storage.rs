//! Simulated stable storage with injectable storage faults.
//!
//! Each process owns a [`StableStore`]: an append-only log of key/value
//! [`StorageRecord`]s with a *synced watermark*. Handlers persist records
//! through [`Context::persist`](crate::Context::persist) and make them
//! durable with [`Context::sync_storage`](crate::Context::sync_storage),
//! exactly the way they send messages — the writes are buffered as
//! effects and applied by the engine after the handler returns, so the
//! store a handler reads through
//! [`Context::storage`](crate::Context::storage) reflects the state
//! *before* the current invocation's own writes.
//!
//! What survives a crash is decided by the process's [`StoragePolicy`]:
//!
//! * [`SyncAlways`](StoragePolicy::SyncAlways) — every write is
//!   implicitly synced; a crash loses nothing. This is the default and
//!   reproduces the pre-storage behavior where durability was free.
//! * [`LoseUnsynced`](StoragePolicy::LoseUnsynced) — the unsynced suffix
//!   of the log is discarded.
//! * [`TornLastWrite`](StoragePolicy::TornLastWrite) — the unsynced
//!   suffix survives *except* the last in-flight record, whose value is
//!   truncated to half its length (a torn write). Recovery code must
//!   treat a trailing record as potentially corrupt.
//! * [`Amnesia`](StoragePolicy::Amnesia) — the whole store is lost,
//!   synced or not. This models the crash-stop reading of the paper's
//!   §4.3 restart assumption: a restarted process is a fresh process.
//!
//! Crash losses are applied when the engine processes the `Crash` event;
//! `on_restart` then observes exactly the surviving records. Everything
//! is plain data ordered by append time, so runs remain a pure function
//! of (processes, config, seed) and storage-fault sweeps inherit the
//! byte-identity contract.

use crate::ProcessId;
use serde::{Deserialize, Serialize};

/// What a crash does to the unsynced (and, for `Amnesia`, synced)
/// contents of a process's [`StableStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum StoragePolicy {
    /// Every write is durable the moment it is applied; crashes lose
    /// nothing. The default.
    #[default]
    SyncAlways,
    /// A crash discards every record appended since the last sync.
    LoseUnsynced,
    /// A crash keeps the unsynced suffix except the last record, whose
    /// value is truncated to half its length — a torn write.
    TornLastWrite,
    /// A crash discards the entire store, synced records included.
    Amnesia,
}

impl StoragePolicy {
    /// All policies, in severity order (useful for sweep grids).
    pub const ALL: [StoragePolicy; 4] = [
        StoragePolicy::SyncAlways,
        StoragePolicy::LoseUnsynced,
        StoragePolicy::TornLastWrite,
        StoragePolicy::Amnesia,
    ];

    /// Stable machine name, used in artifact JSON and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            StoragePolicy::SyncAlways => "sync-always",
            StoragePolicy::LoseUnsynced => "lose-unsynced",
            StoragePolicy::TornLastWrite => "torn-last-write",
            StoragePolicy::Amnesia => "amnesia",
        }
    }

    /// Parses a [`name`](StoragePolicy::name) back into a policy.
    pub fn from_name(name: &str) -> Option<StoragePolicy> {
        StoragePolicy::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Whether a crash under this policy can lose records.
    pub fn is_lossy(self) -> bool {
        self != StoragePolicy::SyncAlways
    }
}

/// One persisted key/value record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageRecord {
    /// The record's key. Later records for the same key shadow earlier
    /// ones on lookup; recovery code scanning in reverse sees the newest
    /// surviving record first.
    pub key: String,
    /// The record's value bytes.
    pub value: Vec<u8>,
}

/// A process's simulated stable storage: an append-only record log with
/// a synced watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableStore {
    policy: StoragePolicy,
    records: Vec<StorageRecord>,
    /// Records `[0, synced)` survive any crash short of `Amnesia`.
    synced: usize,
}

impl StableStore {
    /// Creates an empty store under `policy`.
    ///
    /// The engine builds one per process; constructing one directly is
    /// useful for unit-testing recovery code against hand-built contents.
    pub fn new(policy: StoragePolicy) -> StableStore {
        StableStore {
            policy,
            records: Vec::new(),
            synced: 0,
        }
    }

    /// The store's crash policy.
    pub fn policy(&self) -> StoragePolicy {
        self.policy
    }

    /// All surviving records, in append order.
    pub fn records(&self) -> &[StorageRecord] {
        &self.records
    }

    /// The newest record for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&[u8]> {
        self.records
            .iter()
            .rev()
            .find(|r| r.key == key)
            .map(|r| r.value.as_slice())
    }

    /// Number of records currently in the store.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records past the synced watermark (at risk under a
    /// lossy policy).
    pub fn unsynced(&self) -> usize {
        self.records.len() - self.synced
    }

    /// Appends one record. Under [`StoragePolicy::SyncAlways`] the write
    /// is synced immediately. Processes persist through
    /// [`Context::persist`](crate::Context::persist); direct appends are
    /// for building fixture stores in recovery tests.
    pub fn append(&mut self, key: String, value: Vec<u8>) {
        self.records.push(StorageRecord { key, value });
        if self.policy == StoragePolicy::SyncAlways {
            self.synced = self.records.len();
        }
    }

    /// Moves the synced watermark to the end of the log; returns how many
    /// records became durable.
    pub fn sync(&mut self) -> usize {
        let newly = self.records.len() - self.synced;
        self.synced = self.records.len();
        newly
    }

    /// Applies the policy's crash semantics; returns how many records
    /// were lost (a torn record counts as one).
    pub(crate) fn apply_crash(&mut self) -> u64 {
        match self.policy {
            StoragePolicy::SyncAlways => 0,
            StoragePolicy::LoseUnsynced => {
                let lost = (self.records.len() - self.synced) as u64;
                self.records.truncate(self.synced);
                lost
            }
            StoragePolicy::TornLastWrite => {
                if self.records.len() > self.synced {
                    let last = self.records.last_mut().expect("unsynced suffix non-empty");
                    last.value.truncate(last.value.len() / 2);
                    self.synced = self.records.len();
                    1
                } else {
                    0
                }
            }
            StoragePolicy::Amnesia => {
                let lost = self.records.len() as u64;
                self.records.clear();
                self.synced = 0;
                lost
            }
        }
    }
}

/// Per-process storage policies for a run: a default plus overrides.
///
/// Like [`FaultPlan`](crate::FaultPlan), the storage plan is part of the
/// run's identity — re-running with the same plan and seed reproduces
/// the execution (and every storage loss) exactly.
///
/// ```
/// use ooc_simnet::{ProcessId, StorageFaultPlan, StoragePolicy};
/// let plan = StorageFaultPlan::uniform(StoragePolicy::SyncAlways)
///     .with_policy(ProcessId(2), StoragePolicy::Amnesia);
/// assert_eq!(plan.policy_for(ProcessId(2)), StoragePolicy::Amnesia);
/// assert_eq!(plan.policy_for(ProcessId(0)), StoragePolicy::SyncAlways);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageFaultPlan {
    default_policy: StoragePolicy,
    overrides: Vec<(ProcessId, StoragePolicy)>,
    /// Slow-disk injection: ticks a `sync()` stalls the issuing process.
    #[serde(default)]
    default_sync_latency: u64,
    #[serde(default)]
    latency_overrides: Vec<(ProcessId, u64)>,
}

impl StorageFaultPlan {
    /// The default plan: every process under
    /// [`StoragePolicy::SyncAlways`].
    pub fn new() -> StorageFaultPlan {
        StorageFaultPlan::default()
    }

    /// A plan applying `policy` to every process.
    pub fn uniform(policy: StoragePolicy) -> StorageFaultPlan {
        StorageFaultPlan {
            default_policy: policy,
            overrides: Vec::new(),
            default_sync_latency: 0,
            latency_overrides: Vec::new(),
        }
    }

    /// Overrides the policy for one process (the last override for a
    /// process wins).
    pub fn with_policy(mut self, p: ProcessId, policy: StoragePolicy) -> StorageFaultPlan {
        self.overrides.push((p, policy));
        self
    }

    /// The policy governing process `p`.
    pub fn policy_for(&self, p: ProcessId) -> StoragePolicy {
        self.overrides
            .iter()
            .rev()
            .find(|(q, _)| *q == p)
            .map(|(_, pol)| *pol)
            .unwrap_or(self.default_policy)
    }

    /// The plan-wide default policy.
    pub fn default_policy(&self) -> StoragePolicy {
        self.default_policy
    }

    /// The per-process overrides, in insertion order.
    pub fn overrides(&self) -> &[(ProcessId, StoragePolicy)] {
        &self.overrides
    }

    /// Whether any process runs under a lossy policy.
    pub fn is_lossy(&self) -> bool {
        self.default_policy.is_lossy() || self.overrides.iter().any(|(_, p)| p.is_lossy())
    }

    /// Slow-disk injection: every `sync()` stalls the issuing process for
    /// `ticks` simulated ticks (its subsequent sends and timers from that
    /// invocation land late). Applies to all processes without a
    /// per-process latency override.
    pub fn with_sync_latency(mut self, ticks: u64) -> StorageFaultPlan {
        self.default_sync_latency = ticks;
        self
    }

    /// Overrides the sync latency for one process (the last override for
    /// a process wins).
    pub fn with_sync_latency_for(mut self, p: ProcessId, ticks: u64) -> StorageFaultPlan {
        self.latency_overrides.push((p, ticks));
        self
    }

    /// The `sync()` stall in effect for process `p`, in ticks.
    pub fn sync_latency_for(&self, p: ProcessId) -> u64 {
        self.latency_overrides
            .iter()
            .rev()
            .find(|(q, _)| *q == p)
            .map(|&(_, t)| t)
            .unwrap_or(self.default_sync_latency)
    }

    /// The plan-wide default sync latency, in ticks.
    pub fn default_sync_latency(&self) -> u64 {
        self.default_sync_latency
    }

    /// Whether any process has a non-zero sync latency.
    pub fn has_sync_latency(&self) -> bool {
        self.default_sync_latency > 0 || self.latency_overrides.iter().any(|&(_, t)| t > 0)
    }

    /// Drops overrides referring to processes outside `0..n` (shrinking
    /// hook, mirroring [`FaultPlan::restricted_to`](crate::FaultPlan)).
    pub fn restricted_to(mut self, n: usize) -> StorageFaultPlan {
        self.overrides.retain(|(p, _)| p.0 < n);
        self.latency_overrides.retain(|(p, _)| p.0 < n);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(store: &StableStore) -> Vec<(&str, &[u8])> {
        store
            .records()
            .iter()
            .map(|r| (r.key.as_str(), r.value.as_slice()))
            .collect()
    }

    #[test]
    fn sync_always_survives_crash() {
        let mut s = StableStore::new(StoragePolicy::SyncAlways);
        s.append("a".into(), vec![1]);
        s.append("b".into(), vec![2]);
        assert_eq!(s.unsynced(), 0, "SyncAlways syncs every write");
        assert_eq!(s.apply_crash(), 0);
        assert_eq!(rec(&s), vec![("a", &[1u8][..]), ("b", &[2u8][..])]);
    }

    #[test]
    fn lose_unsynced_drops_suffix_keeps_synced_prefix() {
        let mut s = StableStore::new(StoragePolicy::LoseUnsynced);
        s.append("a".into(), vec![1]);
        assert_eq!(s.sync(), 1);
        s.append("b".into(), vec![2]);
        s.append("c".into(), vec![3]);
        assert_eq!(s.unsynced(), 2);
        assert_eq!(s.apply_crash(), 2);
        assert_eq!(rec(&s), vec![("a", &[1u8][..])]);
        assert_eq!(s.unsynced(), 0);
    }

    #[test]
    fn torn_last_write_truncates_only_final_record() {
        let mut s = StableStore::new(StoragePolicy::TornLastWrite);
        s.append("a".into(), vec![1, 2, 3, 4]);
        s.append("b".into(), vec![5, 6, 7, 8, 9]);
        assert_eq!(s.apply_crash(), 1);
        // "a" intact, "b" torn to ⌊5/2⌋ = 2 bytes.
        assert_eq!(rec(&s), vec![("a", &[1u8, 2, 3, 4][..]), ("b", &[5u8, 6][..])]);
        // A second crash with nothing unsynced loses nothing more.
        assert_eq!(s.apply_crash(), 0);
    }

    #[test]
    fn torn_last_write_spares_synced_records() {
        let mut s = StableStore::new(StoragePolicy::TornLastWrite);
        s.append("a".into(), vec![1, 2]);
        s.sync();
        assert_eq!(s.apply_crash(), 0);
        assert_eq!(rec(&s), vec![("a", &[1u8, 2][..])]);
    }

    #[test]
    fn amnesia_loses_everything_even_synced() {
        let mut s = StableStore::new(StoragePolicy::Amnesia);
        s.append("a".into(), vec![1]);
        s.sync();
        s.append("b".into(), vec![2]);
        assert_eq!(s.apply_crash(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn get_returns_newest_record_for_key() {
        let mut s = StableStore::new(StoragePolicy::SyncAlways);
        assert_eq!(s.get("x"), None);
        s.append("x".into(), vec![1]);
        s.append("y".into(), vec![2]);
        s.append("x".into(), vec![3]);
        assert_eq!(s.get("x"), Some(&[3u8][..]));
        assert_eq!(s.get("y"), Some(&[2u8][..]));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn policy_names_round_trip() {
        for p in StoragePolicy::ALL {
            assert_eq!(StoragePolicy::from_name(p.name()), Some(p));
        }
        assert_eq!(StoragePolicy::from_name("fsync-maybe"), None);
        assert_eq!(StoragePolicy::default(), StoragePolicy::SyncAlways);
    }

    #[test]
    fn plan_overrides_and_restriction() {
        let plan = StorageFaultPlan::uniform(StoragePolicy::LoseUnsynced)
            .with_policy(ProcessId(1), StoragePolicy::Amnesia)
            .with_policy(ProcessId(1), StoragePolicy::TornLastWrite)
            .with_policy(ProcessId(7), StoragePolicy::Amnesia);
        assert_eq!(plan.policy_for(ProcessId(0)), StoragePolicy::LoseUnsynced);
        assert_eq!(plan.policy_for(ProcessId(1)), StoragePolicy::TornLastWrite);
        assert!(plan.is_lossy());
        let small = plan.restricted_to(3);
        assert_eq!(small.overrides().len(), 2, "both p1 overrides survive");
        assert_eq!(small.policy_for(ProcessId(7)), StoragePolicy::LoseUnsynced);
        assert!(!StorageFaultPlan::new().is_lossy());
    }

    #[test]
    fn plan_sync_latency_overrides_and_restriction() {
        let plan = StorageFaultPlan::new()
            .with_sync_latency(5)
            .with_sync_latency_for(ProcessId(1), 20)
            .with_sync_latency_for(ProcessId(1), 30)
            .with_sync_latency_for(ProcessId(7), 50);
        assert_eq!(plan.sync_latency_for(ProcessId(0)), 5);
        assert_eq!(plan.sync_latency_for(ProcessId(1)), 30, "last override wins");
        assert_eq!(plan.default_sync_latency(), 5);
        assert!(plan.has_sync_latency());
        let small = plan.restricted_to(3);
        assert_eq!(small.sync_latency_for(ProcessId(7)), 5, "override dropped");
        assert!(!StorageFaultPlan::new().has_sync_latency());
        assert!(StorageFaultPlan::new()
            .with_sync_latency_for(ProcessId(0), 1)
            .has_sync_latency());
    }
}
