//! Event scheduling queues for the engine.
//!
//! The engine's scheduler contract is a strict total order on events:
//! pop by ascending `(at, seq)`, where `seq` is the globally monotone
//! counter assigned at scheduling time. Two implementations satisfy it:
//!
//! * [`TimingWheel`] — the default. A bucketed calendar queue keyed on
//!   tick: near-future events land in one of [`WHEEL_SLOTS`] FIFO
//!   buckets (push and pop are O(1) plus a word-wise occupancy-bitmap
//!   scan), far-future events wait in a sorted overflow level that is
//!   migrated into the buckets as the cursor advances.
//! * A plain `BinaryHeap`, retained as the reference implementation for
//!   A/B equivalence testing (`SchedulerKind::BinaryHeap`).
//!
//! ## Ordering invariants
//!
//! The wheel window is exactly `WHEEL_SLOTS` ticks wide, so a tick in
//! `[cursor, cursor + WHEEL_SLOTS)` maps *injectively* to a slot: one
//! bucket never mixes ticks. Same-tick FIFO order equals `seq` order
//! because (a) direct pushes happen in globally increasing `seq` order,
//! and (b) overflow entries for a tick are always older — scheduled
//! before that tick entered the window — so migrating them to the front
//! of the bucket *before* any later direct push keeps the bucket sorted.
//! That is why migration runs eagerly on **every** cursor advance: a
//! bucket append that happened before the overflow migration for the
//! same tick would break `seq` order.

use std::collections::{BTreeMap, VecDeque};

/// Number of buckets in the timing wheel (a power of two so the slot
/// index is a mask away from the tick).
pub(crate) const WHEEL_SLOTS: usize = 1024;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// A bucketed timing wheel over items ordered by `(at, seq)`.
///
/// `at` is an absolute tick; `seq` must be globally monotone across
/// pushes (the engine's scheduling counter). Pops return items in
/// strictly ascending `(at, seq)` order — byte-identical to what a
/// min-heap over `(at, seq)` would produce.
pub(crate) struct TimingWheel<T> {
    /// FIFO buckets; a bucket only ever holds events of a single tick
    /// (see the module docs for why the window makes this injective).
    slots: Vec<VecDeque<(u64, u64, T)>>,
    /// One bit per slot: set iff the slot is non-empty. Scanning 16
    /// words replaces the heap's `O(log n)` sift for finding the next
    /// event.
    occupied: [u64; BITMAP_WORDS],
    /// Far-future events (`at - cursor >= WHEEL_SLOTS`), keyed by
    /// `(at, seq)` — a flat sorted map, so a push is one node insert
    /// with no per-tick side allocation, and migration is a single
    /// `split_off` at the window boundary.
    overflow: BTreeMap<(u64, u64), T>,
    /// No unpopped event has a tick earlier than the cursor.
    cursor: u64,
    len: usize,
}

impl<T> TimingWheel<T> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BTreeMap::new(),
            cursor: 0,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `item` at tick `at` with scheduling sequence `seq`.
    ///
    /// `at` must not be earlier than the last popped tick (the engine
    /// never schedules into the past — the network's 1-tick causality
    /// floor guarantees it) and `seq` must exceed every previously
    /// pushed sequence.
    pub(crate) fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cursor, "scheduled into the past: {at} < {}", self.cursor);
        // `at - cursor` (not `cursor + WHEEL_SLOTS`) so the window test
        // cannot overflow near `u64::MAX`.
        if at.wrapping_sub(self.cursor) < WHEEL_SLOTS as u64 {
            let slot = (at & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == at));
            self.slots[slot].push_back((at, seq, item));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.insert((at, seq), item);
        }
        self.len += 1;
    }

    /// The tick of the earliest pending event, if any.
    pub(crate) fn next_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match self.scan_window() {
            Some(at) => Some(at),
            None => self.overflow.keys().next().map(|&(at, _)| at),
        }
    }

    /// Pops the earliest event as `(at, seq, item)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let at = match self.scan_window() {
            Some(at) => at,
            None => {
                self.overflow
                    .keys()
                    .next()
                    .expect("len > 0 with empty window implies overflow entries")
                    .0
            }
        };
        if at > self.cursor {
            self.advance_to(at);
        }
        let slot = (at & SLOT_MASK) as usize;
        let (t, seq, item) = self.slots[slot]
            .pop_front()
            .expect("scanned slot must be non-empty");
        debug_assert_eq!(t, at);
        if self.slots[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.len -= 1;
        Some((t, seq, item))
    }

    /// Moves the cursor forward to `at` and eagerly migrates every
    /// overflow entry that just entered the window into its bucket.
    /// Eagerness is load-bearing for `seq` order — see the module docs.
    fn advance_to(&mut self, at: u64) {
        self.cursor = at;
        let in_window = match self.cursor.checked_add(WHEEL_SLOTS as u64) {
            // One cut at the window boundary: everything below it moves.
            Some(end) => {
                let rest = self.overflow.split_off(&(end, 0));
                std::mem::replace(&mut self.overflow, rest)
            }
            // The window reaches the end of time: everything moves.
            None => std::mem::take(&mut self.overflow),
        };
        // `(at, seq)` iteration order means each tick's entries arrive in
        // `seq` order, ahead of any later direct push for that tick; each
        // in-window tick maps to its own (empty — a resident tick with
        // the same residue would have to equal it) bucket.
        for ((tick, seq), item) in in_window {
            let slot = (tick & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == tick));
            self.slots[slot].push_back((tick, seq, item));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        }
    }

    /// Scans the occupancy bitmap for the earliest non-empty bucket in
    /// the window, returning its tick. Walks word-wise from the cursor's
    /// slot, wrapping once around the wheel, and stops at the **first**
    /// set bit — slots in wrapped order are exactly ticks in ascending
    /// order, so no distance comparison is needed.
    fn scan_window(&self) -> Option<u64> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);
        // One extra iteration re-visits the start word for the bits below
        // `start_bit` (ticks that wrapped past the end of the wheel).
        for i in 0..=BITMAP_WORDS {
            let w = (start_word + i) % BITMAP_WORDS;
            let mut word = self.occupied[w];
            if i == 0 {
                word &= !0u64 << start_bit;
            } else if i == BITMAP_WORDS {
                word &= (1u64 << start_bit) - 1;
            }
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) as u64 & SLOT_MASK;
                return Some(self.cursor + dist);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference: a min-heap over `(at, seq)`.
    fn drain_both(pushes: &[(u64, u64)]) {
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for &(at, seq) in pushes {
            wheel.push(at, seq, ());
            heap.push(Reverse((at, seq)));
        }
        while let Some((at, seq, ())) = wheel.pop() {
            popped.push((at, seq));
        }
        let mut expected = Vec::new();
        while let Some(Reverse(p)) = heap.pop() {
            expected.push(p);
        }
        assert_eq!(popped, expected);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_tick_pops_in_seq_order() {
        drain_both(&[(5, 0), (5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn window_and_overflow_interleave() {
        // Ticks both inside and far beyond the first window, pushed in
        // seq order but wild tick order.
        drain_both(&[
            (10, 0),
            (2_000_000, 1),
            (3, 2),
            (1_500, 3),
            (2_000_000, 4),
            (1_023, 5),
            (1_024, 6),
            (3, 7),
        ]);
    }

    #[test]
    fn overflow_migration_preserves_seq_before_later_direct_pushes() {
        // seq 0 goes to overflow (tick 5000 far from cursor 0). After
        // the wheel advances past 4000, tick 5000 is in-window; a later
        // direct push (seq 2) for the same tick must pop *after* it.
        let mut wheel = TimingWheel::new();
        wheel.push(5_000, 0, "overflow-early");
        wheel.push(4_500, 1, "advance-trigger");
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((4_500, 1)));
        wheel.push(5_000, 2, "direct-late");
        assert_eq!(wheel.pop(), Some((5_000, 0, "overflow-early")));
        assert_eq!(wheel.pop(), Some((5_000, 2, "direct-late")));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn push_at_cursor_tick_is_allowed() {
        // Zero-delay self-sends can schedule at the tick being popped.
        let mut wheel = TimingWheel::new();
        wheel.push(7, 0, ());
        let (at, _, _) = wheel.pop().unwrap();
        assert_eq!(at, 7);
        wheel.push(7, 1, ());
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((7, 1)));
    }

    #[test]
    fn next_time_matches_pop_and_does_not_consume() {
        let mut wheel = TimingWheel::new();
        wheel.push(90_000, 0, ());
        wheel.push(12, 1, ());
        assert_eq!(wheel.next_time(), Some(12));
        assert_eq!(wheel.next_time(), Some(12), "peek must not consume");
        assert_eq!(wheel.pop().map(|(at, _, _)| at), Some(12));
        assert_eq!(wheel.next_time(), Some(90_000));
    }

    #[test]
    fn ticks_near_u64_max_do_not_overflow_the_window_test() {
        let mut wheel = TimingWheel::new();
        wheel.push(1, 0, ());
        wheel.push(u64::MAX, 1, ());
        wheel.push(u64::MAX - 1, 2, ());
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((1, 0)));
        assert_eq!(
            wheel.pop().map(|(at, seq, _)| (at, seq)),
            Some((u64::MAX - 1, 2))
        );
        assert_eq!(
            wheel.pop().map(|(at, seq, _)| (at, seq)),
            Some((u64::MAX, 1))
        );
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn randomized_schedules_match_heap_order() {
        // Proptest-style: mixed near/far ticks, same-tick bursts, and
        // interleaved pop/push phases, across many seeds.
        for seed in 0..200u64 {
            let mut rng = SplitMix64::new(seed);
            let mut pushes = Vec::new();
            let mut now = 0u64;
            for seq in 0..300u64 {
                // Mostly near-future, sometimes deep overflow, often the
                // exact same tick as a previous push (burst).
                let at = match rng.below(10) {
                    0..=5 => now + rng.below(64),
                    6..=7 => now + rng.below(WHEEL_SLOTS as u64 * 3),
                    8 => now + WHEEL_SLOTS as u64 + rng.below(1 << 20),
                    _ => pushes
                        .last()
                        .map(|&(at, _)| at)
                        .unwrap_or(now)
                        .max(now),
                };
                pushes.push((at, seq));
                // Occasionally advance "now" to emulate popping progress.
                if rng.chance(0.1) {
                    now += rng.below(200);
                }
            }
            // Clamp: the engine never schedules into the past relative
            // to the pop cursor; emulate by sorting the "now" floor in.
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut floor = 0u64;
            let mut out_wheel = Vec::new();
            let mut out_heap = Vec::new();
            for (i, &(at, seq)) in pushes.iter().enumerate() {
                let at = at.max(floor);
                wheel.push(at, seq, ());
                heap.push(Reverse((at, seq)));
                // Interleave: pop a couple of events mid-stream.
                if i % 7 == 6 {
                    for _ in 0..2 {
                        let w = wheel.pop().map(|(at, seq, ())| (at, seq));
                        let h = heap.pop().map(|Reverse(p)| p);
                        assert_eq!(w, h, "seed {seed} diverged mid-stream");
                        if let Some((at, _)) = w {
                            floor = at;
                            out_wheel.push(w.unwrap());
                            out_heap.push(h.unwrap());
                        }
                    }
                }
            }
            while let Some((at, seq, ())) = wheel.pop() {
                out_wheel.push((at, seq));
            }
            while let Some(Reverse(p)) = heap.pop() {
                out_heap.push(p);
            }
            assert_eq!(out_wheel, out_heap, "seed {seed} diverged");
        }
    }
}
