//! Event scheduling queues for the engine.
//!
//! The engine's scheduler contract is a strict total order on events:
//! pop by ascending `(at, seq)`, where `seq` is the globally monotone
//! counter assigned at scheduling time. Two implementations satisfy it:
//!
//! * [`TimingWheel`] — the default. A bucketed calendar queue keyed on
//!   tick: near-future events land in one of [`WHEEL_SLOTS`] FIFO
//!   buckets (push and pop are O(1) plus a word-wise occupancy-bitmap
//!   scan), far-future events wait in a sorted overflow level that is
//!   migrated into the buckets as the cursor advances.
//! * A plain `BinaryHeap`, retained as the reference implementation for
//!   A/B equivalence testing (`SchedulerKind::BinaryHeap`).
//!
//! ## Ordering invariants
//!
//! The wheel window is exactly `WHEEL_SLOTS` ticks wide, so a tick in
//! `[cursor, cursor + WHEEL_SLOTS)` maps *injectively* to a slot: one
//! bucket never mixes ticks. Same-tick FIFO order equals `seq` order
//! because (a) direct pushes happen in globally increasing `seq` order,
//! and (b) overflow entries for a tick are always older — scheduled
//! before that tick entered the window — so migrating them to the front
//! of the bucket *before* any later direct push keeps the bucket sorted.
//! That is why migration runs eagerly on **every** cursor advance: a
//! bucket append that happened before the overflow migration for the
//! same tick would break `seq` order.

use std::collections::{BTreeMap, VecDeque};

/// Number of buckets in the timing wheel (a power of two so the slot
/// index is a mask away from the tick).
pub(crate) const WHEEL_SLOTS: usize = 1024;

const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// One planned insertion for [`TimingWheel::push_batch`]: the batched
/// fan-out path accumulates these in a reusable scratch `Vec` while it
/// walks a broadcast's recipients, then hands the whole batch to the
/// queue in one call.
pub(crate) struct PlannedEvent<T> {
    /// Absolute delivery tick.
    pub(crate) at: u64,
    /// Globally monotone scheduling sequence.
    pub(crate) seq: u64,
    pub(crate) item: T,
}

/// A bucketed timing wheel over items ordered by `(at, seq)`.
///
/// `at` is an absolute tick; `seq` must be globally monotone across
/// pushes (the engine's scheduling counter). Pops return items in
/// strictly ascending `(at, seq)` order — byte-identical to what a
/// min-heap over `(at, seq)` would produce.
pub(crate) struct TimingWheel<T> {
    /// FIFO buckets; a bucket only ever holds events of a single tick
    /// (see the module docs for why the window makes this injective).
    slots: Vec<VecDeque<(u64, u64, T)>>,
    /// One bit per slot: set iff the slot is non-empty. Scanning 16
    /// words replaces the heap's `O(log n)` sift for finding the next
    /// event.
    occupied: [u64; BITMAP_WORDS],
    /// Far-future events (`at - cursor >= WHEEL_SLOTS`), keyed by
    /// `(at, seq)` — a flat sorted map, so a push is one node insert
    /// with no per-tick side allocation, and migration is a single
    /// `split_off` at the window boundary.
    overflow: BTreeMap<(u64, u64), T>,
    /// No unpopped event has a tick earlier than the cursor.
    cursor: u64,
    len: usize,
}

impl<T> TimingWheel<T> {
    pub(crate) fn new() -> Self {
        TimingWheel {
            slots: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BTreeMap::new(),
            cursor: 0,
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Schedules `item` at tick `at` with scheduling sequence `seq`.
    ///
    /// `at` must not be earlier than the last popped tick (the engine
    /// never schedules into the past — the network's 1-tick causality
    /// floor guarantees it) and `seq` must exceed every previously
    /// pushed sequence.
    pub(crate) fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cursor, "scheduled into the past: {at} < {}", self.cursor);
        // `at - cursor` (not `cursor + WHEEL_SLOTS`) so the window test
        // cannot overflow near `u64::MAX`.
        if at.wrapping_sub(self.cursor) < WHEEL_SLOTS as u64 {
            let slot = (at & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == at));
            self.slots[slot].push_back((at, seq, item));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.insert((at, seq), item);
        }
        self.len += 1;
    }

    /// Bulk insert of a planned fan-out batch.
    ///
    /// Equivalent to calling [`TimingWheel::push`] once per entry, in
    /// order, with the window boundary load hoisted out of the loop and
    /// the length updated once at the end. (An earlier version also
    /// accumulated occupancy-bitmap words locally and merged them in a
    /// final pass; for realistic broadcast batches — a handful of
    /// entries — zeroing and merging 16 words costs more than one
    /// direct OR per entry, so the bitmap is updated in place.)
    ///
    /// The batch must satisfy the same contract as `push` — every `at`
    /// is `>= cursor` and `seq` values are strictly increasing across
    /// the batch (and exceed all previously pushed sequences). Because
    /// entries arrive in `seq` order, appending them in iteration order
    /// keeps every destination bucket sorted, and since `push_batch`
    /// never moves the cursor, the eager-migration invariant (overflow
    /// entries migrate before any later direct push for their tick) is
    /// trivially preserved.
    pub(crate) fn push_batch(&mut self, batch: std::vec::Drain<'_, PlannedEvent<T>>) {
        let cursor = self.cursor;
        let mut added = 0usize;
        for PlannedEvent { at, seq, item } in batch {
            debug_assert!(at >= cursor, "scheduled into the past: {at} < {cursor}");
            if at.wrapping_sub(cursor) < WHEEL_SLOTS as u64 {
                let slot = (at & SLOT_MASK) as usize;
                debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == at));
                self.slots[slot].push_back((at, seq, item));
                self.occupied[slot / 64] |= 1 << (slot % 64);
            } else {
                self.overflow.insert((at, seq), item);
            }
            added += 1;
        }
        self.len += added;
    }

    /// Bulk insert of a same-tick run: every entry shares the delivery
    /// tick `at` and carries `(seq, item)` with `seq` strictly
    /// increasing across the run.
    ///
    /// Equivalent to calling [`TimingWheel::push`] once per entry in
    /// order, but the window test, slot resolution and occupancy-bitmap
    /// update happen once for the whole run, and the destination bucket
    /// grows with a single capacity reservation instead of per-entry
    /// amortized doubling. This is the broadcast hot path: a uniform
    /// fan-out lands every non-self recipient on one tick.
    ///
    /// Same contract as `push`: `at >= cursor`, and the run's `seq`
    /// values exceed all previously pushed sequences. A seq-increasing
    /// append keeps the bucket FIFO-sorted, and the cursor never moves,
    /// so the eager-migration invariant is untouched.
    pub(crate) fn push_run(&mut self, at: u64, run: std::vec::Drain<'_, (u64, T)>) {
        let n = run.len();
        self.extend_run(at, n, run);
    }

    /// Iterator-driven form of [`TimingWheel::push_run`]: the caller
    /// passes the run length up front (the iterator must yield exactly
    /// `n` entries) so the broadcast hot path can stream deliveries
    /// straight out of a sender's outbox into the destination bucket,
    /// with no intermediate scratch buffer. Same ordering contract as
    /// `push_run`.
    pub(crate) fn extend_run<I>(&mut self, at: u64, n: usize, run: I)
    where
        I: Iterator<Item = (u64, T)>,
    {
        if n == 0 {
            return;
        }
        debug_assert!(at >= self.cursor, "scheduled into the past: {at} < {}", self.cursor);
        if at.wrapping_sub(self.cursor) < WHEEL_SLOTS as u64 {
            let slot = (at & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == at));
            let bucket = &mut self.slots[slot];
            bucket.reserve(n);
            bucket.extend(run.map(|(seq, item)| (at, seq, item)));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.extend(run.map(|(seq, item)| ((at, seq), item)));
        }
        self.len += n;
    }

    /// The tick of the earliest pending event, if any.
    pub(crate) fn next_time(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        match self.scan_window() {
            Some(at) => Some(at),
            None => self.overflow.keys().next().map(|&(at, _)| at),
        }
    }

    /// Pops the earliest event as `(at, seq, item)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, u64, T)> {
        if self.len == 0 {
            return None;
        }
        let at = match self.scan_window() {
            Some(at) => at,
            None => {
                self.overflow
                    .keys()
                    .next()
                    .expect("len > 0 with empty window implies overflow entries")
                    .0
            }
        };
        if at > self.cursor {
            self.advance_to(at);
        }
        let slot = (at & SLOT_MASK) as usize;
        let (t, seq, item) = self.slots[slot]
            .pop_front()
            .expect("scanned slot must be non-empty");
        debug_assert_eq!(t, at);
        if self.slots[slot].is_empty() {
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.len -= 1;
        Some((t, seq, item))
    }

    /// Moves the cursor forward to `at` and eagerly migrates every
    /// overflow entry that just entered the window into its bucket.
    /// Eagerness is load-bearing for `seq` order — see the module docs.
    fn advance_to(&mut self, at: u64) {
        self.cursor = at;
        let in_window = match self.cursor.checked_add(WHEEL_SLOTS as u64) {
            // One cut at the window boundary: everything below it moves.
            Some(end) => {
                let rest = self.overflow.split_off(&(end, 0));
                std::mem::replace(&mut self.overflow, rest)
            }
            // The window reaches the end of time: everything moves.
            None => std::mem::take(&mut self.overflow),
        };
        // `(at, seq)` iteration order means each tick's entries arrive in
        // `seq` order, ahead of any later direct push for that tick; each
        // in-window tick maps to its own (empty — a resident tick with
        // the same residue would have to equal it) bucket.
        for ((tick, seq), item) in in_window {
            let slot = (tick & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|&(t, _, _)| t == tick));
            self.slots[slot].push_back((tick, seq, item));
            self.occupied[slot / 64] |= 1 << (slot % 64);
        }
    }

    /// Scans the occupancy bitmap for the earliest non-empty bucket in
    /// the window, returning its tick. Walks word-wise from the cursor's
    /// slot, wrapping once around the wheel, and stops at the **first**
    /// set bit — slots in wrapped order are exactly ticks in ascending
    /// order, so no distance comparison is needed.
    fn scan_window(&self) -> Option<u64> {
        let start = (self.cursor & SLOT_MASK) as usize;
        let (start_word, start_bit) = (start / 64, start % 64);
        // One extra iteration re-visits the start word for the bits below
        // `start_bit` (ticks that wrapped past the end of the wheel).
        for i in 0..=BITMAP_WORDS {
            let w = (start_word + i) % BITMAP_WORDS;
            let mut word = self.occupied[w];
            if i == 0 {
                word &= !0u64 << start_bit;
            } else if i == BITMAP_WORDS {
                word &= (1u64 << start_bit) - 1;
            }
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                let dist = (slot + WHEEL_SLOTS - start) as u64 & SLOT_MASK;
                return Some(self.cursor + dist);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Reference: a min-heap over `(at, seq)`.
    fn drain_both(pushes: &[(u64, u64)]) {
        let mut wheel = TimingWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for &(at, seq) in pushes {
            wheel.push(at, seq, ());
            heap.push(Reverse((at, seq)));
        }
        while let Some((at, seq, ())) = wheel.pop() {
            popped.push((at, seq));
        }
        let mut expected = Vec::new();
        while let Some(Reverse(p)) = heap.pop() {
            expected.push(p);
        }
        assert_eq!(popped, expected);
        assert_eq!(wheel.len(), 0);
    }

    #[test]
    fn empty_wheel_pops_nothing() {
        let mut w: TimingWheel<()> = TimingWheel::new();
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
        assert!(w.pop().is_none());
    }

    #[test]
    fn same_tick_pops_in_seq_order() {
        drain_both(&[(5, 0), (5, 1), (5, 2), (5, 3)]);
    }

    #[test]
    fn window_and_overflow_interleave() {
        // Ticks both inside and far beyond the first window, pushed in
        // seq order but wild tick order.
        drain_both(&[
            (10, 0),
            (2_000_000, 1),
            (3, 2),
            (1_500, 3),
            (2_000_000, 4),
            (1_023, 5),
            (1_024, 6),
            (3, 7),
        ]);
    }

    #[test]
    fn overflow_migration_preserves_seq_before_later_direct_pushes() {
        // seq 0 goes to overflow (tick 5000 far from cursor 0). After
        // the wheel advances past 4000, tick 5000 is in-window; a later
        // direct push (seq 2) for the same tick must pop *after* it.
        let mut wheel = TimingWheel::new();
        wheel.push(5_000, 0, "overflow-early");
        wheel.push(4_500, 1, "advance-trigger");
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((4_500, 1)));
        wheel.push(5_000, 2, "direct-late");
        assert_eq!(wheel.pop(), Some((5_000, 0, "overflow-early")));
        assert_eq!(wheel.pop(), Some((5_000, 2, "direct-late")));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn push_at_cursor_tick_is_allowed() {
        // Zero-delay self-sends can schedule at the tick being popped.
        let mut wheel = TimingWheel::new();
        wheel.push(7, 0, ());
        let (at, _, _) = wheel.pop().unwrap();
        assert_eq!(at, 7);
        wheel.push(7, 1, ());
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((7, 1)));
    }

    #[test]
    fn next_time_matches_pop_and_does_not_consume() {
        let mut wheel = TimingWheel::new();
        wheel.push(90_000, 0, ());
        wheel.push(12, 1, ());
        assert_eq!(wheel.next_time(), Some(12));
        assert_eq!(wheel.next_time(), Some(12), "peek must not consume");
        assert_eq!(wheel.pop().map(|(at, _, _)| at), Some(12));
        assert_eq!(wheel.next_time(), Some(90_000));
    }

    #[test]
    fn ticks_near_u64_max_do_not_overflow_the_window_test() {
        let mut wheel = TimingWheel::new();
        wheel.push(1, 0, ());
        wheel.push(u64::MAX, 1, ());
        wheel.push(u64::MAX - 1, 2, ());
        assert_eq!(wheel.pop().map(|(at, seq, _)| (at, seq)), Some((1, 0)));
        assert_eq!(
            wheel.pop().map(|(at, seq, _)| (at, seq)),
            Some((u64::MAX - 1, 2))
        );
        assert_eq!(
            wheel.pop().map(|(at, seq, _)| (at, seq)),
            Some((u64::MAX, 1))
        );
        assert!(wheel.pop().is_none());
    }

    fn batch(entries: &[(u64, u64)]) -> Vec<PlannedEvent<()>> {
        entries
            .iter()
            .map(|&(at, seq)| PlannedEvent { at, seq, item: () })
            .collect()
    }

    fn drain(wheel: &mut TimingWheel<()>) -> Vec<(u64, u64)> {
        std::iter::from_fn(|| wheel.pop().map(|(at, seq, ())| (at, seq))).collect()
    }

    #[test]
    fn push_batch_empty_is_a_no_op() {
        let mut wheel: TimingWheel<()> = TimingWheel::new();
        wheel.push_batch(batch(&[]).drain(..));
        assert_eq!(wheel.len(), 0);
        assert_eq!(wheel.next_time(), None);
    }

    #[test]
    fn push_batch_spanning_slot_wrap_pops_in_order() {
        // Advance the cursor near the end of the wheel so the window
        // wraps: in-window ticks straddle the slot-index wraparound.
        let mut wheel = TimingWheel::new();
        wheel.push(WHEEL_SLOTS as u64 - 2, 0, ());
        assert_eq!(wheel.pop().map(|(at, _, _)| at), Some(WHEEL_SLOTS as u64 - 2));
        // Cursor is now WHEEL_SLOTS - 2; slots for the batch below map to
        // indices {1022, 1023, 0, 1, ...} — both sides of the wrap.
        let at0 = WHEEL_SLOTS as u64 - 2;
        let mut b = batch(&[(at0, 1), (at0 + 1, 2), (at0 + 2, 3), (at0 + 5, 4), (at0, 5)]);
        wheel.push_batch(b.drain(..));
        assert_eq!(wheel.len(), 5);
        assert_eq!(
            drain(&mut wheel),
            vec![(at0, 1), (at0, 5), (at0 + 1, 2), (at0 + 2, 3), (at0 + 5, 4)]
        );
    }

    #[test]
    fn push_batch_entirely_in_overflow_migrates_like_push() {
        let far = WHEEL_SLOTS as u64 * 5;
        let mut wheel = TimingWheel::new();
        let mut b = batch(&[(far, 0), (far + 3, 1), (far, 2)]);
        wheel.push_batch(b.drain(..));
        assert_eq!(wheel.len(), 3);
        assert_eq!(wheel.next_time(), Some(far));
        assert_eq!(drain(&mut wheel), vec![(far, 0), (far, 2), (far + 3, 1)]);
    }

    #[test]
    fn push_batch_interleaved_with_single_pushes_keeps_fifo_order() {
        // (at, seq) FIFO must hold across batch/single boundaries: same
        // ticks fed through both entry points pop strictly by seq.
        let mut wheel = TimingWheel::new();
        wheel.push(10, 0, ());
        let mut b = batch(&[(10, 1), (12, 2), (2_000_000, 3)]);
        wheel.push_batch(b.drain(..));
        wheel.push(10, 4, ());
        let mut b2 = batch(&[(10, 5), (12, 6)]);
        wheel.push_batch(b2.drain(..));
        assert_eq!(
            drain(&mut wheel),
            vec![(10, 0), (10, 1), (10, 4), (10, 5), (12, 2), (12, 6), (2_000_000, 3)]
        );
    }

    #[test]
    fn push_run_empty_is_a_no_op_and_sets_no_occupancy() {
        let mut wheel: TimingWheel<()> = TimingWheel::new();
        let mut run: Vec<(u64, ())> = Vec::new();
        wheel.push_run(42, run.drain(..));
        assert_eq!(wheel.len(), 0);
        // An empty run must not mark slot 42 occupied: a stale bit would
        // make the bitmap scan report a phantom earliest event.
        assert_eq!(wheel.next_time(), None);
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn push_run_matches_per_entry_pushes() {
        let mut wheel = TimingWheel::new();
        let mut reference = TimingWheel::new();
        let mut run = vec![(0u64, ()), (1, ()), (2, ())];
        for &(seq, item) in &run {
            reference.push(9, seq, item);
        }
        wheel.push_run(9, run.drain(..));
        assert_eq!(wheel.len(), 3);
        assert_eq!(drain(&mut wheel), drain(&mut reference));
    }

    #[test]
    fn push_run_in_overflow_migrates_like_push() {
        let far = WHEEL_SLOTS as u64 * 7 + 3;
        let mut wheel = TimingWheel::new();
        let mut run = vec![(0u64, ()), (1, ()), (2, ())];
        wheel.push_run(far, run.drain(..));
        wheel.push(10, 3, ());
        assert_eq!(wheel.len(), 4);
        assert_eq!(
            drain(&mut wheel),
            vec![(10, 3), (far, 0), (far, 1), (far, 2)]
        );
    }

    #[test]
    fn push_run_interleaves_with_push_and_push_batch_by_seq() {
        // All three entry points feeding the same tick must pop strictly
        // by seq: runs and batches are seq-increasing subsequences of
        // one global send order.
        let mut wheel = TimingWheel::new();
        wheel.push(20, 0, ());
        let mut run = vec![(1u64, ()), (2, ())];
        wheel.push_run(20, run.drain(..));
        let mut b = batch(&[(20, 3), (25, 4)]);
        wheel.push_batch(b.drain(..));
        let mut run2 = vec![(5u64, ())];
        wheel.push_run(20, run2.drain(..));
        assert_eq!(
            drain(&mut wheel),
            vec![(20, 0), (20, 1), (20, 2), (20, 3), (20, 5), (25, 4)]
        );
    }

    #[test]
    fn randomized_runs_match_heap_order() {
        // Same-tick runs of random length at mixed near/far ticks,
        // interleaved with pops, against the min-heap reference.
        for seed in 0..100u64 {
            let mut rng = SplitMix64::new(seed);
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut run: Vec<(u64, ())> = Vec::new();
            let mut floor = 0u64;
            let mut seq = 0u64;
            for _round in 0..60 {
                let at = floor
                    + match rng.below(10) {
                        0..=6 => rng.below(64),
                        7..=8 => rng.below(WHEEL_SLOTS as u64 * 2),
                        _ => WHEEL_SLOTS as u64 + rng.below(1 << 16),
                    };
                for _ in 0..rng.below(8) {
                    run.push((seq, ()));
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                wheel.push_run(at, run.drain(..));
                for _ in 0..rng.below(4) {
                    let w = wheel.pop().map(|(at, seq, ())| (at, seq));
                    let h = heap.pop().map(|Reverse(p)| p);
                    assert_eq!(w, h, "seed {seed} diverged");
                    if let Some((at, _)) = w {
                        floor = at;
                    }
                }
            }
            while let Some((at, s, ())) = wheel.pop() {
                assert_eq!(heap.pop().map(|Reverse(p)| p), Some((at, s)));
            }
            assert!(heap.pop().is_none(), "seed {seed}: heap had extra events");
        }
    }

    #[test]
    fn randomized_batches_match_heap_order() {
        // Mirror of `randomized_schedules_match_heap_order`, but feeding
        // the wheel in chunks through `push_batch`.
        for seed in 0..100u64 {
            let mut rng = SplitMix64::new(seed);
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut scratch: Vec<PlannedEvent<()>> = Vec::new();
            let mut floor = 0u64;
            let mut seq = 0u64;
            for _round in 0..40 {
                let chunk = rng.below(6);
                for _ in 0..chunk {
                    let at = floor
                        + match rng.below(10) {
                            0..=6 => rng.below(64),
                            7..=8 => rng.below(WHEEL_SLOTS as u64 * 2),
                            _ => WHEEL_SLOTS as u64 + rng.below(1 << 16),
                        };
                    scratch.push(PlannedEvent { at, seq, item: () });
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                wheel.push_batch(scratch.drain(..));
                assert!(scratch.is_empty());
                for _ in 0..rng.below(4) {
                    let w = wheel.pop().map(|(at, seq, ())| (at, seq));
                    let h = heap.pop().map(|Reverse(p)| p);
                    assert_eq!(w, h, "seed {seed} diverged");
                    if let Some((at, _)) = w {
                        floor = at;
                    }
                }
            }
            while let Some((at, s, ())) = wheel.pop() {
                assert_eq!(heap.pop().map(|Reverse(p)| p), Some((at, s)));
            }
            assert!(heap.pop().is_none(), "seed {seed}: heap had extra events");
        }
    }

    #[test]
    fn randomized_schedules_match_heap_order() {
        // Proptest-style: mixed near/far ticks, same-tick bursts, and
        // interleaved pop/push phases, across many seeds.
        for seed in 0..200u64 {
            let mut rng = SplitMix64::new(seed);
            let mut pushes = Vec::new();
            let mut now = 0u64;
            for seq in 0..300u64 {
                // Mostly near-future, sometimes deep overflow, often the
                // exact same tick as a previous push (burst).
                let at = match rng.below(10) {
                    0..=5 => now + rng.below(64),
                    6..=7 => now + rng.below(WHEEL_SLOTS as u64 * 3),
                    8 => now + WHEEL_SLOTS as u64 + rng.below(1 << 20),
                    _ => pushes
                        .last()
                        .map(|&(at, _)| at)
                        .unwrap_or(now)
                        .max(now),
                };
                pushes.push((at, seq));
                // Occasionally advance "now" to emulate popping progress.
                if rng.chance(0.1) {
                    now += rng.below(200);
                }
            }
            // Clamp: the engine never schedules into the past relative
            // to the pop cursor; emulate by sorting the "now" floor in.
            let mut wheel = TimingWheel::new();
            let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
            let mut floor = 0u64;
            let mut out_wheel = Vec::new();
            let mut out_heap = Vec::new();
            for (i, &(at, seq)) in pushes.iter().enumerate() {
                let at = at.max(floor);
                wheel.push(at, seq, ());
                heap.push(Reverse((at, seq)));
                // Interleave: pop a couple of events mid-stream.
                if i % 7 == 6 {
                    for _ in 0..2 {
                        let w = wheel.pop().map(|(at, seq, ())| (at, seq));
                        let h = heap.pop().map(|Reverse(p)| p);
                        assert_eq!(w, h, "seed {seed} diverged mid-stream");
                        if let Some((at, _)) = w {
                            floor = at;
                            out_wheel.push(w.unwrap());
                            out_heap.push(h.unwrap());
                        }
                    }
                }
            }
            while let Some((at, seq, ())) = wheel.pop() {
                out_wheel.push((at, seq));
            }
            while let Some(Reverse(p)) = heap.pop() {
                out_heap.push(p);
            }
            assert_eq!(out_wheel, out_heap, "seed {seed} diverged");
        }
    }
}
