//! Simulated time.
//!
//! Time is counted in abstract *ticks*. Algorithms should only ever compare
//! durations, never interpret ticks as wall-clock units. Newtypes keep
//! instants and durations from being mixed up ([`SimTime`] vs
//! [`SimDuration`]).

use crate::ProcessId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant of simulated time, in ticks since the start of the run.
///
/// ```
/// use ooc_simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw tick count.
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw tick count.
    pub fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by `percent / 100`, rounding to the nearest
    /// tick. A non-zero duration never scales to zero (a drifting clock can
    /// slow a timer arbitrarily but cannot make it instantaneous), and the
    /// zero duration stays zero.
    pub fn scale_percent(self, percent: u32) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::ZERO;
        }
        let scaled = (self.0 as u128 * percent as u128 + 50) / 100;
        SimDuration(u64::try_from(scaled).unwrap_or(u64::MAX).max(1))
    }
}

/// Per-process clock drift/skew: each process's timer durations are scaled
/// by a rate expressed in percent of nominal. A rate of 100 is a perfect
/// clock; 150 is a clock running 50 % slow (its timers fire 1.5× later in
/// simulated time); 50 is a clock running fast (timers fire early).
///
/// Drift applies at **timer arming** — when the engine converts a
/// [`Context::set_timer`](crate::Context::set_timer) duration into an
/// absolute firing instant — so protocol code keeps reasoning in its own
/// local units and never observes its own skew, exactly as a real process
/// cannot read its own oscillator error.
///
/// ```
/// use ooc_simnet::{ClockModel, ProcessId, SimDuration};
/// let clocks = ClockModel::nominal().with_rate(ProcessId(1), 150);
/// let d = SimDuration::from_ticks(10);
/// assert_eq!(clocks.scale(ProcessId(0), d).ticks(), 10);
/// assert_eq!(clocks.scale(ProcessId(1), d).ticks(), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Rate applied to processes without an explicit override.
    default_rate_percent: u32,
    /// Per-process overrides; the last entry for a process wins.
    rates: Vec<(ProcessId, u32)>,
}

impl Default for ClockModel {
    fn default() -> Self {
        ClockModel::nominal()
    }
}

impl ClockModel {
    /// All clocks perfect (rate 100 everywhere).
    pub fn nominal() -> Self {
        ClockModel {
            default_rate_percent: 100,
            rates: Vec::new(),
        }
    }

    /// All clocks at the given rate (percent of nominal; 0 clamps to 1).
    pub fn uniform(percent: u32) -> Self {
        ClockModel {
            default_rate_percent: percent.max(1),
            rates: Vec::new(),
        }
    }

    /// Overrides the rate for one process (percent of nominal; 0 clamps
    /// to 1).
    pub fn with_rate(mut self, p: ProcessId, percent: u32) -> Self {
        self.rates.push((p, percent.max(1)));
        self
    }

    /// The rate in effect for `p`, in percent of nominal.
    pub fn rate_percent(&self, p: ProcessId) -> u32 {
        self.rates
            .iter()
            .rev()
            .find(|&&(q, _)| q == p)
            .map(|&(_, r)| r)
            .unwrap_or(self.default_rate_percent)
    }

    /// Whether every clock runs at the nominal rate.
    pub fn is_nominal(&self) -> bool {
        self.default_rate_percent == 100 && self.rates.iter().all(|&(_, r)| r == 100)
    }

    /// Scales a timer duration requested by `p` into engine ticks.
    pub fn scale(&self, p: ProcessId, d: SimDuration) -> SimDuration {
        let rate = self.rate_percent(p);
        if rate == 100 {
            d
        } else {
            d.scale_percent(rate)
        }
    }

    /// Per-process overrides, for serialization into campaign artifacts.
    pub fn overrides(&self) -> &[(ProcessId, u32)] {
        &self.rates
    }

    /// The default rate, for serialization into campaign artifacts.
    pub fn default_rate(&self) -> u32 {
        self.default_rate_percent
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Δ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_ticks(3);
        let late = SimTime::from_ticks(9);
        assert_eq!(late.since(early), SimDuration::from_ticks(6));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn sub_is_since() {
        assert_eq!(
            SimTime::from_ticks(9) - SimTime::from_ticks(4),
            SimDuration::from_ticks(5)
        );
    }

    #[test]
    fn saturating_arithmetic_never_overflows() {
        let t = SimTime::MAX + SimDuration::from_ticks(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::from_ticks(u64::MAX) * 2;
        assert_eq!(d.ticks(), u64::MAX);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_ticks(7) * 3,
            SimDuration::from_ticks(21)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t42");
        assert_eq!(SimDuration::from_ticks(7).to_string(), "7Δ");
    }

    #[test]
    fn scale_percent_rounds_and_floors_at_one_tick() {
        let d = SimDuration::from_ticks(10);
        assert_eq!(d.scale_percent(100), d);
        assert_eq!(d.scale_percent(150).ticks(), 15);
        assert_eq!(d.scale_percent(50).ticks(), 5);
        assert_eq!(d.scale_percent(25).ticks(), 3); // 2.5 rounds to 3
        // A non-zero duration can never be scaled down to zero.
        assert_eq!(SimDuration::from_ticks(1).scale_percent(1).ticks(), 1);
        // Zero stays zero.
        assert_eq!(SimDuration::ZERO.scale_percent(500), SimDuration::ZERO);
        // Saturates instead of overflowing.
        assert_eq!(
            SimDuration::from_ticks(u64::MAX).scale_percent(u32::MAX).ticks(),
            u64::MAX
        );
    }

    #[test]
    fn clock_scale_extremes_saturate_on_the_arming_path() {
        // Regression for the unchecked-cast sweep: the timer-arming path
        // (ClockModel::scale, then SimTime + SimDuration) must saturate
        // at every stage under extreme-but-valid rates, never wrap.
        let clocks = ClockModel::uniform(u32::MAX).with_rate(ProcessId(1), 1);
        let huge = SimDuration::from_ticks(u64::MAX);
        // Maximal rate on a maximal duration: the u128 intermediate in
        // scale_percent exceeds u64::MAX and must clamp, not truncate.
        assert_eq!(clocks.scale(ProcessId(0), huge).ticks(), u64::MAX);
        assert_eq!(huge.scale_percent(200).ticks(), u64::MAX);
        // The fastest representable clock (1 % of nominal) keeps a 1-tick
        // timer at the ≥ 1-tick floor — scaling cannot reach zero.
        assert_eq!(
            clocks.scale(ProcessId(1), SimDuration::from_ticks(1)).ticks(),
            1
        );
        // Arming a saturated delay near the end of time pins to the end
        // of time instead of wrapping into the past.
        let late = SimTime::from_ticks(u64::MAX - 5);
        assert_eq!((late + huge).ticks(), u64::MAX);
    }

    #[test]
    fn clock_model_rates_and_overrides() {
        let clocks = ClockModel::nominal()
            .with_rate(ProcessId(1), 150)
            .with_rate(ProcessId(2), 50)
            .with_rate(ProcessId(1), 200); // last override wins
        assert_eq!(clocks.rate_percent(ProcessId(0)), 100);
        assert_eq!(clocks.rate_percent(ProcessId(1)), 200);
        assert_eq!(clocks.rate_percent(ProcessId(2)), 50);
        assert!(!clocks.is_nominal());
        assert!(ClockModel::nominal().is_nominal());
        let d = SimDuration::from_ticks(8);
        assert_eq!(clocks.scale(ProcessId(0), d).ticks(), 8);
        assert_eq!(clocks.scale(ProcessId(1), d).ticks(), 16);
        assert_eq!(clocks.scale(ProcessId(2), d).ticks(), 4);
    }

    #[test]
    fn clock_model_uniform_and_zero_clamp() {
        let clocks = ClockModel::uniform(0); // clamps to 1 %
        assert_eq!(clocks.rate_percent(ProcessId(9)), 1);
        let slow = ClockModel::uniform(300);
        assert_eq!(
            slow.scale(ProcessId(0), SimDuration::from_ticks(5)).ticks(),
            15
        );
    }
}
