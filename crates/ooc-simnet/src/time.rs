//! Simulated time.
//!
//! Time is counted in abstract *ticks*. Algorithms should only ever compare
//! durations, never interpret ticks as wall-clock units. Newtypes keep
//! instants and durations from being mixed up ([`SimTime`] vs
//! [`SimDuration`]).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant of simulated time, in ticks since the start of the run.
///
/// ```
/// use ooc_simnet::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_ticks(5);
/// assert_eq!(t.ticks(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw tick count.
    pub fn from_ticks(ticks: u64) -> Self {
        SimTime(ticks)
    }

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from a raw tick count.
    pub fn from_ticks(ticks: u64) -> Self {
        SimDuration(ticks)
    }

    /// Returns the raw tick count.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}Δ", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_ticks(10) + SimDuration::from_ticks(5);
        assert_eq!(t, SimTime::from_ticks(15));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_ticks(3);
        let late = SimTime::from_ticks(9);
        assert_eq!(late.since(early), SimDuration::from_ticks(6));
        assert_eq!(early.since(late), SimDuration::ZERO);
    }

    #[test]
    fn sub_is_since() {
        assert_eq!(
            SimTime::from_ticks(9) - SimTime::from_ticks(4),
            SimDuration::from_ticks(5)
        );
    }

    #[test]
    fn saturating_arithmetic_never_overflows() {
        let t = SimTime::MAX + SimDuration::from_ticks(1);
        assert_eq!(t, SimTime::MAX);
        let d = SimDuration::from_ticks(u64::MAX) * 2;
        assert_eq!(d.ticks(), u64::MAX);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_ticks(7) * 3,
            SimDuration::from_ticks(21)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_ticks(42).to_string(), "t42");
        assert_eq!(SimDuration::from_ticks(7).to_string(), "7Δ");
    }
}
