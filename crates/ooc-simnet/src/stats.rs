//! Aggregate run statistics.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Counters accumulated over a run, independent of the trace level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Messages handed to the network (one per recipient; a broadcast to
    /// `n` processes counts `n`).
    pub messages_sent: u64,
    /// Messages whose *first* copy reached a handler. Extra copies of a
    /// duplicated message are tallied in [`duplicate_deliveries`]
    /// (`RunStats::duplicate_deliveries`) instead, so
    /// [`delivery_ratio`](RunStats::delivery_ratio) can never exceed 1.
    pub messages_delivered: u64,
    /// Messages dropped for any reason.
    pub messages_dropped: u64,
    /// Messages the network chose to duplicate at send time.
    pub messages_duplicated: u64,
    /// Extra (second) copies of duplicated messages that reached a
    /// handler. Kept separate from [`messages_delivered`]
    /// (`RunStats::messages_delivered`) so `delivered / sent` stays a
    /// true ratio.
    pub duplicate_deliveries: u64,
    /// Timer firings delivered to handlers.
    pub timers_fired: u64,
    /// Total handler invocations (start + message + timer + restart).
    pub events_processed: u64,
    /// Number of crash injections that took effect.
    pub crashes: u64,
    /// Number of restarts that took effect.
    pub restarts: u64,
    /// Reliability-layer retransmissions (each also counts as a send).
    pub retransmissions: u64,
    /// Unacked messages evicted from full reliability send buffers.
    pub messages_evicted: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Liveness watchdog verdict: `true` when the run ended with live
    /// undecided processes but nothing in flight, armed, or buffered
    /// that could ever wake them — the run was dead in the water, not
    /// merely out of time. Always `false` when every live process
    /// decided.
    pub stalled: bool,
    /// Time of the last processed event when [`stalled`]
    /// (`RunStats::stalled`) is `true`: the instant progress ceased.
    /// Meaningless (zero) otherwise.
    pub idle_since: SimTime,
}

impl RunStats {
    /// Delivery ratio, `delivered / sent`; `1.0` when nothing was sent.
    ///
    /// Only first copies count toward `delivered`, so the ratio is
    /// bounded by `1.0` even when the network duplicates messages
    /// (extra copies live in
    /// [`duplicate_deliveries`](RunStats::duplicate_deliveries)).
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero() {
        assert_eq!(RunStats::default().delivery_ratio(), 1.0);
        let s = RunStats {
            messages_sent: 10,
            messages_delivered: 7,
            ..RunStats::default()
        };
        assert!((s.delivery_ratio() - 0.7).abs() < 1e-12);
    }
}
