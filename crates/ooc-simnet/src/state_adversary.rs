//! State-adaptive adversaries.
//!
//! The adversary knowledge hierarchy the campaign layer sweeps over:
//!
//! 1. **Oblivious** — samples a [`NetworkConfig`] with no knowledge of the
//!    execution ([`NetworkAdversary`]).
//! 2. **Message-adaptive** — inspects payloads in flight and reorders,
//!    delays or drops them (any custom [`Adversary`]).
//! 3. **State-adaptive** — additionally reads live protocol observables
//!    (each process's round, phase, preference and decision) through a
//!    [`StateView`] and picks the worst next action against the *actual*
//!    execution. This is the strong-adversary model the paper's
//!    probabilistic claims are stated against: an adversary that sees the
//!    votes can keep them split far longer than one that guesses.
//!
//! State adversaries remain fully deterministic: the view is rebuilt by the
//! engine from [`Process::observe`](crate::Process::observe) snapshots at
//! deterministic points, and all randomness still flows through the run's
//! seeded RNG.

use crate::adversary::{Adversary, Decision, NetworkAdversary};
use crate::network::NetworkConfig;
use crate::process::ProtocolObservation;
use crate::rng::SplitMix64;
use crate::time::SimTime;
use crate::ProcessId;

/// A read-only view of the live execution handed to a [`StateAdversary`]
/// on every routing decision.
#[derive(Debug)]
pub struct StateView<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// One observation per process, indexed by process id.
    pub observations: &'a [ProtocolObservation],
    /// Which processes are currently crashed.
    pub crashed: &'a [bool],
    /// Which processes have decided (engine-recorded; authoritative even
    /// for protocols whose [`observe`](crate::Process::observe) reports
    /// nothing).
    pub decided: &'a [bool],
}

impl StateView<'_> {
    /// Network size.
    pub fn n(&self) -> usize {
        self.observations.len()
    }

    /// Whether process `i` is live (not crashed) and undecided.
    pub fn contested(&self, i: usize) -> bool {
        !self.crashed.get(i).copied().unwrap_or(true)
            && !self.decided.get(i).copied().unwrap_or(true)
    }

    /// Counts the binary preferences among live, undecided processes:
    /// `(zeros, ones)`.
    pub fn preference_counts(&self) -> (u64, u64) {
        let mut zeros = 0;
        let mut ones = 0;
        for (i, obs) in self.observations.iter().enumerate() {
            if !self.contested(i) {
                continue;
            }
            match obs.preference {
                Some(false) => zeros += 1,
                Some(true) => ones += 1,
                None => {}
            }
        }
        (zeros, ones)
    }

    /// The highest round any live, undecided process has reached.
    pub fn max_round(&self) -> u64 {
        self.observations
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.contested(i))
            .map(|(_, obs)| obs.round)
            .max()
            .unwrap_or(0)
    }

    /// Number of processes that have decided.
    pub fn decided_count(&self) -> usize {
        self.decided.iter().filter(|&&d| d).count()
    }
}

/// An adversary that sees protocol state, not just messages.
///
/// Mirrors [`Adversary`] but every hook additionally receives a
/// [`StateView`]. Implementations must be deterministic given the view and
/// the provided RNG.
pub trait StateAdversary<M> {
    /// Decides the fate of a message sent at `at` from `from` to `to`,
    /// given full knowledge of the live execution.
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> Decision;

    /// Duplication hook; the default never duplicates.
    fn duplicate(
        &mut self,
        _at: SimTime,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        _view: &StateView<'_>,
        _rng: &mut SplitMix64,
    ) -> bool {
        false
    }
}

impl<M> StateAdversary<M> for Box<dyn StateAdversary<M>> {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> Decision {
        (**self).route(at, from, to, msg, view, rng)
    }

    fn duplicate(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> bool {
        (**self).duplicate(at, from, to, msg, view, rng)
    }
}

/// A state-adaptive vote splitter: reads every process's live preference
/// and silences exactly the messages that would collapse the split.
///
/// While a perfect split holds, cross-camp traffic is cut; once one camp
/// has a majority, messages from the majority camp to the minority camp
/// are cut so the minority is never recruited. All other traffic — and
/// everything after the `until` budget — is routed by the wrapped
/// [`NetworkAdversary`], keeping the attack bounded so liveness is
/// *degraded* rather than trivially destroyed.
#[derive(Debug, Clone)]
pub struct VoteSplitStateAdversary {
    until: SimTime,
    base: NetworkAdversary,
}

impl VoteSplitStateAdversary {
    /// Attacks until `until`, routing everything else over `config`.
    pub fn new(until: SimTime, config: NetworkConfig) -> Self {
        VoteSplitStateAdversary {
            until,
            base: NetworkAdversary::new(config),
        }
    }
}

impl<M> StateAdversary<M> for VoteSplitStateAdversary {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> Decision {
        let base = self.base.route(at, from, to, msg, rng);
        if at >= self.until || base.is_drop() {
            return base;
        }
        let (zeros, ones) = view.preference_counts();
        if zeros == 0 || ones == 0 {
            return base; // nothing left to split
        }
        let from_pref = view.observations.get(from.index()).and_then(|o| o.preference);
        let to_pref = view.observations.get(to.index()).and_then(|o| o.preference);
        let (Some(fp), Some(tp)) = (from_pref, to_pref) else {
            return base;
        };
        let cut = if zeros == ones {
            // Perfect split: silence cross-camp traffic to hold it.
            fp != tp
        } else {
            // Majority forming: stop it recruiting the minority.
            let majority = ones > zeros;
            fp == majority && tp != majority
        };
        if cut {
            Decision::Drop
        } else {
            base
        }
    }

    fn duplicate(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        _view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> bool {
        Adversary::<M>::duplicate(&mut self.base, at, from, to, msg, rng)
    }
}

/// A quorum-starving flapper: periodically identifies the camp of
/// front-runner processes (those at the highest observed round) and, when
/// that camp could assemble a quorum, drops the messages addressed to it —
/// then heals for the rest of the flap cycle.
///
/// The flap cadence makes this a *gray* failure: progress happens during
/// heal windows, so runs limp rather than halt. Bounded by `until` like
/// every campaign attack.
#[derive(Debug, Clone)]
pub struct QuorumStarveAdversary {
    until: SimTime,
    period: u64,
    base: NetworkAdversary,
}

impl QuorumStarveAdversary {
    /// Attacks until `until`, starving in alternating `period`-tick
    /// windows, routing everything else over `config`.
    pub fn new(until: SimTime, period: u64, config: NetworkConfig) -> Self {
        QuorumStarveAdversary {
            until,
            period: period.max(1),
            base: NetworkAdversary::new(config),
        }
    }
}

impl<M> StateAdversary<M> for QuorumStarveAdversary {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        view: &StateView<'_>,
        rng: &mut SplitMix64,
    ) -> Decision {
        let base = self.base.route(at, from, to, msg, rng);
        if at >= self.until || base.is_drop() {
            return base;
        }
        // Flap: starve during even windows, heal during odd ones.
        if !(at.ticks() / self.period).is_multiple_of(2) {
            return base;
        }
        let max_round = view.max_round();
        let contested: Vec<usize> = (0..view.n()).filter(|&i| view.contested(i)).collect();
        if contested.is_empty() {
            return base;
        }
        let front: Vec<usize> = contested
            .iter()
            .copied()
            .filter(|&i| view.observations[i].round == max_round)
            .collect();
        // Starve whichever camp currently holds a majority of the live,
        // undecided processes — that is the camp that could form a quorum.
        let front_is_majority = front.len() * 2 > contested.len();
        let to_in_front = view
            .observations
            .get(to.index())
            .map(|o| o.round == max_round)
            .unwrap_or(false)
            && view.contested(to.index());
        if to_in_front == front_is_majority {
            Decision::Drop
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn obs(round: u64, preference: Option<bool>) -> ProtocolObservation {
        ProtocolObservation {
            round,
            phase: 0,
            preference,
            decided: None,
        }
    }

    #[test]
    fn state_view_counts_only_live_undecided() {
        let observations = vec![
            obs(1, Some(true)),
            obs(1, Some(false)),
            obs(2, Some(true)),
            obs(0, None),
        ];
        let crashed = vec![false, false, true, false];
        let decided = vec![false, false, false, true];
        let view = StateView {
            now: SimTime::ZERO,
            observations: &observations,
            crashed: &crashed,
            decided: &decided,
        };
        // Process 2 is crashed, process 3 decided: neither is contested.
        assert_eq!(view.preference_counts(), (1, 1));
        assert_eq!(view.max_round(), 1);
        assert_eq!(view.decided_count(), 1);
        assert!(view.contested(0));
        assert!(!view.contested(2));
        assert!(!view.contested(3));
    }

    #[test]
    fn vote_split_cuts_cross_camp_traffic_on_a_tie() {
        let observations = vec![obs(1, Some(false)), obs(1, Some(true))];
        let crashed = vec![false, false];
        let decided = vec![false, false];
        let view = StateView {
            now: SimTime::ZERO,
            observations: &observations,
            crashed: &crashed,
            decided: &decided,
        };
        let mut adv =
            VoteSplitStateAdversary::new(SimTime::from_ticks(100), NetworkConfig::reliable(1));
        let mut rng = SplitMix64::new(1);
        // Cross-camp messages are cut while the split holds...
        assert_eq!(
            StateAdversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &view, &mut rng),
            Decision::Drop
        );
        // ...but same-camp traffic flows,
        assert_eq!(
            StateAdversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(0), &0, &view, &mut rng),
            Decision::DeliverAfter(SimDuration::from_ticks(1))
        );
        // and the budget ends the attack.
        assert_eq!(
            StateAdversary::<u32>::route(&mut adv, SimTime::from_ticks(100), ProcessId(0), ProcessId(1), &0, &view, &mut rng),
            Decision::DeliverAfter(SimDuration::from_ticks(1))
        );
    }

    #[test]
    fn vote_split_blocks_majority_recruiting_minority() {
        let observations = vec![obs(1, Some(true)), obs(1, Some(true)), obs(1, Some(false))];
        let crashed = vec![false; 3];
        let decided = vec![false; 3];
        let view = StateView {
            now: SimTime::ZERO,
            observations: &observations,
            crashed: &crashed,
            decided: &decided,
        };
        let mut adv =
            VoteSplitStateAdversary::new(SimTime::from_ticks(100), NetworkConfig::reliable(1));
        let mut rng = SplitMix64::new(1);
        // Majority (true) → minority (false): cut.
        assert_eq!(
            StateAdversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(2), &0, &view, &mut rng),
            Decision::Drop
        );
        // Minority → majority: allowed (it only reinforces the split the
        // adversary wants to repair in its own favour — and keeps the
        // attack subtle).
        assert!(matches!(
            StateAdversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(2), ProcessId(0), &0, &view, &mut rng),
            Decision::DeliverAfter(_)
        ));
    }

    #[test]
    fn vote_split_stands_down_once_unanimous() {
        let observations = vec![obs(1, Some(true)), obs(1, Some(true))];
        let crashed = vec![false; 2];
        let decided = vec![false; 2];
        let view = StateView {
            now: SimTime::ZERO,
            observations: &observations,
            crashed: &crashed,
            decided: &decided,
        };
        let mut adv =
            VoteSplitStateAdversary::new(SimTime::from_ticks(100), NetworkConfig::reliable(1));
        let mut rng = SplitMix64::new(1);
        assert!(matches!(
            StateAdversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &view, &mut rng),
            Decision::DeliverAfter(_)
        ));
    }

    #[test]
    fn quorum_starver_flaps_and_targets_the_majority_camp() {
        // Processes 0 and 1 are front-runners (round 2, a majority of the
        // three contested processes); process 2 lags at round 1.
        let observations = vec![obs(2, Some(true)), obs(2, Some(false)), obs(1, Some(true))];
        let crashed = vec![false; 3];
        let decided = vec![false; 3];
        let view = StateView {
            now: SimTime::ZERO,
            observations: &observations,
            crashed: &crashed,
            decided: &decided,
        };
        let mut adv = QuorumStarveAdversary::new(
            SimTime::from_ticks(1000),
            10,
            NetworkConfig::reliable(1),
        );
        let mut rng = SplitMix64::new(1);
        // Starve window (ticks 0..10): messages to front-runners are cut,
        // messages to the laggard flow.
        assert_eq!(
            StateAdversary::<u32>::route(&mut adv, SimTime::from_ticks(3), ProcessId(2), ProcessId(0), &0, &view, &mut rng),
            Decision::Drop
        );
        assert!(matches!(
            StateAdversary::<u32>::route(&mut adv, SimTime::from_ticks(3), ProcessId(0), ProcessId(2), &0, &view, &mut rng),
            Decision::DeliverAfter(_)
        ));
        // Heal window (ticks 10..20): everything flows.
        assert!(matches!(
            StateAdversary::<u32>::route(&mut adv, SimTime::from_ticks(13), ProcessId(2), ProcessId(0), &0, &view, &mut rng),
            Decision::DeliverAfter(_)
        ));
        // Budget exhausted: everything flows.
        assert!(matches!(
            StateAdversary::<u32>::route(&mut adv, SimTime::from_ticks(1000), ProcessId(2), ProcessId(0), &0, &view, &mut rng),
            Decision::DeliverAfter(_)
        ));
    }
}
