//! Identifier newtypes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a process in a simulated network.
///
/// Processes are numbered densely from `0` to `n - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(pub usize);

impl ProcessId {
    /// Returns the dense index of this process.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<usize> for ProcessId {
    fn from(i: usize) -> Self {
        ProcessId(i)
    }
}

/// Handle for a pending timer, returned by [`Context::set_timer`].
///
/// [`Context::set_timer`]: crate::Context::set_timer
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerId(pub u64);

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p: ProcessId = 3usize.into();
        assert_eq!(p.index(), 3);
        assert_eq!(p.to_string(), "p3");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ProcessId(1) < ProcessId(2));
        assert!(TimerId(1) < TimerId(2));
    }
}
