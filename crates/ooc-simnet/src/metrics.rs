//! Deterministic run metrics: named counters and tick histograms.
//!
//! [`MetricsRegistry`] is the quantitative face of a run, fed by the
//! engine alongside [`RunStats`](crate::RunStats). Where `RunStats` is a
//! fixed struct of headline counters, the registry is an open, ordered
//! namespace (`BTreeMap`-backed, so iteration and serialization order are
//! stable) of counters plus [`TickHistogram`]s for distributions such as
//! message delay and decision latency.
//!
//! Everything here is a pure function of the run: same processes, same
//! config, same seed ⇒ byte-identical [`MetricsRegistry::to_json`]
//! output. No wall-clock values ever enter the registry.

use std::collections::BTreeMap;
use std::fmt;

/// A log-scaled histogram of tick values.
///
/// Values are bucketed by bit-length: bucket `0` holds the value `0`,
/// bucket `k` (for `k ≥ 1`) holds values whose highest set bit is
/// `k - 1`, i.e. the range `[2^(k-1), 2^k)`. 65 buckets cover the full
/// `u64` range. Exact `count`/`sum`/`min`/`max` are kept alongside the
/// buckets, so means are exact and only percentiles are bucket-resolution
/// approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for TickHistogram {
    fn default() -> Self {
        TickHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl TickHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `value`: `0` for `0`, otherwise the
    /// value's bit length.
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (the smallest value it can hold).
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (nearest-rank over buckets).
    ///
    /// Returns the floor of the bucket containing the nearest-rank
    /// observation, clamped to the recorded `[min, max]`, so the answer
    /// is always a value the run could actually have produced. `None` if
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q * count)-th observation (1-based).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            // The top rank is tracked exactly.
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Renders as a deterministic JSON object fragment.
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.95).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
        ));
    }
}

/// An ordered registry of named counters and tick histograms.
///
/// Names are `'static` dotted paths (`"messages.dropped.loss"`); the
/// `BTreeMap` backing makes iteration — and therefore
/// [`to_json`](MetricsRegistry::to_json) — deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, TickHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Records one observation in the named histogram (creating it).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Current value of a counter (`0` if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&TickHistogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &TickHistogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// Renders the whole registry as a deterministic JSON object:
    /// `{"counters":{...},"histograms":{...}}` with keys in name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", name, value));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, hist) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":", name));
            hist.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = TickHistogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_observations() {
        let mut h = TickHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((1..=100).contains(&p50));
        assert!(p50 <= p99);
        assert!(p99 <= 100);
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = TickHistogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = TickHistogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut a = MetricsRegistry::new();
        a.incr("zeta", 1);
        a.incr("alpha", 2);
        a.observe("delay", 7);
        let mut b = MetricsRegistry::new();
        b.observe("delay", 7);
        b.incr("alpha", 2);
        b.incr("zeta", 1);
        assert_eq!(a.to_json(), b.to_json());
        // alpha sorts before zeta regardless of insertion order.
        let j = a.to_json();
        assert!(j.find("alpha").unwrap() < j.find("zeta").unwrap());
    }
}
