//! Deterministic run metrics: named counters and tick histograms.
//!
//! [`MetricsRegistry`] is the quantitative face of a run, fed by the
//! engine alongside [`RunStats`](crate::RunStats). Where `RunStats` is a
//! fixed struct of headline counters, the registry is an open, ordered
//! namespace (`BTreeMap`-backed, so iteration and serialization order are
//! stable) of counters plus [`TickHistogram`]s for distributions such as
//! message delay and decision latency.
//!
//! Everything here is a pure function of the run: same processes, same
//! config, same seed ⇒ byte-identical [`MetricsRegistry::to_json`]
//! output. No wall-clock values ever enter the registry.
//!
//! ## Interned handles
//!
//! The by-name API ([`incr`](MetricsRegistry::incr) /
//! [`observe`](MetricsRegistry::observe)) walks the name index on every
//! call — a string-compare `BTreeMap` lookup that the simulation engine
//! used to pay on *every* event. Hot paths should intern each name once
//! with [`counter_id`](MetricsRegistry::counter_id) /
//! [`histogram_id`](MetricsRegistry::histogram_id) and then update
//! through the returned [`CounterId`] / [`HistogramId`] handle, which is
//! a direct slot index. Slots that were interned but never touched (a
//! zero counter, an empty histogram) are invisible: they are skipped by
//! iteration, lookup and JSON output, so pre-interning every engine
//! metric does not change what a run reports.

use std::collections::BTreeMap;
use std::fmt;

/// A log-scaled histogram of tick values.
///
/// Values are bucketed by bit-length: bucket `0` holds the value `0`,
/// bucket `k` (for `k ≥ 1`) holds values whose highest set bit is
/// `k - 1`, i.e. the range `[2^(k-1), 2^k)`. 65 buckets cover the full
/// `u64` range. Exact `count`/`sum`/`min`/`max` are kept alongside the
/// buckets, so means are exact and only percentiles are bucket-resolution
/// approximations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickHistogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for TickHistogram {
    fn default() -> Self {
        TickHistogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl TickHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `value`: `0` for `0`, otherwise the
    /// value's bit length.
    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (the smallest value it can hold).
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `n` observations of the same value in one update.
    ///
    /// Histogram state (buckets, count, sum, min, max) is a function of
    /// the observation *multiset*, so this is exactly equivalent to `n`
    /// [`record`](Self::record) calls — the batched fan-out path uses it
    /// to flush a uniform batch without per-message bookkeeping.
    #[inline]
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (nearest-rank over buckets).
    ///
    /// Returns the floor of the bucket containing the nearest-rank
    /// observation, clamped to the recorded `[min, max]`, so the answer
    /// is always a value the run could actually have produced. `None` if
    /// empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the ceil(q * count)-th observation (1-based).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        if rank >= self.count {
            // The top rank is tracked exactly.
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_floor(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Renders as a deterministic JSON object fragment.
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            self.count,
            self.sum,
            self.min().unwrap_or(0),
            self.max().unwrap_or(0),
            self.quantile(0.50).unwrap_or(0),
            self.quantile(0.95).unwrap_or(0),
            self.quantile(0.99).unwrap_or(0),
        ));
    }
}

/// A pre-resolved handle to a counter slot, obtained from
/// [`MetricsRegistry::counter_id`]. Updating through the handle is a
/// direct array index — no name lookup.
///
/// Handles are only meaningful for the registry that issued them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// A pre-resolved handle to a histogram slot, obtained from
/// [`MetricsRegistry::histogram_id`]. See [`CounterId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// An ordered registry of named counters and tick histograms.
///
/// Names are `'static` dotted paths (`"messages.dropped.loss"`); the
/// `BTreeMap` name index makes iteration — and therefore
/// [`to_json`](MetricsRegistry::to_json) — deterministic. Values live in
/// dense slot vectors so interned handles update without a lookup.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counter_index: BTreeMap<&'static str, usize>,
    counters: Vec<u64>,
    histogram_index: BTreeMap<&'static str, usize>,
    histograms: Vec<TickHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name` and returns its counter handle, creating the slot
    /// (at zero) on first use. A zero counter stays invisible to
    /// iteration and JSON until the first non-zero increment.
    pub fn counter_id(&mut self, name: &'static str) -> CounterId {
        let next = self.counters.len();
        let slot = *self.counter_index.entry(name).or_insert(next);
        if slot == next {
            self.counters.push(0);
        }
        CounterId(slot)
    }

    /// Interns `name` and returns its histogram handle, creating an
    /// empty slot on first use. An empty histogram stays invisible to
    /// iteration, [`histogram`](Self::histogram) and JSON until its
    /// first observation.
    pub fn histogram_id(&mut self, name: &'static str) -> HistogramId {
        let next = self.histograms.len();
        let slot = *self.histogram_index.entry(name).or_insert(next);
        if slot == next {
            self.histograms.push(TickHistogram::new());
        }
        HistogramId(slot)
    }

    /// Adds `delta` to the counter behind a pre-resolved handle.
    #[inline]
    pub fn incr_by_id(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0] += delta;
    }

    /// Records one observation in the histogram behind a pre-resolved
    /// handle.
    #[inline]
    pub fn observe_by_id(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].record(value);
    }

    /// Records `n` observations of the same value behind a pre-resolved
    /// handle; exactly equivalent to `n` calls of
    /// [`observe_by_id`](Self::observe_by_id) (see
    /// [`TickHistogram::record_n`]).
    #[inline]
    pub fn observe_n_by_id(&mut self, id: HistogramId, value: u64, n: u64) {
        self.histograms[id.0].record_n(value, n);
    }

    /// Adds `delta` to the named counter (creating it at zero).
    ///
    /// Convenience path: interns on every call. Hot loops should hold a
    /// [`CounterId`] and use [`incr_by_id`](Self::incr_by_id).
    pub fn incr(&mut self, name: &'static str, delta: u64) {
        let id = self.counter_id(name);
        self.incr_by_id(id, delta);
    }

    /// Records one observation in the named histogram (creating it).
    ///
    /// Convenience path: interns on every call. Hot loops should hold a
    /// [`HistogramId`] and use [`observe_by_id`](Self::observe_by_id).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        let id = self.histogram_id(name);
        self.observe_by_id(id, value);
    }

    /// Current value of a counter (`0` if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_index
            .get(name)
            .map(|&i| self.counters[i])
            .unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&TickHistogram> {
        self.histogram_index
            .get(name)
            .map(|&i| &self.histograms[i])
            .filter(|h| h.count() > 0)
    }

    /// Iterates non-zero counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counter_index
            .iter()
            .map(|(k, &i)| (*k, self.counters[i]))
            .filter(|(_, v)| *v != 0)
    }

    /// Iterates non-empty histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &TickHistogram)> + '_ {
        self.histogram_index
            .iter()
            .map(|(k, &i)| (*k, &self.histograms[i]))
            .filter(|(_, h)| h.count() > 0)
    }

    /// Renders the whole registry as a deterministic JSON object:
    /// `{"counters":{...},"histograms":{...}}` with keys in name order.
    /// Interned-but-untouched slots are omitted.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, value) in self.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", name, value));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, hist) in self.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":", name));
            hist.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }
}

/// Registries compare by observable content (non-zero counters and
/// non-empty histograms, in name order), not by interning history: a
/// registry that pre-interned every engine metric equals one that only
/// ever touched the metrics the run produced.
impl PartialEq for MetricsRegistry {
    fn eq(&self, other: &Self) -> bool {
        self.counters().eq(other.counters()) && self.histograms().eq(other.histograms())
    }
}

impl Eq for MetricsRegistry {}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = MetricsRegistry::new();
        assert_eq!(m.counter("x"), 0);
        m.incr("x", 2);
        m.incr("x", 3);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn record_n_is_equivalent_to_n_records() {
        // The batched fan-out path leans on this: histogram state is a
        // function of the observation multiset, so one record_n flush
        // must equal n sequential records — including the saturating
        // sum, where `saturating_add(value.saturating_mul(n))` and n
        // saturating adds both pin to u64::MAX once either overflows.
        for (value, n) in [
            (0u64, 1u64),
            (0, 7),
            (1, 3),
            (17, 40),
            (u64::MAX, 2),
            (u64::MAX / 2 + 1, 3),
            (1 << 63, 5),
        ] {
            let mut bulk = TickHistogram::new();
            bulk.record(3); // non-trivial starting state
            bulk.record_n(value, n);
            let mut reference = TickHistogram::new();
            reference.record(3);
            for _ in 0..n {
                reference.record(value);
            }
            assert_eq!(bulk, reference, "value={value} n={n}");
        }
        // n == 0 is a no-op: no bucket, count, or min/max movement.
        let mut h = TickHistogram::new();
        h.record_n(42, 0);
        assert_eq!(h, TickHistogram::new());
    }

    #[test]
    fn observe_n_by_id_matches_repeated_observe() {
        let mut bulk = MetricsRegistry::new();
        let h = bulk.histogram_id("delay_ticks");
        bulk.observe_n_by_id(h, 9, 4);
        bulk.observe_n_by_id(h, 2, 1);
        let mut reference = MetricsRegistry::new();
        for v in [9u64, 9, 9, 9, 2] {
            reference.observe("delay_ticks", v);
        }
        assert_eq!(bulk, reference);
        assert_eq!(bulk.to_json(), reference.to_json());
    }

    #[test]
    fn interned_handles_update_the_same_slots_as_names() {
        let mut by_id = MetricsRegistry::new();
        let c = by_id.counter_id("messages.sent");
        let h = by_id.histogram_id("delay_ticks");
        for v in [1u64, 2, 3] {
            by_id.incr_by_id(c, 1);
            by_id.observe_by_id(h, v);
        }
        let mut by_name = MetricsRegistry::new();
        for v in [1u64, 2, 3] {
            by_name.incr("messages.sent", 1);
            by_name.observe("delay_ticks", v);
        }
        assert_eq!(by_id, by_name);
        assert_eq!(by_id.to_json(), by_name.to_json());
        // Re-interning the same name yields the same handle.
        assert_eq!(by_id.counter_id("messages.sent"), c);
        assert_eq!(by_id.histogram_id("delay_ticks"), h);
    }

    #[test]
    fn untouched_interned_slots_are_invisible() {
        let mut m = MetricsRegistry::new();
        m.counter_id("never.hit");
        m.histogram_id("never.observed");
        m.incr("hit", 1);
        assert_eq!(m.counters().count(), 1);
        assert_eq!(m.histograms().count(), 0);
        assert!(m.histogram("never.observed").is_none());
        assert_eq!(m.to_json(), "{\"counters\":{\"hit\":1},\"histograms\":{}}");
        // And a registry without the dormant slots compares equal.
        let mut plain = MetricsRegistry::new();
        plain.incr("hit", 1);
        assert_eq!(m, plain);
    }

    #[test]
    fn histogram_exact_stats() {
        let mut h = TickHistogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean().unwrap() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_bounded_by_observations() {
        let mut h = TickHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!((1..=100).contains(&p50));
        assert!(p50 <= p99);
        assert!(p99 <= 100);
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = TickHistogram::new();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn zero_lands_in_bucket_zero() {
        let mut h = TickHistogram::new();
        h.record(0);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.quantile(0.5), Some(0));
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut a = MetricsRegistry::new();
        a.incr("zeta", 1);
        a.incr("alpha", 2);
        a.observe("delay", 7);
        let mut b = MetricsRegistry::new();
        b.observe("delay", 7);
        b.incr("alpha", 2);
        b.incr("zeta", 1);
        assert_eq!(a.to_json(), b.to_json());
        // alpha sorts before zeta regardless of insertion order.
        let j = a.to_json();
        assert!(j.find("alpha").unwrap() < j.find("zeta").unwrap());
    }
}
