//! Deterministic random number generation.
//!
//! The simulator must be bit-for-bit reproducible across platforms and
//! across versions of the `rand` crate, so it carries its own tiny PRNG,
//! [`SplitMix64`], and exposes it through [`rand::RngCore`] so the whole
//! `rand` combinator toolbox still applies.

use rand::{Error, RngCore, SeedableRng};

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) pseudo-random
/// generator.
///
/// Fast, tiny state, and good enough statistical quality for scheduling
/// decisions and protocol coin flips. **Not** cryptographically secure.
///
/// ```
/// use ooc_simnet::SplitMix64;
/// use rand::Rng;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>()); // fully deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator, e.g. one per process.
    ///
    /// Mixing the stream index through one SplitMix64 step decorrelates the
    /// child streams even for adjacent indices.
    pub fn derive(&self, stream: u64) -> SplitMix64 {
        let mut base = SplitMix64::new(self.state ^ 0x9e37_79b9_7f4a_7c15u64.rotate_left(17));
        let a = base.next_u64();
        let mut child = SplitMix64::new(a ^ stream.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        // One warm-up step so even stream=0 diverges from the parent.
        child.next_u64();
        child
    }

    /// Returns the next value in the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire-style rejection sampling keeps the distribution exactly
        // uniform regardless of bound.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform value in `[lo, hi]` (inclusive). Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_inclusive: lo {lo} > hi {hi}");
        lo + self.below(hi - lo + 1)
    }

    /// A Bernoulli trial that succeeds with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 bits of randomness: enough to compare against an f64 in [0,1).
        let r = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        r < p
    }

    /// A fair coin flip, returned as `0` or `1`.
    pub fn coin(&mut self) -> u64 {
        self.next_u64() & 1
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SplitMix64::new(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        SplitMix64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let parent = SplitMix64::new(99);
        let mut c0 = parent.derive(0);
        let mut c0b = parent.derive(0);
        let mut c1 = parent.derive(1);
        assert_eq!(c0.next_u64(), c0b.next_u64());
        let mut c0 = parent.derive(0);
        assert_ne!(c0.next_u64(), c1.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.below(13);
            assert!(v < 13);
        }
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut rng = SplitMix64::new(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.range_inclusive(2, 4);
            assert!((2..=4).contains(&v));
            seen_lo |= v == 2;
            seen_hi |= v == 4;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SplitMix64::new(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn coin_is_fair_enough() {
        let mut rng = SplitMix64::new(13);
        let ones: u64 = (0..100_000).map(|_| rng.coin()).sum();
        let frac = ones as f64 / 100_000.0;
        assert!((frac - 0.5).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SplitMix64::new(17);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn seedable_rng_roundtrip() {
        let mut a = SplitMix64::seed_from_u64(21);
        let mut b = SplitMix64::new(21);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
