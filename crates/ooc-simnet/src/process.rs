//! The asynchronous process model: [`Process`] and its [`Context`].

use crate::rng::SplitMix64;
use crate::storage::StableStore;
use crate::time::{SimDuration, SimTime};
use crate::{ProcessId, TimerId};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A reactive process running on the asynchronous engine.
///
/// Processes are state machines: the engine invokes the handlers below and
/// the process responds by mutating its own state and issuing sends, timers
/// and (at most one) decision through the [`Context`].
///
/// The trait is object-safe; heterogeneous networks are built from
/// `Box<dyn Process<Msg = M, Output = O>>`.
pub trait Process {
    /// The message type exchanged on the network.
    type Msg: Clone + Debug;
    /// The type of the value this process may decide.
    type Output: Clone + Debug + PartialEq;

    /// Invoked once at time zero, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>);

    /// Invoked for each delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    );

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, timer: TimerId);

    /// Invoked when the process recovers from a crash.
    ///
    /// In-memory state set before the crash is still present (the process
    /// value itself survives); implementations must treat it as *volatile*
    /// and rebuild anything durable from [`Context::storage`], which holds
    /// exactly the records that survived the crash under the process's
    /// [`StoragePolicy`](crate::StoragePolicy). Pending timers set before
    /// the crash are cancelled by the engine.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Reports a read-only snapshot of this process's protocol observables
    /// for state-adaptive adversaries
    /// ([`StateAdversary`](crate::StateAdversary)).
    ///
    /// The default reports nothing, which makes every protocol opaque to
    /// state adversaries unless it opts in. Implementations must only
    /// *read* state — the engine may call this at any point between
    /// handler invocations.
    fn observe(&self) -> ProtocolObservation {
        ProtocolObservation::default()
    }
}

/// A read-only snapshot of one process's protocol state, as reported by
/// [`Process::observe`].
///
/// The fields mirror the observables failure-detector-style adversary
/// analyses assume: the round/phase a process has reached, its current
/// leaning in a binary consensus, and whether it has decided. Protocols
/// with non-binary values simply leave `preference`/`decided` as `None`
/// (the adversary then only sees round structure).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolObservation {
    /// The protocol round the process is currently executing.
    pub round: u64,
    /// A protocol-specific phase tag within the round (for the paper's
    /// template: 0 = agreement detector, 1 = shaker, 2 = halted).
    pub phase: u8,
    /// The process's current binary preference, if it exposes one.
    pub preference: Option<bool>,
    /// The process's decided binary value, if it has decided one.
    pub decided: Option<bool>,
}

/// An outgoing message collected during a handler invocation.
#[derive(Debug, Clone)]
pub(crate) struct Outgoing<M> {
    pub to: ProcessId,
    pub msg: M,
}

/// A buffered storage operation, applied by the engine after the handler
/// returns (before the invocation's sends become visible).
#[derive(Debug, Clone)]
pub(crate) enum StorageOp {
    /// Append one key/value record to the process's [`StableStore`].
    Put { key: String, value: Vec<u8> },
    /// Move the store's synced watermark to the end of the log.
    Sync,
}

/// Effects collected from one handler invocation; drained by the engine.
#[derive(Debug)]
pub(crate) struct Effects<M, O> {
    pub outbox: Vec<Outgoing<M>>,
    pub timer_requests: Vec<(TimerId, SimDuration)>,
    pub cancelled: Vec<TimerId>,
    pub storage: Vec<StorageOp>,
    pub decision: Option<O>,
    pub halted: bool,
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Effects {
            outbox: Vec::new(),
            timer_requests: Vec::new(),
            cancelled: Vec::new(),
            storage: Vec::new(),
            decision: None,
            halted: false,
        }
    }
}

/// The handle a [`Process`] uses to interact with the simulated world.
///
/// A fresh context is constructed for every handler invocation; effects are
/// applied by the engine after the handler returns, in deterministic order.
#[derive(Debug)]
pub struct Context<'a, M, O> {
    me: ProcessId,
    n: usize,
    now: SimTime,
    rng: &'a mut SplitMix64,
    next_timer: &'a mut u64,
    live_timers: &'a BTreeSet<TimerId>,
    store: &'a StableStore,
    effects: &'a mut Effects<M, O>,
}

impl<'a, M: Clone, O> Context<'a, M, O> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ProcessId,
        n: usize,
        now: SimTime,
        rng: &'a mut SplitMix64,
        next_timer: &'a mut u64,
        live_timers: &'a BTreeSet<TimerId>,
        store: &'a StableStore,
        effects: &'a mut Effects<M, O>,
    ) -> Self {
        Context {
            me,
            n,
            now,
            rng,
            next_timer,
            live_timers,
            store,
            effects,
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Total number of processes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's private deterministic random number generator.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }

    /// Sends `msg` to `to`. Self-sends are permitted and are always
    /// delivered (never dropped or partitioned away).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.outbox.push(Outgoing { to, msg });
    }

    /// Sends `msg` to every process **including this one**, matching the
    /// paper's `broadcast⟨v⟩` which lets senders count their own message.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.n {
            self.effects.outbox.push(Outgoing {
                to: ProcessId(i),
                msg: msg.clone(),
            });
        }
    }

    /// Sends `msg` to every *other* process.
    pub fn broadcast_others(&mut self, msg: M) {
        for i in 0..self.n {
            if i != self.me.index() {
                self.effects.outbox.push(Outgoing {
                    to: ProcessId(i),
                    msg: msg.clone(),
                });
            }
        }
    }

    /// Schedules a timer to fire after `after` ticks; returns its handle.
    pub fn set_timer(&mut self, after: SimDuration) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.timer_requests.push((id, after));
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.cancelled.push(id);
    }

    /// Whether the timer is still pending (set, not fired, not cancelled
    /// before this handler ran).
    pub fn timer_pending(&self, id: TimerId) -> bool {
        self.live_timers.contains(&id)
            && !self.effects.cancelled.contains(&id)
    }

    /// This process's stable storage, as it stood when this handler was
    /// invoked. Writes issued through [`persist`](Context::persist) during
    /// the current invocation are buffered as effects and are *not* yet
    /// visible here; they land after the handler returns.
    pub fn storage(&self) -> &StableStore {
        self.store
    }

    /// Appends a key/value record to this process's stable storage.
    ///
    /// The write is buffered like a send and applied by the engine after
    /// the handler returns — *before* any of the invocation's outgoing
    /// messages become visible, so a process never tells the network
    /// something its storage does not know. Whether the record survives a
    /// crash before the next [`sync_storage`](Context::sync_storage)
    /// depends on the process's [`StoragePolicy`](crate::StoragePolicy).
    pub fn persist(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.effects.storage.push(StorageOp::Put {
            key: key.into(),
            value,
        });
    }

    /// Forces all records persisted so far to stable storage. After the
    /// sync lands, those records survive any crash short of
    /// [`Amnesia`](crate::StoragePolicy::Amnesia).
    pub fn sync_storage(&mut self) {
        self.effects.storage.push(StorageOp::Sync);
    }

    /// Records this process's decision. Only the first decision of a run is
    /// kept; later calls are ignored (processes such as Phase-King keep
    /// participating after deciding).
    pub fn decide(&mut self, value: O) {
        if self.effects.decision.is_none() {
            self.effects.decision = Some(value);
        }
    }

    /// Stops this process: no further handlers will be invoked on it.
    pub fn halt(&mut self) {
        self.effects.halted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::storage::StoragePolicy;

    fn ctx_fixture() -> (SplitMix64, u64, BTreeSet<TimerId>, StableStore, Effects<u32, u32>) {
        (
            SplitMix64::new(1),
            0,
            BTreeSet::new(),
            StableStore::new(StoragePolicy::SyncAlways),
            Effects::default(),
        )
    }

    #[test]
    fn broadcast_includes_self() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast(7);
        let tos: Vec<_> = fx.outbox.iter().map(|o| o.to.index()).collect();
        assert_eq!(tos, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_others_excludes_self() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast_others(7);
        let tos: Vec<_> = fx.outbox.iter().map(|o| o.to.index()).collect();
        assert_eq!(tos, vec![0, 2]);
    }

    #[test]
    fn first_decision_wins() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.decide(1);
        ctx.decide(2);
        assert_eq!(fx.decision, Some(1));
    }

    #[test]
    fn timer_ids_are_unique() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        let a = ctx.set_timer(SimDuration::from_ticks(1));
        let b = ctx.set_timer(SimDuration::from_ticks(1));
        assert_ne!(a, b);
        assert_eq!(fx.timer_requests.len(), 2);
    }

    #[test]
    fn timer_pending_reflects_live_set_and_cancellations() {
        let (mut rng, mut nt, mut live, store, mut fx) = ctx_fixture();
        live.insert(TimerId(5));
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        assert!(ctx.timer_pending(TimerId(5)));
        assert!(!ctx.timer_pending(TimerId(6)));
        ctx.cancel_timer(TimerId(5));
        assert!(!ctx.timer_pending(TimerId(5)));
    }

    #[test]
    fn persist_and_sync_are_buffered_as_effects() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.persist("k", vec![1, 2]);
        ctx.sync_storage();
        // Reads see the pre-invocation store, not the buffered write.
        assert!(ctx.storage().is_empty());
        assert_eq!(fx.storage.len(), 2);
        assert!(matches!(&fx.storage[0], StorageOp::Put { key, value } if key == "k" && value == &[1, 2]));
        assert!(matches!(&fx.storage[1], StorageOp::Sync));
    }
}
