//! The asynchronous process model: [`Process`] and its [`Context`].

use crate::rng::SplitMix64;
use crate::storage::StableStore;
use crate::time::{SimDuration, SimTime};
use crate::{ProcessId, TimerId};
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A reactive process running on the asynchronous engine.
///
/// Processes are state machines: the engine invokes the handlers below and
/// the process responds by mutating its own state and issuing sends, timers
/// and (at most one) decision through the [`Context`].
///
/// The trait is object-safe; heterogeneous networks are built from
/// `Box<dyn Process<Msg = M, Output = O>>`.
pub trait Process {
    /// The message type exchanged on the network.
    type Msg: Clone + Debug;
    /// The type of the value this process may decide.
    type Output: Clone + Debug + PartialEq;

    /// Invoked once at time zero, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>);

    /// Invoked for each delivered message.
    fn on_message(
        &mut self,
        ctx: &mut Context<'_, Self::Msg, Self::Output>,
        from: ProcessId,
        msg: Self::Msg,
    );

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>, timer: TimerId);

    /// Invoked when the process recovers from a crash.
    ///
    /// In-memory state set before the crash is still present (the process
    /// value itself survives); implementations must treat it as *volatile*
    /// and rebuild anything durable from [`Context::storage`], which holds
    /// exactly the records that survived the crash under the process's
    /// [`StoragePolicy`](crate::StoragePolicy). Pending timers set before
    /// the crash are cancelled by the engine.
    fn on_restart(&mut self, ctx: &mut Context<'_, Self::Msg, Self::Output>) {
        let _ = ctx;
    }

    /// Reports a read-only snapshot of this process's protocol observables
    /// for state-adaptive adversaries
    /// ([`StateAdversary`](crate::StateAdversary)).
    ///
    /// The default reports nothing, which makes every protocol opaque to
    /// state adversaries unless it opts in. Implementations must only
    /// *read* state — the engine may call this at any point between
    /// handler invocations.
    fn observe(&self) -> ProtocolObservation {
        ProtocolObservation::default()
    }
}

/// A read-only snapshot of one process's protocol state, as reported by
/// [`Process::observe`].
///
/// The fields mirror the observables failure-detector-style adversary
/// analyses assume: the round/phase a process has reached, its current
/// leaning in a binary consensus, and whether it has decided. Protocols
/// with non-binary values simply leave `preference`/`decided` as `None`
/// (the adversary then only sees round structure).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProtocolObservation {
    /// The protocol round the process is currently executing.
    pub round: u64,
    /// A protocol-specific phase tag within the round (for the paper's
    /// template: 0 = agreement detector, 1 = shaker, 2 = halted).
    pub phase: u8,
    /// The process's current binary preference, if it exposes one.
    pub preference: Option<bool>,
    /// The process's decided binary value, if it has decided one.
    pub decided: Option<bool>,
}

/// Size threshold (in bytes) above which broadcast payloads are
/// interned behind an `Arc` instead of deep-cloned per recipient.
///
/// One shared gate for every broadcast fan-out — the asynchronous
/// engine's [`Context::broadcast`]/[`Context::broadcast_others`] and the
/// synchronous engine's `SyncContext::broadcast` all route through
/// [`Payload::intern_broadcasts`], which combines this threshold with a
/// `needs_drop` check. 64 bytes is a cache line: anything that fits
/// copies faster than it refcounts.
pub(crate) const INTERN_BYTES: usize = 64;

/// A message payload as buffered by the engine: either owned outright
/// (unicast and self-sends pay zero overhead) or interned behind an
/// `Arc` so an n-recipient broadcast stores one allocation instead of
/// n deep clones.
#[derive(Debug, Clone)]
pub(crate) enum Payload<M> {
    /// A payload with a single recipient.
    Owned(M),
    /// A broadcast payload shared by several in-flight copies.
    Shared(std::sync::Arc<M>),
}

impl<M: Clone> Payload<M> {
    /// Whether broadcasts of `M` should intern behind an `Arc`.
    ///
    /// Interning trades one allocation plus refcount traffic for n−1
    /// deep clones, which only pays off when a clone is itself
    /// expensive: the message owns heap resources (`needs_drop` — a
    /// `String`, a `Vec` of log entries) or is simply larger than
    /// [`INTERN_BYTES`]. Small plain-old-data payloads copy faster than
    /// they refcount, so they stay owned. Both operands are compile-time
    /// constants, so the branch folds away per message type.
    pub(crate) fn intern_broadcasts() -> bool {
        std::mem::needs_drop::<M>() || std::mem::size_of::<M>() > INTERN_BYTES
    }

    /// Borrows the message, e.g. for adversary routing or trace capture.
    pub(crate) fn as_msg(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => a,
        }
    }

    /// Extracts the message for handler delivery, cloning only while
    /// other in-flight copies still share the allocation — the last
    /// recipient unwraps the `Arc` for free.
    pub(crate) fn into_msg(self) -> M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(a) => {
                std::sync::Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
            }
        }
    }
}

/// An outgoing message collected during a handler invocation.
#[derive(Debug, Clone)]
pub(crate) struct Outgoing<M> {
    pub to: ProcessId,
    pub msg: Payload<M>,
}

/// A buffered storage operation, applied by the engine after the handler
/// returns (before the invocation's sends become visible).
#[derive(Debug, Clone)]
pub(crate) enum StorageOp {
    /// Append one key/value record to the process's [`StableStore`].
    Put { key: String, value: Vec<u8> },
    /// Move the store's synced watermark to the end of the log.
    Sync,
}

/// Effects collected from one handler invocation; drained by the engine.
#[derive(Debug)]
pub(crate) struct Effects<M, O> {
    pub outbox: Vec<Outgoing<M>>,
    pub timer_requests: Vec<(TimerId, SimDuration)>,
    pub cancelled: Vec<TimerId>,
    pub storage: Vec<StorageOp>,
    pub decision: Option<O>,
    pub halted: bool,
}

impl<M, O> Default for Effects<M, O> {
    fn default() -> Self {
        Effects {
            outbox: Vec::new(),
            timer_requests: Vec::new(),
            cancelled: Vec::new(),
            storage: Vec::new(),
            decision: None,
            halted: false,
        }
    }
}

/// The handle a [`Process`] uses to interact with the simulated world.
///
/// A fresh context is constructed for every handler invocation; effects are
/// applied by the engine after the handler returns, in deterministic order.
#[derive(Debug)]
pub struct Context<'a, M, O> {
    me: ProcessId,
    n: usize,
    now: SimTime,
    rng: &'a mut SplitMix64,
    next_timer: &'a mut u64,
    live_timers: &'a BTreeSet<TimerId>,
    store: &'a StableStore,
    effects: &'a mut Effects<M, O>,
}

impl<'a, M: Clone, O> Context<'a, M, O> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: ProcessId,
        n: usize,
        now: SimTime,
        rng: &'a mut SplitMix64,
        next_timer: &'a mut u64,
        live_timers: &'a BTreeSet<TimerId>,
        store: &'a StableStore,
        effects: &'a mut Effects<M, O>,
    ) -> Self {
        Context {
            me,
            n,
            now,
            rng,
            next_timer,
            live_timers,
            store,
            effects,
        }
    }

    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Total number of processes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's private deterministic random number generator.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }

    /// Sends `msg` to `to`. Self-sends are permitted and are always
    /// delivered (never dropped or partitioned away).
    ///
    /// Delivery semantics are the engine's, not the caller's: under
    /// [`ReliabilityPolicy::Retransmit`](crate::ReliabilityPolicy) every
    /// non-self send is additionally tracked in the sender's reliable
    /// send buffer and retransmitted until acked, exhausted, or evicted
    /// — transparently to this API, with duplicates suppressed on the
    /// receive side so handlers still see each message at most once.
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.effects.outbox.push(Outgoing {
            to,
            msg: Payload::Owned(msg),
        });
    }

    /// Sends `msg` to every process **including this one**, matching the
    /// paper's `broadcast⟨v⟩` which lets senders count their own message.
    ///
    /// Clone-expensive payloads are interned: all `n` in-flight copies
    /// share one allocation instead of deep-cloning the message per
    /// recipient. Small plain-old-data messages are copied outright —
    /// see [`Payload::intern_broadcasts`].
    pub fn broadcast(&mut self, msg: M) {
        if Payload::<M>::intern_broadcasts() {
            let shared = std::sync::Arc::new(msg);
            for i in 0..self.n {
                self.effects.outbox.push(Outgoing {
                    to: ProcessId(i),
                    msg: Payload::Shared(std::sync::Arc::clone(&shared)),
                });
            }
        } else {
            for i in 0..self.n {
                self.effects.outbox.push(Outgoing {
                    to: ProcessId(i),
                    msg: Payload::Owned(msg.clone()),
                });
            }
        }
    }

    /// Sends `msg` to every *other* process. Interned like
    /// [`broadcast`](Context::broadcast).
    pub fn broadcast_others(&mut self, msg: M) {
        if Payload::<M>::intern_broadcasts() {
            let shared = std::sync::Arc::new(msg);
            for i in 0..self.n {
                if i != self.me.index() {
                    self.effects.outbox.push(Outgoing {
                        to: ProcessId(i),
                        msg: Payload::Shared(std::sync::Arc::clone(&shared)),
                    });
                }
            }
        } else {
            for i in 0..self.n {
                if i != self.me.index() {
                    self.effects.outbox.push(Outgoing {
                        to: ProcessId(i),
                        msg: Payload::Owned(msg.clone()),
                    });
                }
            }
        }
    }

    /// Schedules a timer to fire after `after` ticks; returns its handle.
    pub fn set_timer(&mut self, after: SimDuration) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.timer_requests.push((id, after));
        id
    }

    /// Cancels a pending timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.cancelled.push(id);
    }

    /// Whether the timer is still pending (set, not fired, not cancelled
    /// before this handler ran).
    pub fn timer_pending(&self, id: TimerId) -> bool {
        self.live_timers.contains(&id)
            && !self.effects.cancelled.contains(&id)
    }

    /// This process's stable storage, as it stood when this handler was
    /// invoked. Writes issued through [`persist`](Context::persist) during
    /// the current invocation are buffered as effects and are *not* yet
    /// visible here; they land after the handler returns.
    pub fn storage(&self) -> &StableStore {
        self.store
    }

    /// Appends a key/value record to this process's stable storage.
    ///
    /// The write is buffered like a send and applied by the engine after
    /// the handler returns — *before* any of the invocation's outgoing
    /// messages become visible, so a process never tells the network
    /// something its storage does not know. Whether the record survives a
    /// crash before the next [`sync_storage`](Context::sync_storage)
    /// depends on the process's [`StoragePolicy`](crate::StoragePolicy).
    pub fn persist(&mut self, key: impl Into<String>, value: Vec<u8>) {
        self.effects.storage.push(StorageOp::Put {
            key: key.into(),
            value,
        });
    }

    /// Forces all records persisted so far to stable storage. After the
    /// sync lands, those records survive any crash short of
    /// [`Amnesia`](crate::StoragePolicy::Amnesia).
    pub fn sync_storage(&mut self) {
        self.effects.storage.push(StorageOp::Sync);
    }

    /// Records this process's decision. Only the first decision of a run is
    /// kept; later calls are ignored (processes such as Phase-King keep
    /// participating after deciding).
    pub fn decide(&mut self, value: O) {
        if self.effects.decision.is_none() {
            self.effects.decision = Some(value);
        }
    }

    /// Stops this process: no further handlers will be invoked on it.
    pub fn halt(&mut self) {
        self.effects.halted = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::storage::StoragePolicy;

    fn ctx_fixture() -> (SplitMix64, u64, BTreeSet<TimerId>, StableStore, Effects<u32, u32>) {
        ctx_fixture2::<u32>()
    }

    fn ctx_fixture2<M>() -> (SplitMix64, u64, BTreeSet<TimerId>, StableStore, Effects<M, u32>) {
        (
            SplitMix64::new(1),
            0,
            BTreeSet::new(),
            StableStore::new(StoragePolicy::SyncAlways),
            Effects::default(),
        )
    }

    #[test]
    fn broadcast_includes_self() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast(7);
        let tos: Vec<_> = fx.outbox.iter().map(|o| o.to.index()).collect();
        assert_eq!(tos, vec![0, 1, 2]);
    }

    #[test]
    fn broadcast_others_excludes_self() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast_others(7);
        let tos: Vec<_> = fx.outbox.iter().map(|o| o.to.index()).collect();
        assert_eq!(tos, vec![0, 2]);
    }

    #[test]
    fn broadcast_interns_one_allocation_for_clone_expensive_payloads() {
        // String owns heap memory (needs_drop), so broadcasting it must
        // intern: all three in-flight copies share one allocation.
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture2::<String>();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast("seven".to_string());
        match &fx.outbox[0].msg {
            Payload::Shared(a) => assert_eq!(std::sync::Arc::strong_count(a), 3),
            Payload::Owned(_) => panic!("broadcast must intern a heap-owning payload"),
        }
        let seen: Vec<String> = fx.outbox.iter().map(|o| o.msg.as_msg().clone()).collect();
        assert_eq!(seen, vec!["seven", "seven", "seven"]);
        // Extraction yields the same message for every recipient (the
        // last one unwraps the Arc instead of cloning).
        let msgs: Vec<String> = fx.outbox.drain(..).map(|o| o.msg.into_msg()).collect();
        assert_eq!(msgs, vec!["seven", "seven", "seven"]);
    }

    #[test]
    fn intern_gate_is_needs_drop_or_over_intern_bytes() {
        // Pin the shared threshold and the exact gate shape: payloads
        // intern iff they need drop glue OR exceed INTERN_BYTES — a
        // payload of exactly INTERN_BYTES plain bytes stays owned, one
        // byte more interns.
        assert_eq!(INTERN_BYTES, 64);
        assert!(!Payload::<[u8; INTERN_BYTES]>::intern_broadcasts());
        assert!(Payload::<[u8; INTERN_BYTES + 1]>::intern_broadcasts());
        // needs_drop interns regardless of size (a Box is 8 bytes).
        assert!(Payload::<Box<u8>>::intern_broadcasts());
        assert!(std::mem::size_of::<Box<u8>>() <= INTERN_BYTES);
    }

    #[test]
    fn broadcast_copies_small_plain_payloads() {
        // A u32 copies faster than it refcounts, so the intern gate must
        // leave it owned — no Arc allocation on the broadcast path.
        assert!(!Payload::<u32>::intern_broadcasts());
        assert!(Payload::<String>::intern_broadcasts());
        assert!(Payload::<[u64; 16]>::intern_broadcasts()); // large POD
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(1), 3, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.broadcast(7);
        for o in &fx.outbox {
            assert!(matches!(o.msg, Payload::Owned(7)));
        }
        assert_eq!(fx.outbox.len(), 3);
    }

    #[test]
    fn unicast_stays_owned() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 2, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.send(ProcessId(1), 9);
        assert!(matches!(fx.outbox[0].msg, Payload::Owned(9)));
    }

    #[test]
    fn first_decision_wins() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.decide(1);
        ctx.decide(2);
        assert_eq!(fx.decision, Some(1));
    }

    #[test]
    fn timer_ids_are_unique() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        let a = ctx.set_timer(SimDuration::from_ticks(1));
        let b = ctx.set_timer(SimDuration::from_ticks(1));
        assert_ne!(a, b);
        assert_eq!(fx.timer_requests.len(), 2);
    }

    #[test]
    fn timer_pending_reflects_live_set_and_cancellations() {
        let (mut rng, mut nt, mut live, store, mut fx) = ctx_fixture();
        live.insert(TimerId(5));
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        assert!(ctx.timer_pending(TimerId(5)));
        assert!(!ctx.timer_pending(TimerId(6)));
        ctx.cancel_timer(TimerId(5));
        assert!(!ctx.timer_pending(TimerId(5)));
    }

    #[test]
    fn persist_and_sync_are_buffered_as_effects() {
        let (mut rng, mut nt, live, store, mut fx) = ctx_fixture();
        let mut ctx = Context::new(ProcessId(0), 1, SimTime::ZERO, &mut rng, &mut nt, &live, &store, &mut fx);
        ctx.persist("k", vec![1, 2]);
        ctx.sync_storage();
        // Reads see the pre-invocation store, not the buffered write.
        assert!(ctx.storage().is_empty());
        assert_eq!(fx.storage.len(), 2);
        assert!(matches!(&fx.storage[0], StorageOp::Put { key, value } if key == "k" && value == &[1, 2]));
        assert!(matches!(&fx.storage[1], StorageOp::Sync));
    }
}
