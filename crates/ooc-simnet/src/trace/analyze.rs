//! Post-hoc trace analysis.
//!
//! Turns a recorded [`Trace`] into structured summaries: per-process
//! timelines, a drop breakdown by [`DropReason`](super::DropReason),
//! message-complexity
//! rows over fixed time windows, and the causal critical path behind a
//! decision. All outputs are plain data over `BTreeMap`s, so they are
//! deterministic given a deterministic trace.
//!
//! Note on rounds: the trace is protocol-agnostic and carries no round
//! numbers, so message complexity here is bucketed by *time window*;
//! per-round message counts live protocol-side in
//! `ooc_core::metrics::RoundMetrics`, which reads the round records
//! directly.

use super::{Trace, TraceEvent};
use crate::time::SimTime;
use crate::ProcessId;
use std::collections::BTreeMap;

/// Activity summary for one process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcessTimeline {
    /// Messages this process sent.
    pub sends: u64,
    /// Messages delivered to this process.
    pub deliveries: u64,
    /// Messages addressed to this process that were dropped.
    pub drops: u64,
    /// Timer firings at this process.
    pub timers: u64,
    /// Crash injections at this process.
    pub crashes: u64,
    /// Restarts at this process.
    pub restarts: u64,
    /// Stable-storage writes by this process.
    pub persists: u64,
    /// Stored records this process lost to crashes.
    pub storage_lost: u64,
    /// Reliability-layer retransmissions by this process.
    pub retransmits: u64,
    /// When this process decided, if it did.
    pub decided_at: Option<SimTime>,
    /// Time of the first event touching this process.
    pub first_activity: Option<SimTime>,
    /// Time of the last event touching this process.
    pub last_activity: Option<SimTime>,
}

impl ProcessTimeline {
    fn touch(&mut self, at: SimTime) {
        if self.first_activity.is_none() {
            self.first_activity = Some(at);
        }
        self.last_activity = Some(match self.last_activity {
            Some(t) if t > at => t,
            _ => at,
        });
    }
}

/// Message volume within one `[start, start + window)` slice of the run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowRow {
    /// Start of the window.
    pub start: SimTime,
    /// Sends inside the window.
    pub sends: u64,
    /// Deliveries inside the window.
    pub deliveries: u64,
    /// Drops inside the window.
    pub drops: u64,
}

/// One hop on a decision's causal critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Sender of the message that enabled the next hop.
    pub from: ProcessId,
    /// Recipient (the process whose causal past we were walking).
    pub to: ProcessId,
    /// Delivery time of the message.
    pub at: SimTime,
}

/// The complete analysis of one trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceAnalysis {
    /// Per-process activity, indexed by process id (`0..n`).
    pub timelines: Vec<ProcessTimeline>,
    /// Dropped messages grouped by reason (stable label order).
    pub drop_breakdown: BTreeMap<&'static str, u64>,
    /// Message volume per fixed-size time window, in time order.
    pub windows: Vec<WindowRow>,
    /// Latency from time zero to each decision, in decision order.
    pub decision_latencies: Vec<(ProcessId, SimTime)>,
    /// The liveness watchdog's verdict, when the trace recorded one:
    /// `(stop time, idle_since)`.
    pub stalled: Option<(SimTime, SimTime)>,
}

/// Analyzes a trace recorded for `n` processes.
///
/// `window` is the bucket width (in ticks) for the message-complexity
/// rows; it is clamped to at least 1.
pub fn analyze(trace: &Trace, n: usize, window: u64) -> TraceAnalysis {
    let window = window.max(1);
    let mut timelines = vec![ProcessTimeline::default(); n];
    let mut drop_breakdown: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut windows: BTreeMap<u64, WindowRow> = BTreeMap::new();
    let mut decision_latencies = Vec::new();
    let mut stalled = None;

    fn touch(tl: &mut [ProcessTimeline], p: ProcessId, at: SimTime) {
        if let Some(t) = tl.get_mut(p.0) {
            t.touch(at);
        }
    }
    fn bucket(
        windows: &mut BTreeMap<u64, WindowRow>,
        at: SimTime,
        window: u64,
    ) -> &mut WindowRow {
        let start = (at.ticks() / window) * window;
        windows.entry(start).or_insert_with(|| WindowRow {
            start: SimTime::from_ticks(start),
            ..WindowRow::default()
        })
    }

    for ev in trace.events() {
        match ev {
            TraceEvent::Send { at, from, .. } => {
                if let Some(t) = timelines.get_mut(from.0) {
                    t.sends += 1;
                }
                touch(&mut timelines, *from, *at);
                bucket(&mut windows, *at, window).sends += 1;
            }
            TraceEvent::Deliver { at, to, .. } => {
                if let Some(t) = timelines.get_mut(to.0) {
                    t.deliveries += 1;
                }
                touch(&mut timelines, *to, *at);
                bucket(&mut windows, *at, window).deliveries += 1;
            }
            TraceEvent::Drop { at, to, reason, .. } => {
                if let Some(t) = timelines.get_mut(to.0) {
                    t.drops += 1;
                }
                touch(&mut timelines, *to, *at);
                *drop_breakdown.entry(reason.name()).or_insert(0) += 1;
                bucket(&mut windows, *at, window).drops += 1;
            }
            TraceEvent::TimerFired { at, process } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    t.timers += 1;
                }
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::Crash { at, process } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    t.crashes += 1;
                }
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::Restart { at, process } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    t.restarts += 1;
                }
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::Persist { at, process, .. } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    t.persists += 1;
                }
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::SyncOk { at, process, .. }
            | TraceEvent::Recover { at, process, .. } => {
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::SyncLost { at, process, lost } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    t.storage_lost += lost;
                }
                touch(&mut timelines, *process, *at);
            }
            TraceEvent::Decide { at, process, .. } => {
                if let Some(t) = timelines.get_mut(process.0) {
                    if t.decided_at.is_none() {
                        t.decided_at = Some(*at);
                    }
                }
                touch(&mut timelines, *process, *at);
                decision_latencies.push((*process, *at));
            }
            TraceEvent::Retransmit { at, from, .. } => {
                if let Some(t) = timelines.get_mut(from.0) {
                    t.retransmits += 1;
                }
                touch(&mut timelines, *from, *at);
            }
            TraceEvent::Evict { at, from, .. } => {
                touch(&mut timelines, *from, *at);
            }
            TraceEvent::Stalled { at, idle_since } => {
                stalled = Some((*at, *idle_since));
            }
        }
    }

    TraceAnalysis {
        timelines,
        drop_breakdown,
        windows: windows.into_values().collect(),
        decision_latencies,
        stalled,
    }
}

/// Walks the causal critical path behind `process`'s (first) decision.
///
/// Starting from the decision event, repeatedly finds the latest
/// delivery *to* the current process strictly before the current
/// position in the trace, then hops to that message's sender. The walk
/// moves strictly backwards through the trace, so it terminates; the
/// returned hops are in causal (earliest-first) order. Empty when the
/// process never decided or decided without receiving anything.
pub fn decision_critical_path(trace: &Trace, process: ProcessId) -> Vec<CriticalHop> {
    let events = trace.events();
    let Some(mut idx) = events.iter().position(
        |e| matches!(e, TraceEvent::Decide { process: p, .. } if *p == process),
    ) else {
        return Vec::new();
    };
    let mut current = process;
    let mut hops = Vec::new();
    loop {
        let prev = events[..idx].iter().enumerate().rev().find_map(|(i, e)| {
            match e {
                TraceEvent::Deliver { at, from, to, .. } if *to == current => {
                    Some((i, *from, *to, *at))
                }
                _ => None,
            }
        });
        match prev {
            Some((i, from, to, at)) => {
                hops.push(CriticalHop { from, to, at });
                current = from;
                idx = i;
            }
            None => break,
        }
    }
    hops.reverse();
    hops
}

/// Total drops recorded in an analysis, across all reasons.
pub fn total_drops(analysis: &TraceAnalysis) -> u64 {
    analysis.drop_breakdown.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DropReason, TraceLevel};

    fn t(ticks: u64) -> SimTime {
        SimTime::from_ticks(ticks)
    }

    fn sample_trace() -> Trace {
        let mut tr = Trace::new(TraceLevel::Events);
        tr.push(TraceEvent::Send { at: t(1), from: ProcessId(0), to: ProcessId(1), payload: None });
        tr.push(TraceEvent::Send { at: t(1), from: ProcessId(0), to: ProcessId(2), payload: None });
        tr.push(TraceEvent::Drop { at: t(2), from: ProcessId(0), to: ProcessId(2), reason: DropReason::Loss });
        tr.push(TraceEvent::Deliver { at: t(3), from: ProcessId(0), to: ProcessId(1), payload: None });
        tr.push(TraceEvent::Send { at: t(3), from: ProcessId(1), to: ProcessId(2), payload: None });
        tr.push(TraceEvent::Deliver { at: t(5), from: ProcessId(1), to: ProcessId(2), payload: None });
        tr.push(TraceEvent::Decide { at: t(6), process: ProcessId(2), value: None });
        tr
    }

    #[test]
    fn timelines_count_per_process() {
        let a = analyze(&sample_trace(), 3, 10);
        assert_eq!(a.timelines[0].sends, 2);
        assert_eq!(a.timelines[1].deliveries, 1);
        assert_eq!(a.timelines[1].sends, 1);
        assert_eq!(a.timelines[2].deliveries, 1);
        assert_eq!(a.timelines[2].drops, 1);
        assert_eq!(a.timelines[2].decided_at, Some(t(6)));
        assert_eq!(a.timelines[0].first_activity, Some(t(1)));
        assert_eq!(a.timelines[2].last_activity, Some(t(6)));
    }

    #[test]
    fn drop_breakdown_by_reason() {
        let a = analyze(&sample_trace(), 3, 10);
        assert_eq!(a.drop_breakdown.get("loss"), Some(&1));
        assert_eq!(total_drops(&a), 1);
    }

    #[test]
    fn windows_bucket_by_time() {
        let a = analyze(&sample_trace(), 3, 4);
        // Window [0,4): sends at t1,t1,t3; deliver at t3; drop at t2.
        // Window [4,8): deliver at t5.
        assert_eq!(a.windows.len(), 2);
        assert_eq!(a.windows[0].start, t(0));
        assert_eq!(a.windows[0].sends, 3);
        assert_eq!(a.windows[0].deliveries, 1);
        assert_eq!(a.windows[0].drops, 1);
        assert_eq!(a.windows[1].start, t(4));
        assert_eq!(a.windows[1].deliveries, 1);
    }

    #[test]
    fn critical_path_walks_back_to_origin() {
        let path = decision_critical_path(&sample_trace(), ProcessId(2));
        // p2 decided after hearing from p1, who heard from p0.
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].from, ProcessId(0));
        assert_eq!(path[0].to, ProcessId(1));
        assert_eq!(path[1].from, ProcessId(1));
        assert_eq!(path[1].to, ProcessId(2));
    }

    #[test]
    fn critical_path_empty_without_decision() {
        assert!(decision_critical_path(&sample_trace(), ProcessId(0)).is_empty());
    }

    #[test]
    fn decision_latencies_recorded() {
        let a = analyze(&sample_trace(), 3, 10);
        assert_eq!(a.decision_latencies, vec![(ProcessId(2), t(6))]);
    }
}
