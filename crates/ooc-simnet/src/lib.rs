//! # ooc-simnet
//!
//! A deterministic discrete-event message-passing network simulator, built as
//! the substrate for the *Object Oriented Consensus* reproduction.
//!
//! The simulator provides two execution engines:
//!
//! * [`Sim`] — an **asynchronous** event-driven engine. Processes implement
//!   [`Process`] and react to message deliveries and timers. Message delays
//!   are sampled from a configurable [`NetworkConfig`] or controlled by an
//!   [`Adversary`]. Crash/restart faults are injected from a [`FaultPlan`].
//!   Used by the Ben-Or and Raft reproductions.
//! * [`SyncSim`] — a **lock-step synchronous** round engine. Processes
//!   implement [`SyncProcess`]; in every round each process consumes the
//!   messages sent to it in the previous round and emits per-recipient
//!   messages (which permits Byzantine equivocation). Used by Phase-King.
//!
//! Every run is a pure function of `(processes, configuration, seed)`:
//! identical inputs produce identical traces, so any failure reproduces from
//! a one-line seed report.
//!
//! ## Example
//!
//! ```
//! use ooc_simnet::{Process, Context, ProcessId, Sim, NetworkConfig, RunLimit, TimerId};
//!
//! /// Every process broadcasts a ping, decides on the first id it hears.
//! struct Echo;
//! impl Process for Echo {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u64, u64>) {
//!         let me = ctx.me().index() as u64;
//!         ctx.broadcast(me);
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<'_, u64, u64>, _from: ProcessId, msg: u64) {
//!         ctx.decide(msg);
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Context<'_, u64, u64>, _t: TimerId) {}
//! }
//!
//! let mut sim = Sim::builder(NetworkConfig::default())
//!     .seed(7)
//!     .processes((0..4).map(|_| Box::new(Echo) as Box<dyn Process<Msg = u64, Output = u64>>))
//!     .build();
//! let outcome = sim.run(RunLimit::default());
//! assert!(outcome.all_decided());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod byzantine;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod process;
pub mod reliable;
pub mod rng;
pub mod sim;
pub mod state_adversary;
pub mod stats;
pub mod storage;
pub mod sync;
pub mod time;
pub mod trace;

mod id;
mod queue;

pub use adversary::{Adversary, Decision, FnAdversary, NetworkAdversary, SwitchAfter};
pub use byzantine::{ByzantineNode, SyncStrategy};
pub use fault::{CrashSpec, FaultPlan};
pub use id::{ProcessId, TimerId};
pub use metrics::{CounterId, HistogramId, MetricsRegistry, TickHistogram};
pub use network::{DelayModel, FlappingPartition, LinkOverride, NetworkConfig, PartitionWindow};
pub use process::{Context, Process, ProtocolObservation};
pub use reliable::{ReliabilityPolicy, RetransmitConfig};
pub use rng::SplitMix64;
pub use sim::{
    FanoutKind, RunLimit, RunOutcome, SchedulerKind, Sim, SimBuilder, StopReason,
    QUEUE_DEPTH_SAMPLE_DEFAULT,
};
pub use state_adversary::{
    QuorumStarveAdversary, StateAdversary, StateView, VoteSplitStateAdversary,
};
pub use stats::RunStats;
pub use storage::{StableStore, StorageFaultPlan, StoragePolicy, StorageRecord};
pub use sync::{SyncContext, SyncProcess, SyncRunOutcome, SyncSim};
pub use time::{ClockModel, SimDuration, SimTime};
pub use trace::analyze::{
    analyze, decision_critical_path, CriticalHop, ProcessTimeline, TraceAnalysis, WindowRow,
};
pub use trace::{DropReason, Trace, TraceEvent, TraceLevel, TraceRing};
