//! Crash/restart fault injection.

use crate::time::SimTime;
use crate::ProcessId;
use serde::{Deserialize, Serialize};

/// When a process should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashSpec {
    /// Crash at the given simulated instant.
    AtTime(SimTime),
    /// Crash immediately after handling the given number of events
    /// (start / message / timer callbacks), counted per process.
    AfterEvents(u64),
}

/// A deterministic plan of crashes, restarts and recoveries.
///
/// The plan is part of the run's identity: re-running with the same plan and
/// seed reproduces the execution exactly.
///
/// ```
/// use ooc_simnet::{FaultPlan, ProcessId, SimTime};
/// let plan = FaultPlan::new()
///     .crash_at(ProcessId(2), SimTime::from_ticks(50))
///     .restart_at(ProcessId(2), SimTime::from_ticks(200));
/// assert_eq!(plan.crashes().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    crashes: Vec<(ProcessId, CrashSpec)>,
    restarts: Vec<(ProcessId, SimTime)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `p` to crash at time `t`.
    pub fn crash_at(mut self, p: ProcessId, t: SimTime) -> Self {
        self.crashes.push((p, CrashSpec::AtTime(t)));
        self
    }

    /// Schedules `p` to crash after it has handled `events` callbacks.
    pub fn crash_after_events(mut self, p: ProcessId, events: u64) -> Self {
        self.crashes.push((p, CrashSpec::AfterEvents(events)));
        self
    }

    /// Schedules `p` to restart (recover) at time `t`. A restart of a
    /// process that is not crashed at `t` is a no-op.
    pub fn restart_at(mut self, p: ProcessId, t: SimTime) -> Self {
        self.restarts.push((p, t));
        self
    }

    /// Crashes the last `count` processes of an `n`-process network at the
    /// given time — the standard "t crash failures" workload shape.
    pub fn crash_tail(mut self, n: usize, count: usize, t: SimTime) -> Self {
        let count = count.min(n);
        for i in (n - count)..n {
            self.crashes.push((ProcessId(i), CrashSpec::AtTime(t)));
        }
        self
    }

    /// Scheduled crashes.
    pub fn crashes(&self) -> &[(ProcessId, CrashSpec)] {
        &self.crashes
    }

    /// Scheduled restarts.
    pub fn restarts(&self) -> &[(ProcessId, SimTime)] {
        &self.restarts
    }

    /// The event-count crash threshold for `p`, if one is scheduled.
    pub fn event_crash_threshold(&self, p: ProcessId) -> Option<u64> {
        self.crashes
            .iter()
            .filter_map(|&(q, spec)| match spec {
                CrashSpec::AfterEvents(k) if q == p => Some(k),
                _ => None,
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_tail_targets_last_processes() {
        let plan = FaultPlan::new().crash_tail(5, 2, SimTime::from_ticks(10));
        let ids: Vec<_> = plan.crashes().iter().map(|&(p, _)| p.index()).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn crash_tail_clamps_count() {
        let plan = FaultPlan::new().crash_tail(3, 99, SimTime::ZERO);
        assert_eq!(plan.crashes().len(), 3);
    }

    #[test]
    fn event_threshold_takes_minimum() {
        let plan = FaultPlan::new()
            .crash_after_events(ProcessId(1), 9)
            .crash_after_events(ProcessId(1), 4);
        assert_eq!(plan.event_crash_threshold(ProcessId(1)), Some(4));
        assert_eq!(plan.event_crash_threshold(ProcessId(2)), None);
    }

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .restart_at(ProcessId(0), SimTime::from_ticks(9));
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.restarts().len(), 1);
    }
}
