//! Crash/restart fault injection.

use crate::time::SimTime;
use crate::ProcessId;
use serde::{Deserialize, Serialize};

/// When a process should crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashSpec {
    /// Crash at the given simulated instant.
    AtTime(SimTime),
    /// Crash immediately after handling the given number of events
    /// (start / message / timer callbacks), counted per process.
    ///
    /// Crash atomicity: the threshold is checked only *after* the
    /// crossing invocation's effects have been applied, so the crashing
    /// event's outgoing messages, timer updates, decision **and storage
    /// writes** all land before the crash. Handler invocations are
    /// atomic — a crash never tears one in half. Storage-fault semantics
    /// ([`StoragePolicy`](crate::StoragePolicy)) are defined relative to
    /// this boundary: the crash's storage loss applies to a store that
    /// already contains the final invocation's writes.
    AfterEvents(u64),
}

/// A deterministic plan of crashes, restarts and recoveries.
///
/// The plan is part of the run's identity: re-running with the same plan and
/// seed reproduces the execution exactly.
///
/// ```
/// use ooc_simnet::{FaultPlan, ProcessId, SimTime};
/// let plan = FaultPlan::new()
///     .crash_at(ProcessId(2), SimTime::from_ticks(50))
///     .restart_at(ProcessId(2), SimTime::from_ticks(200));
/// assert_eq!(plan.crashes().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    crashes: Vec<(ProcessId, CrashSpec)>,
    restarts: Vec<(ProcessId, SimTime)>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules `p` to crash at time `t`.
    pub fn crash_at(mut self, p: ProcessId, t: SimTime) -> Self {
        self.crashes.push((p, CrashSpec::AtTime(t)));
        self
    }

    /// Schedules `p` to crash after it has handled `events` callbacks.
    pub fn crash_after_events(mut self, p: ProcessId, events: u64) -> Self {
        self.crashes.push((p, CrashSpec::AfterEvents(events)));
        self
    }

    /// Schedules `p` to restart (recover) at time `t`. A restart of a
    /// process that is not crashed at `t` is a no-op.
    pub fn restart_at(mut self, p: ProcessId, t: SimTime) -> Self {
        self.restarts.push((p, t));
        self
    }

    /// Crashes the last `count` processes of an `n`-process network at the
    /// given time — the standard "t crash failures" workload shape.
    pub fn crash_tail(mut self, n: usize, count: usize, t: SimTime) -> Self {
        let count = count.min(n);
        for i in (n - count)..n {
            self.crashes.push((ProcessId(i), CrashSpec::AtTime(t)));
        }
        self
    }

    /// Scheduled crashes.
    pub fn crashes(&self) -> &[(ProcessId, CrashSpec)] {
        &self.crashes
    }

    /// Scheduled restarts.
    pub fn restarts(&self) -> &[(ProcessId, SimTime)] {
        &self.restarts
    }

    /// The event-count crash threshold for `p`, if one is scheduled.
    pub fn event_crash_threshold(&self, p: ProcessId) -> Option<u64> {
        self.crashes
            .iter()
            .filter_map(|&(q, spec)| match spec {
                CrashSpec::AfterEvents(k) if q == p => Some(k),
                _ => None,
            })
            .min()
    }

    /// `true` when the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.restarts.is_empty()
    }

    /// Asserts that this plan fits the **crash-stop** failure model:
    /// crashed processes never come back.
    ///
    /// Protocols analyzed under crash-stop (Ben-Or, Phase-King) have no
    /// recovery story — their `on_restart` default would silently resume
    /// with full pre-crash state, which is a model violation, not a
    /// scenario. Harnesses for such protocols call this before running.
    ///
    /// # Panics
    /// Panics when the plan contains restarts, naming `protocol`.
    pub fn assert_crash_stop(&self, protocol: &str) {
        assert!(
            self.restarts.is_empty(),
            "{protocol} is a crash-stop protocol: FaultPlan restarts are not \
             supported (a restarted process would silently keep its full \
             pre-crash state); remove the restarts or use a crash-recovery \
             protocol such as Raft"
        );
    }

    /// Total number of scheduled crashes.
    pub fn crash_count(&self) -> usize {
        self.crashes.len()
    }

    /// Checks the plan for restarts that can never take effect.
    ///
    /// Rejected shapes:
    ///
    /// * a restart for a process with **no crash scheduled at all** — the
    ///   engine's restart handler would be invoked on a live process (a
    ///   silent no-op today, pinned by tests, but always a plan bug);
    /// * a restart scheduled **strictly before** every time-scheduled crash
    ///   of its process, with no event-count crash that could fire earlier.
    ///
    /// A restart at the *same tick* as a crash stays valid: the engine
    /// schedules crash events before restarts, so the tie resolves
    /// crash-first and the process ends the tick alive (pinned by
    /// `overlapping_crash_and_restart_at_same_tick_are_both_kept`).
    /// Restarts paired with [`CrashSpec::AfterEvents`] are always accepted
    /// — the crash tick is not knowable from the plan alone.
    ///
    /// [`Sim`](crate::Sim) construction calls this and panics on `Err`, so
    /// invalid plans fail fast instead of silently dropping their faults.
    pub fn validate(&self) -> Result<(), String> {
        for &(p, t) in &self.restarts {
            let mut has_crash = false;
            let mut has_event_crash = false;
            let mut earliest_at_time: Option<SimTime> = None;
            for &(q, spec) in &self.crashes {
                if q != p {
                    continue;
                }
                has_crash = true;
                match spec {
                    CrashSpec::AfterEvents(_) => has_event_crash = true,
                    CrashSpec::AtTime(ct) => {
                        earliest_at_time =
                            Some(earliest_at_time.map_or(ct, |cur: SimTime| cur.min(ct)));
                    }
                }
            }
            if !has_crash {
                return Err(format!(
                    "FaultPlan: restart of process {} at {t} but no crash is \
                     scheduled for it — the restart could never take effect",
                    p.index()
                ));
            }
            if !has_event_crash {
                if let Some(ct) = earliest_at_time {
                    if t < ct {
                        return Err(format!(
                            "FaultPlan: restart of process {} at {t} precedes its \
                             earliest crash at {ct} — the restart could never take \
                             effect",
                            p.index()
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    // ---- shrink hooks -------------------------------------------------
    //
    // The campaign engine's delta-debugging shrinker works by deleting one
    // scheduled fault at a time and re-running; these return the mutated
    // plan without disturbing the order of the surviving entries (order is
    // part of a run's identity through event sequence numbers).

    /// A copy of the plan with crash number `idx` removed; `None` when
    /// `idx` is out of range.
    ///
    /// Restarts orphaned by the removal (their process no longer has any
    /// scheduled crash) are pruned too, so shrink candidates stay
    /// [valid](FaultPlan::validate) by construction.
    pub fn without_crash(&self, idx: usize) -> Option<FaultPlan> {
        if idx >= self.crashes.len() {
            return None;
        }
        let mut plan = self.clone();
        plan.crashes.remove(idx);
        plan.restarts
            .retain(|&(p, _)| plan.crashes.iter().any(|&(q, _)| q == p));
        Some(plan)
    }

    /// A copy of the plan with restart number `idx` removed; `None` when
    /// `idx` is out of range.
    pub fn without_restart(&self, idx: usize) -> Option<FaultPlan> {
        if idx >= self.restarts.len() {
            return None;
        }
        let mut plan = self.clone();
        plan.restarts.remove(idx);
        Some(plan)
    }

    /// A copy of the plan with every fault aimed at a process id `>= n`
    /// removed — used when the shrinker reduces the network size.
    pub fn restricted_to(&self, n: usize) -> FaultPlan {
        FaultPlan {
            crashes: self
                .crashes
                .iter()
                .copied()
                .filter(|(p, _)| p.index() < n)
                .collect(),
            restarts: self
                .restarts
                .iter()
                .copied()
                .filter(|(p, _)| p.index() < n)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_tail_targets_last_processes() {
        let plan = FaultPlan::new().crash_tail(5, 2, SimTime::from_ticks(10));
        let ids: Vec<_> = plan.crashes().iter().map(|&(p, _)| p.index()).collect();
        assert_eq!(ids, vec![3, 4]);
    }

    #[test]
    fn crash_tail_clamps_count() {
        let plan = FaultPlan::new().crash_tail(3, 99, SimTime::ZERO);
        assert_eq!(plan.crashes().len(), 3);
    }

    #[test]
    fn event_threshold_takes_minimum() {
        let plan = FaultPlan::new()
            .crash_after_events(ProcessId(1), 9)
            .crash_after_events(ProcessId(1), 4);
        assert_eq!(plan.event_crash_threshold(ProcessId(1)), Some(4));
        assert_eq!(plan.event_crash_threshold(ProcessId(2)), None);
    }

    #[test]
    fn crash_tail_with_zero_count_is_empty() {
        let plan = FaultPlan::new().crash_tail(5, 0, SimTime::from_ticks(10));
        assert!(plan.crashes().is_empty());
        assert!(plan.is_empty());
    }

    #[test]
    fn crash_tail_with_zero_n_is_empty() {
        // count > n == 0 must clamp to nothing, not underflow in `n - count`.
        let plan = FaultPlan::new().crash_tail(0, 3, SimTime::ZERO);
        assert!(plan.crashes().is_empty());
    }

    #[test]
    fn overlapping_crash_and_restart_at_same_tick_are_both_kept() {
        // The plan records both; the engine resolves the tie (crash events
        // are scheduled before restarts, so the process ends up alive).
        let t = SimTime::from_ticks(7);
        let plan = FaultPlan::new()
            .crash_at(ProcessId(1), t)
            .restart_at(ProcessId(1), t);
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.restarts().len(), 1);
        assert_eq!(plan.restarts()[0], (ProcessId(1), t));
    }

    #[test]
    fn without_crash_removes_exactly_one() {
        let plan = FaultPlan::new().crash_tail(4, 3, SimTime::from_ticks(5));
        let shrunk = plan.without_crash(1).unwrap();
        assert_eq!(shrunk.crash_count(), 2);
        let ids: Vec<_> = shrunk.crashes().iter().map(|&(p, _)| p.index()).collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(plan.without_crash(3).is_none());
    }

    #[test]
    fn without_restart_removes_exactly_one() {
        let plan = FaultPlan::new()
            .restart_at(ProcessId(0), SimTime::from_ticks(3))
            .restart_at(ProcessId(1), SimTime::from_ticks(4));
        let shrunk = plan.without_restart(0).unwrap();
        assert_eq!(shrunk.restarts(), &[(ProcessId(1), SimTime::from_ticks(4))]);
        assert!(plan.without_restart(2).is_none());
    }

    #[test]
    fn restricted_to_drops_out_of_range_processes() {
        let plan = FaultPlan::new()
            .crash_at(ProcessId(1), SimTime::from_ticks(5))
            .crash_at(ProcessId(4), SimTime::from_ticks(5))
            .restart_at(ProcessId(4), SimTime::from_ticks(9));
        let small = plan.restricted_to(3);
        assert_eq!(small.crash_count(), 1);
        assert!(small.restarts().is_empty());
    }

    #[test]
    fn assert_crash_stop_accepts_crash_only_plans() {
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .assert_crash_stop("test-protocol");
        FaultPlan::new().assert_crash_stop("test-protocol");
    }

    #[test]
    #[should_panic(expected = "crash-stop protocol")]
    fn assert_crash_stop_rejects_restarts() {
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .restart_at(ProcessId(0), SimTime::from_ticks(9))
            .assert_crash_stop("test-protocol");
    }

    #[test]
    fn validate_accepts_well_formed_plans() {
        FaultPlan::new().validate().unwrap();
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .restart_at(ProcessId(0), SimTime::from_ticks(9))
            .validate()
            .unwrap();
        // Same-tick crash+restart is pinned valid (engine resolves
        // crash-first; the process ends the tick alive).
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(7))
            .restart_at(ProcessId(0), SimTime::from_ticks(7))
            .validate()
            .unwrap();
        // Event-count crashes have no knowable tick: any restart time is
        // accepted.
        FaultPlan::new()
            .crash_after_events(ProcessId(1), 3)
            .restart_at(ProcessId(1), SimTime::from_ticks(1))
            .validate()
            .unwrap();
    }

    #[test]
    fn validate_rejects_restart_without_any_crash() {
        let err = FaultPlan::new()
            .restart_at(ProcessId(2), SimTime::from_ticks(9))
            .validate()
            .unwrap_err();
        assert!(err.contains("no crash is"), "unexpected message: {err}");
        // A crash for a *different* process does not help.
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .restart_at(ProcessId(2), SimTime::from_ticks(9))
            .validate()
            .unwrap_err();
    }

    #[test]
    fn validate_rejects_restart_before_earliest_crash() {
        let err = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(10))
            .restart_at(ProcessId(0), SimTime::from_ticks(9))
            .validate()
            .unwrap_err();
        assert!(err.contains("precedes"), "unexpected message: {err}");
        // The *earliest* of several crashes is what counts.
        FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(10))
            .crash_at(ProcessId(0), SimTime::from_ticks(4))
            .restart_at(ProcessId(0), SimTime::from_ticks(6))
            .validate()
            .unwrap();
    }

    #[test]
    fn without_crash_prunes_orphaned_restarts() {
        let plan = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .crash_at(ProcessId(1), SimTime::from_ticks(5))
            .restart_at(ProcessId(0), SimTime::from_ticks(9))
            .restart_at(ProcessId(1), SimTime::from_ticks(9));
        // Removing p0's only crash also removes p0's restart.
        let shrunk = plan.without_crash(0).unwrap();
        assert_eq!(shrunk.crash_count(), 1);
        assert_eq!(shrunk.restarts(), &[(ProcessId(1), SimTime::from_ticks(9))]);
        shrunk.validate().unwrap();
        // With a second crash for p0, the restart survives.
        let two = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .crash_after_events(ProcessId(0), 3)
            .restart_at(ProcessId(0), SimTime::from_ticks(9));
        let kept = two.without_crash(0).unwrap();
        assert_eq!(kept.restarts().len(), 1);
        kept.validate().unwrap();
    }

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::new()
            .crash_at(ProcessId(0), SimTime::from_ticks(5))
            .restart_at(ProcessId(0), SimTime::from_ticks(9));
        assert_eq!(plan.crashes().len(), 1);
        assert_eq!(plan.restarts().len(), 1);
    }
}
