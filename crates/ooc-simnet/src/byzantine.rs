//! Byzantine behaviour for the synchronous engine.
//!
//! A Byzantine process is just a [`SyncProcess`] that misbehaves. The
//! [`ByzantineNode`] adapter packages the classic adversarial strategies so
//! experiments can mix honest and Byzantine processes in one network via
//! boxed trait objects.

use crate::rng::SplitMix64;
use crate::sync::{SyncContext, SyncProcess};
use crate::ProcessId;
use std::fmt::Debug;
use std::marker::PhantomData;

/// A canned misbehaviour for a Byzantine process.
pub enum SyncStrategy<M> {
    /// Send nothing, ever (crash-like, but from round 0).
    Silent,
    /// Broadcast the same fixed message every round.
    Fixed(M),
    /// Equivocate: send `low` to the lower-id half of the network and
    /// `high` to the upper half — the classic split attack.
    Equivocate {
        /// Message for recipients with id `< n/2`.
        low: M,
        /// Message for recipients with id `>= n/2`.
        high: M,
    },
    /// Send each recipient an independently, uniformly chosen message from
    /// the list each round.
    RandomOf(Vec<M>),
    /// Fully custom: called once per `(round, recipient)`, returning the
    /// message to send (or `None` for silence).
    #[allow(clippy::type_complexity)]
    Custom(Box<dyn FnMut(u64, ProcessId, &mut SplitMix64) -> Option<M>>),
}

impl<M: Debug> Debug for SyncStrategy<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncStrategy::Silent => write!(f, "Silent"),
            SyncStrategy::Fixed(m) => f.debug_tuple("Fixed").field(m).finish(),
            SyncStrategy::Equivocate { low, high } => f
                .debug_struct("Equivocate")
                .field("low", low)
                .field("high", high)
                .finish(),
            SyncStrategy::RandomOf(ms) => f.debug_tuple("RandomOf").field(ms).finish(),
            SyncStrategy::Custom(_) => write!(f, "Custom(..)"),
        }
    }
}

/// A Byzantine process driven by a [`SyncStrategy`]. It never decides.
///
/// ```
/// use ooc_simnet::{ByzantineNode, SyncStrategy};
/// // A node that always claims the value 1, regardless of the protocol:
/// let node: ByzantineNode<u64, u64> = ByzantineNode::new(SyncStrategy::Fixed(1));
/// # let _ = node;
/// ```
pub struct ByzantineNode<M, O> {
    strategy: SyncStrategy<M>,
    _output: PhantomData<fn() -> O>,
}

impl<M: Debug, O> Debug for ByzantineNode<M, O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByzantineNode")
            .field("strategy", &self.strategy)
            .finish()
    }
}

impl<M, O> ByzantineNode<M, O> {
    /// Wraps a strategy.
    pub fn new(strategy: SyncStrategy<M>) -> Self {
        ByzantineNode {
            strategy,
            _output: PhantomData,
        }
    }
}

impl<M, O> SyncProcess for ByzantineNode<M, O>
where
    M: Clone + Debug,
    O: Clone + Debug + PartialEq,
{
    type Msg = M;
    type Output = O;

    fn on_round(
        &mut self,
        round: u64,
        _inbox: &[(ProcessId, M)],
        ctx: &mut SyncContext<'_, M, O>,
    ) {
        let n = ctx.n();
        for r in 0..n {
            let recipient = ProcessId(r);
            let msg = match &mut self.strategy {
                SyncStrategy::Silent => None,
                SyncStrategy::Fixed(m) => Some(m.clone()),
                SyncStrategy::Equivocate { low, high } => {
                    if r < n / 2 {
                        Some(low.clone())
                    } else {
                        Some(high.clone())
                    }
                }
                SyncStrategy::RandomOf(choices) => {
                    if choices.is_empty() {
                        None
                    } else {
                        let i = ctx.rng().below(choices.len() as u64) as usize;
                        Some(choices[i].clone())
                    }
                }
                SyncStrategy::Custom(f) => f(round, recipient, ctx.rng()),
            };
            if let Some(m) = msg {
                ctx.send(recipient, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::SyncSim;

    /// Honest node that records everything it hears.
    #[derive(Debug, Default)]
    struct Listener {
        heard: Vec<(u64, ProcessId, u64)>,
    }
    impl SyncProcess for Listener {
        type Msg = u64;
        type Output = u64;
        fn on_round(
            &mut self,
            round: u64,
            inbox: &[(ProcessId, u64)],
            _ctx: &mut SyncContext<'_, u64, u64>,
        ) {
            for &(from, v) in inbox {
                self.heard.push((round, from, v));
            }
        }
    }

    type Node = Box<dyn SyncProcess<Msg = u64, Output = u64>>;

    fn network(strategy: SyncStrategy<u64>) -> SyncSim<Node> {
        let procs: Vec<Node> = vec![
            Box::new(Listener::default()),
            Box::new(Listener::default()),
            Box::new(Listener::default()),
            Box::new(ByzantineNode::new(strategy)),
        ];
        SyncSim::new(procs, 9)
    }

    #[test]
    fn silent_sends_nothing() {
        let mut sim = network(SyncStrategy::Silent);
        let out = sim.run(3);
        assert_eq!(out.messages_sent, 0);
    }

    #[test]
    fn fixed_broadcasts_every_round() {
        let mut sim = network(SyncStrategy::Fixed(7));
        let out = sim.run(3);
        assert_eq!(out.messages_sent, 3 * 4);
    }

    #[test]
    fn equivocate_sends_to_everyone() {
        let mut sim = network(SyncStrategy::Equivocate { low: 0, high: 1 });
        let out = sim.run(2);
        assert_eq!(out.messages_sent, 2 * 4);
    }

    #[test]
    fn equivocate_payloads_reach_correct_halves() {
        // Homogeneous network of ByzantineNode so we can observe sends only.
        #[derive(Debug, Default)]
        struct Probe {
            low_heard: Vec<u64>,
            high_heard: Vec<u64>,
        }
        impl SyncProcess for Probe {
            type Msg = u64;
            type Output = u64;
            fn on_round(
                &mut self,
                _round: u64,
                inbox: &[(ProcessId, u64)],
                ctx: &mut SyncContext<'_, u64, u64>,
            ) {
                for &(_, v) in inbox {
                    if ctx.me().index() < ctx.n() / 2 {
                        self.low_heard.push(v);
                    } else {
                        self.high_heard.push(v);
                    }
                }
            }
        }
        // Use an enum wrapper to mix the two concrete types without boxing,
        // exercising the non-boxed path too.
        #[derive(Debug)]
        enum Mixed {
            Probe(Probe),
            Byz(ByzantineNode<u64, u64>),
        }
        impl SyncProcess for Mixed {
            type Msg = u64;
            type Output = u64;
            fn on_round(
                &mut self,
                round: u64,
                inbox: &[(ProcessId, u64)],
                ctx: &mut SyncContext<'_, u64, u64>,
            ) {
                match self {
                    Mixed::Probe(p) => p.on_round(round, inbox, ctx),
                    Mixed::Byz(b) => b.on_round(round, inbox, ctx),
                }
            }
        }
        let procs = vec![
            Mixed::Probe(Probe::default()),
            Mixed::Probe(Probe::default()),
            Mixed::Probe(Probe::default()),
            Mixed::Byz(ByzantineNode::new(SyncStrategy::Equivocate { low: 10, high: 20 })),
        ];
        let mut sim = SyncSim::new(procs, 3);
        sim.run(2);
        for i in 0..3 {
            if let Mixed::Probe(p) = sim.process(ProcessId(i)) {
                if i < 2 {
                    assert!(p.low_heard.iter().all(|&v| v == 10), "p{i}: {:?}", p.low_heard);
                    assert!(!p.low_heard.is_empty());
                } else {
                    assert!(p.high_heard.iter().all(|&v| v == 20));
                    assert!(!p.high_heard.is_empty());
                }
            }
        }
    }

    #[test]
    fn random_of_picks_from_choices() {
        let mut sim = network(SyncStrategy::RandomOf(vec![3, 4]));
        let out = sim.run(5);
        assert_eq!(out.messages_sent, 5 * 4);
    }

    #[test]
    fn random_of_empty_is_silent() {
        let mut sim = network(SyncStrategy::RandomOf(vec![]));
        let out = sim.run(3);
        assert_eq!(out.messages_sent, 0);
    }

    #[test]
    fn custom_strategy_controls_everything() {
        // Sends round number only to even recipients.
        let strategy =
            SyncStrategy::Custom(Box::new(|round, to: ProcessId, _rng: &mut SplitMix64| {
                to.index().is_multiple_of(2).then_some(round)
            }));
        let mut sim = network(strategy);
        let out = sim.run(4);
        assert_eq!(out.messages_sent, 4 * 2);
    }
}
