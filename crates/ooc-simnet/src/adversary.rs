//! Message scheduling adversaries.
//!
//! The asynchronous engine asks an [`Adversary`] for a [`Decision`] about
//! every message it is about to route. The default,
//! [`NetworkAdversary`], just samples the stochastic [`NetworkConfig`];
//! custom adversaries can inspect payloads and deliberately reorder, delay
//! or drop messages — the standard tool for attacking liveness claims
//! (e.g. keeping Ben-Or's votes split for as long as possible).

use crate::network::NetworkConfig;
use crate::rng::SplitMix64;
use crate::time::{SimDuration, SimTime};
use crate::ProcessId;

/// What to do with a message in flight.
///
/// The three drop variants all kill the message; they differ only in the
/// *cause* recorded against the run's `messages.dropped.<reason>` metrics
/// and trace, so gray-failure reports can distinguish an active partition
/// from stochastic loss from a deliberate attack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Deliver after the given transit delay (clamped to ≥ 1 tick for
    /// messages between distinct processes).
    DeliverAfter(SimDuration),
    /// Deliberately drop the message (recorded as an adversary drop).
    Drop,
    /// Drop because the link crosses an active partition (recorded under
    /// `messages.dropped.partition`).
    DropPartition,
    /// Drop by stochastic link loss (recorded under
    /// `messages.dropped.loss`).
    DropLoss,
}

impl Decision {
    /// Whether the message is dropped, regardless of the recorded cause.
    pub fn is_drop(&self) -> bool {
        !matches!(self, Decision::DeliverAfter(_))
    }
}

/// Chooses transit fates for messages. Implementations must be
/// deterministic given the provided RNG.
pub trait Adversary<M> {
    /// Decides the fate of a message sent at `at` from `from` to `to`.
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> Decision;

    /// Probability-style duplication hook; the default never duplicates.
    fn duplicate(
        &mut self,
        _at: SimTime,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        _rng: &mut SplitMix64,
    ) -> bool {
        false
    }
}

/// The default adversary: faithfully samples a [`NetworkConfig`]
/// (delays, drops, duplication, partitions).
#[derive(Debug, Clone)]
pub struct NetworkAdversary {
    config: NetworkConfig,
}

impl NetworkAdversary {
    /// Wraps a network configuration.
    pub fn new(config: NetworkConfig) -> Self {
        NetworkAdversary { config }
    }

    /// The wrapped configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }
}

impl<M> Adversary<M> for NetworkAdversary {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        _msg: &M,
        rng: &mut SplitMix64,
    ) -> Decision {
        if self.config.partition_blocks(at, from, to) {
            return Decision::DropPartition;
        }
        let drop_p = self.config.drop_probability_for(from, to);
        if drop_p > 0.0 && rng.chance(drop_p) {
            return Decision::DropLoss;
        }
        Decision::DeliverAfter(self.config.delay_for(from, to).sample(rng))
    }

    fn duplicate(
        &mut self,
        _at: SimTime,
        _from: ProcessId,
        _to: ProcessId,
        _msg: &M,
        rng: &mut SplitMix64,
    ) -> bool {
        self.config.duplicate_probability > 0.0 && rng.chance(self.config.duplicate_probability)
    }
}

/// An adversary defined by a closure — the quickest way to express a
/// targeted attack.
///
/// ```
/// use ooc_simnet::{FnAdversary, Decision, SimDuration};
///
/// // Delay everything process 0 sends by 100 ticks; deliver the rest fast.
/// let adv = FnAdversary::new(|_at, from, _to, _msg: &u32, _rng| {
///     if from.index() == 0 {
///         Decision::DeliverAfter(SimDuration::from_ticks(100))
///     } else {
///         Decision::DeliverAfter(SimDuration::from_ticks(1))
///     }
/// });
/// # let _ = adv;
/// ```
pub struct FnAdversary<M, F>
where
    F: FnMut(SimTime, ProcessId, ProcessId, &M, &mut SplitMix64) -> Decision,
{
    f: F,
    _marker: std::marker::PhantomData<fn(&M)>,
}

impl<M, F> FnAdversary<M, F>
where
    F: FnMut(SimTime, ProcessId, ProcessId, &M, &mut SplitMix64) -> Decision,
{
    /// Wraps a routing closure.
    pub fn new(f: F) -> Self {
        FnAdversary {
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, F> std::fmt::Debug for FnAdversary<M, F>
where
    F: FnMut(SimTime, ProcessId, ProcessId, &M, &mut SplitMix64) -> Decision,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAdversary").finish_non_exhaustive()
    }
}

impl<M, F> Adversary<M> for FnAdversary<M, F>
where
    F: FnMut(SimTime, ProcessId, ProcessId, &M, &mut SplitMix64) -> Decision,
{
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> Decision {
        (self.f)(at, from, to, msg, rng)
    }
}

/// Runs `attack` for every message sent strictly before `until`, then
/// hands routing over to `fallback`.
///
/// Liveness adversaries are only interesting while they are *bounded*:
/// an attack that runs forever trivially kills liveness, so campaign
/// adversaries wrap their attack phase in `SwitchAfter` with a fair
/// fallback, and the checker then demands termination after the switch.
pub struct SwitchAfter<M> {
    until: SimTime,
    attack: Box<dyn Adversary<M>>,
    fallback: Box<dyn Adversary<M>>,
}

impl<M> SwitchAfter<M> {
    /// Attacks before `until`, falls back afterwards.
    pub fn new(until: SimTime, attack: Box<dyn Adversary<M>>, fallback: Box<dyn Adversary<M>>) -> Self {
        SwitchAfter {
            until,
            attack,
            fallback,
        }
    }

    /// Attacks before `until`, then routes fairly over a reliable network.
    pub fn then_fair(until: SimTime, attack: Box<dyn Adversary<M>>) -> Self {
        SwitchAfter::new(
            until,
            attack,
            Box::new(NetworkAdversary::new(NetworkConfig::reliable(1))),
        )
    }
}

impl<M> std::fmt::Debug for SwitchAfter<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwitchAfter").field("until", &self.until).finish_non_exhaustive()
    }
}

impl<M> Adversary<M> for SwitchAfter<M> {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> Decision {
        if at < self.until {
            self.attack.route(at, from, to, msg, rng)
        } else {
            self.fallback.route(at, from, to, msg, rng)
        }
    }

    fn duplicate(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> bool {
        if at < self.until {
            self.attack.duplicate(at, from, to, msg, rng)
        } else {
            self.fallback.duplicate(at, from, to, msg, rng)
        }
    }
}

impl<M> Adversary<M> for Box<dyn Adversary<M>> {
    fn route(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> Decision {
        (**self).route(at, from, to, msg, rng)
    }

    fn duplicate(
        &mut self,
        at: SimTime,
        from: ProcessId,
        to: ProcessId,
        msg: &M,
        rng: &mut SplitMix64,
    ) -> bool {
        (**self).duplicate(at, from, to, msg, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{DelayModel, PartitionWindow};

    #[test]
    fn network_adversary_drops_across_partitions() {
        let cfg = NetworkConfig {
            partitions: vec![PartitionWindow {
                from: SimTime::ZERO,
                until: SimTime::from_ticks(10),
                groups: vec![vec![ProcessId(0)], vec![ProcessId(1)]],
            }],
            ..NetworkConfig::default()
        };
        let mut adv = NetworkAdversary::new(cfg);
        let mut rng = SplitMix64::new(1);
        // Partition drops carry the partition cause, not a generic drop.
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::DropPartition
        );
        assert!(matches!(
            Adversary::<u32>::route(
                &mut adv,
                SimTime::from_ticks(10),
                ProcessId(0),
                ProcessId(1),
                &0,
                &mut rng
            ),
            Decision::DeliverAfter(_)
        ));
    }

    #[test]
    fn network_adversary_respects_drop_probability() {
        let mut adv = NetworkAdversary::new(NetworkConfig {
            drop_probability: 1.0,
            ..NetworkConfig::default()
        });
        let mut rng = SplitMix64::new(1);
        // Stochastic loss carries the loss cause.
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::DropLoss
        );
    }

    #[test]
    fn decision_is_drop_covers_every_cause() {
        assert!(Decision::Drop.is_drop());
        assert!(Decision::DropPartition.is_drop());
        assert!(Decision::DropLoss.is_drop());
        assert!(!Decision::DeliverAfter(SimDuration::from_ticks(1)).is_drop());
    }

    #[test]
    fn network_adversary_honours_link_overrides() {
        use crate::network::LinkOverride;
        let cfg = NetworkConfig::reliable(2)
            .with_link_override(LinkOverride {
                from: ProcessId(0),
                to: ProcessId(1),
                drop_probability: Some(1.0),
                delay: None,
            })
            .with_link_override(LinkOverride {
                from: ProcessId(1),
                to: ProcessId(0),
                drop_probability: None,
                delay: Some(DelayModel::Fixed(30)),
            });
        let mut adv = NetworkAdversary::new(cfg);
        let mut rng = SplitMix64::new(1);
        // 0 → 1 is black-holed; 1 → 0 limps at 30 ticks; 1 → 2 is healthy.
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::DropLoss
        );
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(1), ProcessId(0), &0, &mut rng),
            Decision::DeliverAfter(SimDuration::from_ticks(30))
        );
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(1), ProcessId(2), &0, &mut rng),
            Decision::DeliverAfter(SimDuration::from_ticks(2))
        );
    }

    #[test]
    fn network_adversary_duplicates_when_asked() {
        let mut adv = NetworkAdversary::new(NetworkConfig {
            duplicate_probability: 1.0,
            ..NetworkConfig::default()
        });
        let mut rng = SplitMix64::new(1);
        assert!(Adversary::<u32>::duplicate(
            &mut adv,
            SimTime::ZERO,
            ProcessId(0),
            ProcessId(1),
            &0,
            &mut rng
        ));
    }

    #[test]
    fn fixed_delay_config_produces_fixed_decision() {
        let mut adv = NetworkAdversary::new(NetworkConfig {
            delay: DelayModel::Fixed(4),
            ..NetworkConfig::default()
        });
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            Adversary::<u32>::route(&mut adv, SimTime::ZERO, ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::DeliverAfter(SimDuration::from_ticks(4))
        );
    }

    #[test]
    fn switch_after_hands_over_at_the_deadline() {
        let attack = FnAdversary::new(|_, _, _, _msg: &u32, _| Decision::Drop);
        let mut adv = SwitchAfter::then_fair(SimTime::from_ticks(100), Box::new(attack));
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            adv.route(SimTime::from_ticks(99), ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::Drop
        );
        assert!(matches!(
            adv.route(SimTime::from_ticks(100), ProcessId(0), ProcessId(1), &0, &mut rng),
            Decision::DeliverAfter(_)
        ));
    }

    #[test]
    fn fn_adversary_sees_payload() {
        let mut adv = FnAdversary::new(|_, _, _, msg: &u32, _| {
            if *msg == 13 {
                Decision::Drop
            } else {
                Decision::DeliverAfter(SimDuration::from_ticks(1))
            }
        });
        let mut rng = SplitMix64::new(1);
        assert_eq!(
            adv.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &13, &mut rng),
            Decision::Drop
        );
        assert!(matches!(
            adv.route(SimTime::ZERO, ProcessId(0), ProcessId(1), &7, &mut rng),
            Decision::DeliverAfter(_)
        ));
    }
}
