//! The lock-step synchronous round engine.
//!
//! In the synchronous model (used by Phase-King, paper §4.1) computation
//! proceeds in global rounds: every process sends, then every process
//! receives *all* messages sent to it in that round, then the next round
//! begins. Sends are per-recipient, which is exactly the power a Byzantine
//! process needs to equivocate.
//!
//! Delivery here is exactly-once by construction — there is no network
//! between send and receive to lose, reorder, or duplicate anything —
//! so the async engine's reliable-delivery layer
//! ([`ReliabilityPolicy`](crate::ReliabilityPolicy), `reliable.rs`) has
//! nothing to add in this model and does not apply; harness-level
//! `with_reliability` knobs on synchronous protocols are documented
//! API-parity no-ops.

use crate::process::{Outgoing, Payload};
use crate::rng::SplitMix64;
use crate::ProcessId;
use std::collections::BTreeSet;
use std::fmt::Debug;

/// A process in the lock-step synchronous model.
///
/// The engine invokes [`SyncProcess::on_round`] once per round with the
/// messages sent to this process in the *previous* round (empty in round 0).
pub trait SyncProcess {
    /// Message type exchanged on the network.
    type Msg: Clone + Debug;
    /// Decision value type.
    type Output: Clone + Debug + PartialEq;

    /// One round of computation: consume `inbox`, emit sends via `ctx`.
    fn on_round(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, Self::Msg)],
        ctx: &mut SyncContext<'_, Self::Msg, Self::Output>,
    );
}

impl<M: Clone + Debug, O: Clone + Debug + PartialEq> SyncProcess
    for Box<dyn SyncProcess<Msg = M, Output = O>>
{
    type Msg = M;
    type Output = O;

    fn on_round(
        &mut self,
        round: u64,
        inbox: &[(ProcessId, M)],
        ctx: &mut SyncContext<'_, M, O>,
    ) {
        (**self).on_round(round, inbox, ctx)
    }
}

/// The per-round handle a [`SyncProcess`] uses to emit effects.
#[derive(Debug)]
pub struct SyncContext<'a, M, O> {
    me: ProcessId,
    n: usize,
    round: u64,
    rng: &'a mut SplitMix64,
    outbox: &'a mut Vec<Outgoing<M>>,
    decision: &'a mut Option<O>,
    halted: &'a mut bool,
}

impl<'a, M: Clone, O> SyncContext<'a, M, O> {
    /// This process's id.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// Network size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (starting at 0).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This process's private deterministic RNG.
    pub fn rng(&mut self) -> &mut SplitMix64 {
        self.rng
    }

    /// Sends `msg` to a single recipient (delivered next round).
    pub fn send(&mut self, to: ProcessId, msg: M) {
        self.outbox.push(Outgoing {
            to,
            msg: Payload::Owned(msg),
        });
    }

    /// Sends `msg` to every process including this one.
    ///
    /// Like the asynchronous engine, the fan-out interns clone-expensive
    /// payloads (all `n` queued copies share one allocation until
    /// delivery) and copies small plain-old-data messages outright —
    /// the shared gate is `Payload::intern_broadcasts`, parameterized by
    /// `process::INTERN_BYTES`.
    pub fn broadcast(&mut self, msg: M) {
        if Payload::<M>::intern_broadcasts() {
            let shared = std::sync::Arc::new(msg);
            for i in 0..self.n {
                self.outbox.push(Outgoing {
                    to: ProcessId(i),
                    msg: Payload::Shared(std::sync::Arc::clone(&shared)),
                });
            }
        } else {
            for i in 0..self.n {
                self.outbox.push(Outgoing {
                    to: ProcessId(i),
                    msg: Payload::Owned(msg.clone()),
                });
            }
        }
    }

    /// Records a decision; only the first one sticks. The process keeps
    /// participating (as the original Phase-King requires) unless it also
    /// calls [`SyncContext::halt`].
    pub fn decide(&mut self, value: O) {
        if self.decision.is_none() {
            *self.decision = Some(value);
        }
    }

    /// Stops participating from the next round on.
    pub fn halt(&mut self) {
        *self.halted = true;
    }
}

/// Why a synchronous run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStopReason {
    /// Every tracked process decided.
    AllDecided,
    /// The round bound was reached.
    RoundLimit,
    /// All processes halted or crashed.
    Quiescent,
}

/// Result of a [`SyncSim::run`] call.
#[derive(Debug, Clone)]
pub struct SyncRunOutcome<O> {
    /// Per-process decision.
    pub decisions: Vec<Option<O>>,
    /// Round in which each process decided.
    pub decision_rounds: Vec<Option<u64>>,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Total messages sent (one per recipient).
    pub messages_sent: u64,
    /// Why the run stopped.
    pub reason: SyncStopReason,
}

impl<O: PartialEq + Clone> SyncRunOutcome<O> {
    /// Whether all decisions among the given ids agree and exist.
    pub fn agreement_among(&self, ids: &[ProcessId]) -> bool {
        let mut vals = ids.iter().map(|p| &self.decisions[p.index()]);
        match vals.next() {
            None => true,
            Some(first) => first.is_some() && vals.all(|v| v == first),
        }
    }

    /// The value decided by process `p`, if any.
    pub fn decision_of(&self, p: ProcessId) -> Option<&O> {
        self.decisions[p.index()].as_ref()
    }
}

/// The lock-step synchronous engine.
///
/// ```
/// use ooc_simnet::{SyncSim, SyncProcess, SyncContext, ProcessId};
///
/// /// Round 0: broadcast own id. Round 1: decide the minimum heard.
/// #[derive(Debug)]
/// struct MinId;
/// impl SyncProcess for MinId {
///     type Msg = u64;
///     type Output = u64;
///     fn on_round(&mut self, round: u64, inbox: &[(ProcessId, u64)],
///                 ctx: &mut SyncContext<'_, u64, u64>) {
///         if round == 0 {
///             ctx.broadcast(ctx.me().index() as u64);
///         } else {
///             let min = inbox.iter().map(|&(_, v)| v).min().unwrap();
///             ctx.decide(min);
///             ctx.halt();
///         }
///     }
/// }
///
/// let mut sim = SyncSim::new((0..4).map(|_| MinId), 7);
/// let out = sim.run(10);
/// assert_eq!(out.decisions, vec![Some(0); 4]);
/// ```
pub struct SyncSim<P: SyncProcess> {
    processes: Vec<P>,
    rngs: Vec<SplitMix64>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    crashed: Vec<bool>,
    halted: Vec<bool>,
    decisions: Vec<Option<P::Output>>,
    decision_rounds: Vec<Option<u64>>,
    crash_at_round: Vec<Option<u64>>,
    tracked: BTreeSet<ProcessId>,
    round: u64,
    messages_sent: u64,
}

impl<P: SyncProcess> SyncSim<P> {
    /// Creates an engine over the given processes and master seed.
    ///
    /// # Panics
    /// Panics if `processes` is empty.
    pub fn new(processes: impl IntoIterator<Item = P>, seed: u64) -> Self {
        let processes: Vec<P> = processes.into_iter().collect();
        assert!(!processes.is_empty(), "simulation needs processes");
        let n = processes.len();
        let master = SplitMix64::new(seed);
        SyncSim {
            rngs: (0..n).map(|i| master.derive(i as u64)).collect(),
            inboxes: vec![Vec::new(); n],
            crashed: vec![false; n],
            halted: vec![false; n],
            decisions: vec![None; n],
            decision_rounds: vec![None; n],
            crash_at_round: vec![None; n],
            tracked: (0..n).map(ProcessId).collect(),
            round: 0,
            messages_sent: 0,
            processes,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.processes.len()
    }

    /// Schedules `p` to crash (fall silent) from round `round` on.
    pub fn crash_at_round(&mut self, p: ProcessId, round: u64) -> &mut Self {
        self.crash_at_round[p.index()] = Some(round);
        self
    }

    /// Restricts the "all decided" stop condition to the given processes —
    /// used to exclude Byzantine processes, which never decide honestly.
    pub fn track_only(&mut self, ids: impl IntoIterator<Item = ProcessId>) -> &mut Self {
        self.tracked = ids.into_iter().collect();
        self
    }

    /// Immutable access to a process (e.g. to inspect state post-run).
    pub fn process(&self, id: ProcessId) -> &P {
        &self.processes[id.index()]
    }

    /// Runs (or resumes) for at most `max_rounds` additional rounds.
    pub fn run(&mut self, max_rounds: u64) -> SyncRunOutcome<P::Output> {
        let n = self.processes.len();
        let end_round = self.round + max_rounds;
        let reason = loop {
            if self.all_tracked_decided() {
                break SyncStopReason::AllDecided;
            }
            if self.round >= end_round {
                break SyncStopReason::RoundLimit;
            }
            // Apply round-scheduled crashes.
            for i in 0..n {
                if let Some(r) = self.crash_at_round[i] {
                    if self.round >= r {
                        self.crashed[i] = true;
                    }
                }
            }
            if (0..n).all(|i| self.crashed[i] || self.halted[i]) {
                break SyncStopReason::Quiescent;
            }
            let mut next_inboxes: Vec<Vec<(ProcessId, P::Msg)>> = vec![Vec::new(); n];
            for i in 0..n {
                if self.crashed[i] || self.halted[i] {
                    continue;
                }
                let inbox = std::mem::take(&mut self.inboxes[i]);
                let mut outbox = Vec::new();
                let mut decision = None;
                let mut halted = false;
                {
                    let mut ctx = SyncContext {
                        me: ProcessId(i),
                        n,
                        round: self.round,
                        rng: &mut self.rngs[i],
                        outbox: &mut outbox,
                        decision: &mut decision,
                        halted: &mut halted,
                    };
                    self.processes[i].on_round(self.round, &inbox, &mut ctx);
                }
                for out in outbox {
                    self.messages_sent += 1;
                    next_inboxes[out.to.index()].push((ProcessId(i), out.msg.into_msg()));
                }
                if let Some(v) = decision {
                    if self.decisions[i].is_none() {
                        self.decisions[i] = Some(v);
                        self.decision_rounds[i] = Some(self.round);
                    }
                }
                if halted {
                    self.halted[i] = true;
                }
            }
            self.inboxes = next_inboxes;
            self.round += 1;
        };
        SyncRunOutcome {
            decisions: self.decisions.clone(),
            decision_rounds: self.decision_rounds.clone(),
            rounds: self.round,
            messages_sent: self.messages_sent,
            reason,
        }
    }

    fn all_tracked_decided(&self) -> bool {
        !self.tracked.is_empty()
            && self
                .tracked
                .iter()
                .all(|p| self.decisions[p.index()].is_some() || self.crashed[p.index()])
            && self
                .tracked
                .iter()
                .any(|p| self.decisions[p.index()].is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Broadcasts id in round 0, decides min in round 1.
    #[derive(Debug)]
    struct MinId;
    impl SyncProcess for MinId {
        type Msg = u64;
        type Output = u64;
        fn on_round(
            &mut self,
            round: u64,
            inbox: &[(ProcessId, u64)],
            ctx: &mut SyncContext<'_, u64, u64>,
        ) {
            if round == 0 {
                ctx.broadcast(ctx.me().index() as u64);
            } else if ctx.round() == 1 {
                let min = inbox.iter().map(|&(_, v)| v).min().unwrap();
                ctx.decide(min);
                ctx.halt();
            }
        }
    }

    #[test]
    fn two_round_min_consensus() {
        let mut sim = SyncSim::new((0..5).map(|_| MinId), 1);
        let out = sim.run(10);
        assert_eq!(out.reason, SyncStopReason::AllDecided);
        assert_eq!(out.decisions, vec![Some(0); 5]);
        assert_eq!(out.decision_rounds, vec![Some(1); 5]);
        assert_eq!(out.messages_sent, 25);
    }

    #[test]
    fn crashed_process_is_silent() {
        let mut sim = SyncSim::new((0..4).map(|_| MinId), 1);
        sim.crash_at_round(ProcessId(0), 0);
        let out = sim.run(10);
        // p0 never sends, so the minimum heard is 1.
        for i in 1..4 {
            assert_eq!(out.decisions[i], Some(1));
        }
        assert_eq!(out.decisions[0], None);
    }

    #[test]
    fn crash_mid_protocol() {
        let mut sim = SyncSim::new((0..4).map(|_| MinId), 1);
        // Crashes after sending in round 0 (crash takes effect round 1).
        sim.crash_at_round(ProcessId(0), 1);
        let out = sim.run(10);
        for i in 1..4 {
            assert_eq!(out.decisions[i], Some(0), "p0's round-0 send arrived");
        }
        assert_eq!(out.decisions[0], None);
    }

    #[test]
    fn track_only_ignores_untracked() {
        let mut sim = SyncSim::new((0..4).map(|_| MinId), 1);
        sim.crash_at_round(ProcessId(3), 0);
        sim.track_only((0..3).map(ProcessId));
        let out = sim.run(10);
        assert_eq!(out.reason, SyncStopReason::AllDecided);
        assert!(out.agreement_among(&[ProcessId(0), ProcessId(1), ProcessId(2)]));
    }

    #[test]
    fn round_limit_stops_nonterminating_protocols() {
        #[derive(Debug)]
        struct Chatter;
        impl SyncProcess for Chatter {
            type Msg = ();
            type Output = ();
            fn on_round(&mut self, _r: u64, _i: &[(ProcessId, ())], ctx: &mut SyncContext<'_, (), ()>) {
                ctx.broadcast(());
            }
        }
        let mut sim = SyncSim::new(vec![Chatter, Chatter], 1);
        let out = sim.run(7);
        assert_eq!(out.reason, SyncStopReason::RoundLimit);
        assert_eq!(out.rounds, 7);
        assert_eq!(out.messages_sent, 7 * 4);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = |seed| {
            let mut sim = SyncSim::new((0..6).map(|_| MinId), seed);
            sim.run(10).messages_sent
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn quiescent_when_all_halt() {
        #[derive(Debug)]
        struct HaltNow;
        impl SyncProcess for HaltNow {
            type Msg = ();
            type Output = u64;
            fn on_round(&mut self, _r: u64, _i: &[(ProcessId, ())], ctx: &mut SyncContext<'_, (), u64>) {
                ctx.halt();
            }
        }
        let mut sim = SyncSim::new(vec![HaltNow, HaltNow], 1);
        let out = sim.run(10);
        assert_eq!(out.reason, SyncStopReason::Quiescent);
    }
}
